//! Winner-takes-all first-price auctions, one per host per interval.
//!
//! The auction model the G-commerce paper simulated, which the paper
//! contrasts with Tycoon: "winner-takes-it-all auctions and not
//! proportional share, leading to reduced fairness" (§6). Every interval,
//! each job bids its spending rate on the hosts it wants; on each host the
//! single highest bidder takes the *whole* host for that interval and pays
//! its bid.
//!
//! The auction rules live in [`WtaPolicy`]; the tick loop is `gm_core`'s
//! shared [`PolicyDriver`]. A price sample (mean winning bid) is recorded
//! only on ticks where at least one host cleared.

use gm_core::policy::{AllocationPolicy, PolicyDriver, PolicyError, TickCtx};
use gm_des::SimTime;
use gm_tycoon::{HostSpec, UserId};

use crate::common::{JobOutcome, JobRequest, RunResult};

/// How the winning bidder is charged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pricing {
    /// Pay your own bid (the G-commerce simulation's model).
    FirstPrice,
    /// Pay the runner-up's bid — sealed-bid Vickrey, the per-timeslice
    /// auction of Spawn (Waldspurger et al. 1992, cited as the paper's
    /// ancestor system in §6).
    SecondPrice,
}

/// The winner-takes-all market (configuration + convenience runner).
pub struct WinnerTakesAllMarket {
    /// Allocation tick in seconds.
    pub interval_secs: f64,
    /// Charging rule.
    pub pricing: Pricing,
}

impl Default for WinnerTakesAllMarket {
    fn default() -> Self {
        WinnerTakesAllMarket {
            interval_secs: 10.0,
            pricing: Pricing::FirstPrice,
        }
    }
}

impl WinnerTakesAllMarket {
    /// A Spawn-style sealed-bid second-price market.
    pub fn spawn_style() -> WinnerTakesAllMarket {
        WinnerTakesAllMarket {
            interval_secs: 10.0,
            pricing: Pricing::SecondPrice,
        }
    }

    /// The policy object to hand to a [`PolicyDriver`].
    pub fn policy(&self) -> WtaPolicy {
        WtaPolicy {
            pricing: self.pricing,
            tracks: Vec::new(),
            winners: Vec::new(),
            clearing: None,
            active_now: Vec::new(),
        }
    }

    /// Run the workload until completion or `horizon` through the shared
    /// driver. Also returns the price history (winning bids averaged
    /// across hosts).
    pub fn run(&self, hosts: &[HostSpec], jobs: &[JobRequest], horizon: SimTime) -> RunResult {
        let mut policy = self.policy();
        PolicyDriver::new(hosts.to_vec(), self.interval_secs)
            .horizon(horizon)
            .run(&mut policy, jobs)
            .expect("invalid job")
    }

    /// Capacity received per job (MHz·seconds) — input for fairness
    /// comparisons.
    pub fn capacity_received(
        &self,
        hosts: &[HostSpec],
        jobs: &[JobRequest],
        horizon: SimTime,
    ) -> Vec<f64> {
        // Re-run tracking capacity. (Cheap; keeps the public API small.)
        let mut track: Vec<f64> = vec![0.0; jobs.len()];
        let result = self.run(hosts, jobs, horizon);
        // Approximate from average nodes × makespan × vCPU.
        for (i, o) in result.outcomes.iter().enumerate() {
            let vcpu = hosts[0].vcpu_capacity_mhz();
            track[i] = o.avg_nodes * o.makespan_secs * vcpu;
        }
        track
    }
}

struct JobTrack {
    id: u32,
    user: UserId,
    arrival: SimTime,
    deadline_secs: f64,
    budget: f64,
    remaining: Vec<f64>,
    budget_left: f64,
    spent: f64,
    finished_at: Option<SimTime>,
    nodes_stat: (u64, f64, usize),
}

/// Per-host winner-takes-all auctions as an [`AllocationPolicy`].
pub struct WtaPolicy {
    pricing: Pricing,
    tracks: Vec<JobTrack>,
    /// This tick's auction results: per host, the winning track and the
    /// charged rate (set in `place`, consumed in `advance`).
    winners: Vec<Option<(usize, f64)>>,
    /// Mean winning bid this tick, if any host cleared.
    clearing: Option<f64>,
    /// Per-track sub-jobs progressed this tick (for concurrency stats).
    active_now: Vec<usize>,
}

impl AllocationPolicy for WtaPolicy {
    fn name(&self) -> &'static str {
        "wta"
    }

    fn admit(&mut self, _ctx: &TickCtx, req: &JobRequest) -> Result<(), PolicyError> {
        self.tracks.push(JobTrack {
            id: req.id,
            user: req.user,
            arrival: req.arrival,
            deadline_secs: req.deadline_secs,
            budget: req.budget,
            remaining: vec![req.work_per_subjob; req.subjobs as usize],
            budget_left: req.budget,
            spent: 0.0,
            finished_at: None,
            nodes_stat: (0, 0.0, 0),
        });
        Ok(())
    }

    fn place(&mut self, ctx: &TickCtx) {
        assert!(!ctx.hosts.is_empty());
        // Each unfinished job bids budget/deadline (its sustainable rate)
        // per host, on as many hosts as it has unfinished subjobs.
        struct Bid {
            track: usize,
            rate_per_host: f64,
            hosts_wanted: usize,
        }
        let mut bids: Vec<Bid> = Vec::new();
        for (ti, t) in self.tracks.iter().enumerate() {
            if t.finished_at.is_some() {
                continue;
            }
            let unfinished = t.remaining.iter().filter(|r| **r > 0.0).count();
            if unfinished == 0 || t.budget_left <= 0.0 {
                continue;
            }
            let rate =
                (t.budget_left / t.deadline_secs.max(ctx.interval_secs)) * ctx.interval_secs;
            bids.push(Bid {
                track: ti,
                rate_per_host: rate / unfinished as f64,
                hosts_wanted: unfinished,
            });
        }

        // Hosts auction independently; bidders spread over hosts in host
        // order until their wanted count is exhausted.
        self.winners = vec![None; ctx.hosts.len()];
        let mut assigned: Vec<usize> = vec![0; bids.len()];
        for h_idx in 0..ctx.hosts.len() {
            let mut best: Option<(usize, f64)> = None;
            let mut second: f64 = 0.0;
            for (b_idx, b) in bids.iter().enumerate() {
                if assigned[b_idx] >= b.hosts_wanted {
                    continue;
                }
                match best {
                    None => best = Some((b_idx, b.rate_per_host)),
                    Some((_, rate)) if b.rate_per_host > rate => {
                        second = rate;
                        best = Some((b_idx, b.rate_per_host));
                    }
                    Some((_, _)) => second = second.max(b.rate_per_host),
                }
            }
            if let Some((b_idx, rate)) = best {
                let charge = match self.pricing {
                    Pricing::FirstPrice => rate,
                    Pricing::SecondPrice => second,
                };
                self.winners[h_idx] = Some((bids[b_idx].track, charge));
                assigned[b_idx] += 1;
            }
        }

        let winning: Vec<f64> = self.winners.iter().flatten().map(|(_, r)| *r).collect();
        self.clearing = if winning.is_empty() {
            None
        } else {
            Some(winning.iter().sum::<f64>() / winning.len() as f64)
        };
    }

    fn advance(&mut self, ctx: &TickCtx) {
        // Winners get the whole host (all CPUs → one subjob per CPU).
        let mut active_now = vec![0usize; self.tracks.len()];
        for (h_idx, w) in self.winners.iter().enumerate() {
            let Some((ti, rate)) = *w else { continue };
            let t = &mut self.tracks[ti];
            t.budget_left -= rate;
            t.spent += rate;
            let host = &ctx.hosts[h_idx];
            let cap = host.vcpu_capacity_mhz() * ctx.interval_secs;
            let mut cpus = host.cpus as usize;
            for r in t.remaining.iter_mut() {
                if cpus == 0 {
                    break;
                }
                if *r > 0.0 {
                    *r -= cap;
                    active_now[ti] += 1;
                    cpus -= 1;
                }
            }
        }
        self.active_now = active_now;
    }

    fn settle(&mut self, ctx: &TickCtx) {
        let dt = ctx.interval();
        for (ti, t) in self.tracks.iter_mut().enumerate() {
            if t.finished_at.is_none() && t.remaining.iter().all(|r| *r <= 0.0) {
                t.finished_at = Some(ctx.now + dt);
            }
            if t.finished_at.is_none() {
                let active = self.active_now.get(ti).copied().unwrap_or(0);
                t.nodes_stat.0 += 1;
                t.nodes_stat.1 += active as f64;
                t.nodes_stat.2 = t.nodes_stat.2.max(active);
            }
        }
    }

    fn price(&self, _ctx: &TickCtx) -> Option<f64> {
        self.clearing
    }

    fn all_settled(&self) -> bool {
        self.tracks.iter().all(|t| t.finished_at.is_some())
    }

    fn outcomes(&self, now: SimTime) -> Vec<JobOutcome> {
        self.tracks
            .iter()
            .map(|t| JobOutcome {
                id: t.id,
                user: t.user,
                finished_at: t.finished_at,
                makespan_secs: t.finished_at.unwrap_or(now).since(t.arrival).as_secs_f64(),
                value: gm_core::workload::on_time_value(
                    t.budget,
                    t.deadline_secs,
                    t.arrival,
                    t.finished_at,
                ),
                cost: t.spent,
                max_nodes: t.nodes_stat.2,
                avg_nodes: if t.nodes_stat.0 == 0 {
                    0.0
                } else {
                    t.nodes_stat.1 / t.nodes_stat.0 as f64
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::jain_fairness;
    use gm_tycoon::UserId;

    fn hosts(n: u32) -> Vec<HostSpec> {
        (0..n).map(HostSpec::testbed).collect()
    }

    fn job(id: u32, subjobs: u32, work_secs: f64, budget: f64) -> JobRequest {
        JobRequest {
            id,
            user: UserId(id),
            subjobs,
            work_per_subjob: work_secs * 2910.0,
            arrival: SimTime::ZERO,
            budget,
            deadline_secs: 3600.0,
        }
    }

    #[test]
    fn lone_bidder_wins_everything() {
        let m = WinnerTakesAllMarket::default();
        let r = m.run(&hosts(2), &[job(0, 4, 100.0, 100.0)], SimTime::from_secs(10_000));
        assert!(r.all_finished());
        assert_eq!(r.outcomes[0].max_nodes, 4, "2 hosts × 2 cpus");
    }

    #[test]
    fn highest_bidder_shuts_out_the_rest() {
        // Same shape, 10× budget: on a single host, the poor job gets
        // nothing until the rich one finishes.
        let m = WinnerTakesAllMarket::default();
        let rich = job(0, 2, 500.0, 1000.0);
        let poor = job(1, 2, 500.0, 100.0);
        let r = m.run(&hosts(1), &[rich, poor], SimTime::from_secs(100_000));
        let tr = r.outcomes[0].finished_at.expect("rich finishes");
        if let Some(tp) = r.outcomes[1].finished_at {
            assert!(tr < tp, "rich must finish strictly first");
        }
        // While the rich job ran, the poor job had zero nodes → its average
        // concurrency is well below its peak.
        assert!(r.outcomes[1].avg_nodes < 2.0);
    }

    #[test]
    fn wta_is_less_fair_than_equal_budgets_imply() {
        // Two equal-work jobs, budgets 3:1, measured over a horizon where
        // they still contend: the loser is starved entirely (with
        // proportional share both would run at 3:1 shares).
        let m = WinnerTakesAllMarket::default();
        let a = job(0, 2, 2_000.0, 300.0);
        let b = job(1, 2, 2_000.0, 100.0);
        let caps = m.capacity_received(&hosts(1), &[a, b], SimTime::from_secs(2_000));
        let fairness = jain_fairness(&caps);
        assert!(
            fairness < 0.9,
            "winner-takes-all should be visibly unfair: {fairness} ({caps:?})"
        );
    }

    #[test]
    fn broke_bidder_never_runs() {
        let m = WinnerTakesAllMarket::default();
        let r = m.run(&hosts(1), &[job(0, 1, 100.0, 0.0)], SimTime::from_secs(5_000));
        assert!(!r.all_finished());
        assert_eq!(r.outcomes[0].max_nodes, 0);
    }

    #[test]
    fn second_price_lone_bidder_pays_nothing() {
        // Vickrey with one bidder and no reserve: the clearing price is 0.
        let m = WinnerTakesAllMarket::spawn_style();
        let r = m.run(&hosts(1), &[job(0, 1, 100.0, 360.0)], SimTime::from_secs(5_000));
        assert!(r.all_finished());
        assert_eq!(r.outcomes[0].cost, 0.0);
    }

    #[test]
    fn second_price_charges_runner_up_bid() {
        let m = WinnerTakesAllMarket::spawn_style();
        // rich bids 1.0/interval, poor bids 0.25/interval.
        let rich = job(0, 1, 500.0, 360.0);
        let poor = job(1, 1, 500.0, 90.0);
        let r = m.run(&hosts(1), &[rich, poor], SimTime::from_secs(50_000));
        // While contending, the rich winner pays the poor bid (0.25), so
        // its total spend is well under first-price.
        let first = WinnerTakesAllMarket::default().run(
            &hosts(1),
            &[job(0, 1, 500.0, 360.0), job(1, 1, 500.0, 90.0)],
            SimTime::from_secs(50_000),
        );
        assert!(
            r.outcomes[0].cost < first.outcomes[0].cost,
            "second price {} should undercut first price {}",
            r.outcomes[0].cost,
            first.outcomes[0].cost
        );
        assert!(r.outcomes[0].cost > 0.0, "contended winner still pays");
    }

    #[test]
    fn price_history_tracks_winning_bids() {
        let m = WinnerTakesAllMarket::default();
        let r = m.run(&hosts(1), &[job(0, 1, 100.0, 360.0)], SimTime::from_secs(5_000));
        assert!(!r.price_history.is_empty());
        // bid per interval = budget/deadline × interval = 360/3600×10 = 1.0
        let (_, p0) = r.price_history[0];
        assert!((p0 - 1.0).abs() < 1e-9, "{p0}");
    }
}
