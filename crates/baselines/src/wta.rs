//! Winner-takes-all first-price auctions, one per host per interval.
//!
//! The auction model the G-commerce paper simulated, which the paper
//! contrasts with Tycoon: "winner-takes-it-all auctions and not
//! proportional share, leading to reduced fairness" (§6). Every interval,
//! each job bids its spending rate on the hosts it wants; on each host the
//! single highest bidder takes the *whole* host for that interval and pays
//! its bid.

use gm_des::{SimDuration, SimTime};
use gm_tycoon::HostSpec;

use crate::common::{JobOutcome, JobRequest, RunResult};

/// How the winning bidder is charged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pricing {
    /// Pay your own bid (the G-commerce simulation's model).
    FirstPrice,
    /// Pay the runner-up's bid — sealed-bid Vickrey, the per-timeslice
    /// auction of Spawn (Waldspurger et al. 1992, cited as the paper's
    /// ancestor system in §6).
    SecondPrice,
}

/// The winner-takes-all market.
pub struct WinnerTakesAllMarket {
    /// Allocation tick in seconds.
    pub interval_secs: f64,
    /// Charging rule.
    pub pricing: Pricing,
}

impl Default for WinnerTakesAllMarket {
    fn default() -> Self {
        WinnerTakesAllMarket {
            interval_secs: 10.0,
            pricing: Pricing::FirstPrice,
        }
    }
}

impl WinnerTakesAllMarket {
    /// A Spawn-style sealed-bid second-price market.
    pub fn spawn_style() -> WinnerTakesAllMarket {
        WinnerTakesAllMarket {
            interval_secs: 10.0,
            pricing: Pricing::SecondPrice,
        }
    }
}

struct JobTrack {
    remaining: Vec<f64>,
    budget_left: f64,
    spent: f64,
    finished_at: Option<SimTime>,
    nodes_stat: (u64, f64, usize),
    capacity_received: f64,
}

impl WinnerTakesAllMarket {
    /// Run the workload until completion or `horizon`. Also returns the
    /// per-user capacity received (for fairness analysis) via the
    /// outcomes' `avg_nodes`/`cost` fields and the price history (winning
    /// bids averaged across hosts).
    pub fn run(&self, hosts: &[HostSpec], jobs: &[JobRequest], horizon: SimTime) -> RunResult {
        for j in jobs {
            j.validate().expect("invalid job");
        }
        assert!(!hosts.is_empty());
        let mut track: Vec<JobTrack> = jobs
            .iter()
            .map(|j| JobTrack {
                remaining: vec![j.work_per_subjob; j.subjobs as usize],
                budget_left: j.budget,
                spent: 0.0,
                finished_at: None,
                nodes_stat: (0, 0.0, 0),
                capacity_received: 0.0,
            })
            .collect();

        let dt = SimDuration::from_secs_f64(self.interval_secs);
        let mut now = SimTime::ZERO;
        let mut price_history = Vec::new();

        while now < horizon {
            // Each unfinished job bids budget/deadline (its sustainable
            // rate) per host, on as many hosts as it has unfinished
            // subjobs.
            struct Bid {
                job: usize,
                rate_per_host: f64,
                hosts_wanted: usize,
            }
            let mut bids: Vec<Bid> = Vec::new();
            for (ji, j) in jobs.iter().enumerate() {
                if j.arrival > now || track[ji].finished_at.is_some() {
                    continue;
                }
                let unfinished = track[ji].remaining.iter().filter(|r| **r > 0.0).count();
                if unfinished == 0 || track[ji].budget_left <= 0.0 {
                    continue;
                }
                let rate = (track[ji].budget_left / j.deadline_secs.max(self.interval_secs))
                    * self.interval_secs;
                bids.push(Bid {
                    job: ji,
                    rate_per_host: rate / unfinished as f64,
                    hosts_wanted: unfinished,
                });
            }

            // Hosts auction independently; bidders spread over hosts in
            // host order until their wanted count is exhausted.
            let mut winners: Vec<Option<(usize, f64)>> = vec![None; hosts.len()];
            let mut assigned: Vec<usize> = vec![0; bids.len()];
            for (h_idx, _) in hosts.iter().enumerate() {
                let mut best: Option<(usize, f64)> = None;
                let mut second: f64 = 0.0;
                for (b_idx, b) in bids.iter().enumerate() {
                    if assigned[b_idx] >= b.hosts_wanted {
                        continue;
                    }
                    match best {
                        None => best = Some((b_idx, b.rate_per_host)),
                        Some((_, rate)) if b.rate_per_host > rate => {
                            second = rate;
                            best = Some((b_idx, b.rate_per_host));
                        }
                        Some((_, _)) => second = second.max(b.rate_per_host),
                    }
                }
                if let Some((b_idx, rate)) = best {
                    let charge = match self.pricing {
                        Pricing::FirstPrice => rate,
                        Pricing::SecondPrice => second,
                    };
                    winners[h_idx] = Some((bids[b_idx].job, charge));
                    assigned[b_idx] += 1;
                }
            }

            let winning: Vec<f64> = winners.iter().flatten().map(|(_, r)| *r).collect();
            if !winning.is_empty() {
                price_history
                    .push((now, winning.iter().sum::<f64>() / winning.len() as f64));
            }

            // Winners get the whole host (all CPUs → one subjob per CPU).
            let mut active_now = vec![0usize; jobs.len()];
            for (h_idx, w) in winners.iter().enumerate() {
                let Some((ji, rate)) = *w else { continue };
                let t = &mut track[ji];
                t.budget_left -= rate;
                t.spent += rate;
                let host = &hosts[h_idx];
                let cap = host.vcpu_capacity_mhz() * self.interval_secs;
                // One subjob per CPU of the won host.
                let mut cpus = host.cpus as usize;
                for r in t.remaining.iter_mut() {
                    if cpus == 0 {
                        break;
                    }
                    if *r > 0.0 {
                        *r -= cap;
                        t.capacity_received += cap;
                        active_now[ji] += 1;
                        cpus -= 1;
                    }
                }
            }

            for (ji, j) in jobs.iter().enumerate() {
                let t = &mut track[ji];
                if t.finished_at.is_none() && t.remaining.iter().all(|r| *r <= 0.0) {
                    t.finished_at = Some(now + dt);
                }
                if j.arrival <= now && t.finished_at.is_none() {
                    t.nodes_stat.0 += 1;
                    t.nodes_stat.1 += active_now[ji] as f64;
                    t.nodes_stat.2 = t.nodes_stat.2.max(active_now[ji]);
                }
            }

            now += dt;
            if track.iter().all(|t| t.finished_at.is_some()) {
                break;
            }
        }

        let outcomes = jobs
            .iter()
            .enumerate()
            .map(|(i, j)| {
                let t = &track[i];
                JobOutcome {
                    id: j.id,
                    user: j.user,
                    finished_at: t.finished_at,
                    makespan_secs: t.finished_at.unwrap_or(now).since(j.arrival).as_secs_f64(),
                    cost: t.spent,
                    max_nodes: t.nodes_stat.2,
                    avg_nodes: if t.nodes_stat.0 == 0 {
                        0.0
                    } else {
                        t.nodes_stat.1 / t.nodes_stat.0 as f64
                    },
                }
            })
            .collect();

        RunResult {
            outcomes,
            price_history,
        }
    }

    /// Capacity received per job (MHz·seconds) — input for fairness
    /// comparisons.
    pub fn capacity_received(
        &self,
        hosts: &[HostSpec],
        jobs: &[JobRequest],
        horizon: SimTime,
    ) -> Vec<f64> {
        // Re-run tracking capacity. (Cheap; keeps the public API small.)
        let mut track: Vec<f64> = vec![0.0; jobs.len()];
        let result = self.run(hosts, jobs, horizon);
        // Approximate from average nodes × makespan × vCPU.
        for (i, o) in result.outcomes.iter().enumerate() {
            let vcpu = hosts[0].vcpu_capacity_mhz();
            track[i] = o.avg_nodes * o.makespan_secs * vcpu;
        }
        track
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::jain_fairness;
    use gm_tycoon::UserId;

    fn hosts(n: u32) -> Vec<HostSpec> {
        (0..n).map(HostSpec::testbed).collect()
    }

    fn job(id: u32, subjobs: u32, work_secs: f64, budget: f64) -> JobRequest {
        JobRequest {
            id,
            user: UserId(id),
            subjobs,
            work_per_subjob: work_secs * 2910.0,
            arrival: SimTime::ZERO,
            budget,
            deadline_secs: 3600.0,
        }
    }

    #[test]
    fn lone_bidder_wins_everything() {
        let m = WinnerTakesAllMarket::default();
        let r = m.run(&hosts(2), &[job(0, 4, 100.0, 100.0)], SimTime::from_secs(10_000));
        assert!(r.all_finished());
        assert_eq!(r.outcomes[0].max_nodes, 4, "2 hosts × 2 cpus");
    }

    #[test]
    fn highest_bidder_shuts_out_the_rest() {
        // Same shape, 10× budget: on a single host, the poor job gets
        // nothing until the rich one finishes.
        let m = WinnerTakesAllMarket::default();
        let rich = job(0, 2, 500.0, 1000.0);
        let poor = job(1, 2, 500.0, 100.0);
        let r = m.run(&hosts(1), &[rich, poor], SimTime::from_secs(100_000));
        let tr = r.outcomes[0].finished_at.expect("rich finishes");
        if let Some(tp) = r.outcomes[1].finished_at {
            assert!(tr < tp, "rich must finish strictly first");
        }
        // While the rich job ran, the poor job had zero nodes → its average
        // concurrency is well below its peak.
        assert!(r.outcomes[1].avg_nodes < 2.0);
    }

    #[test]
    fn wta_is_less_fair_than_equal_budgets_imply() {
        // Two equal-work jobs, budgets 3:1, measured over a horizon where
        // they still contend: the loser is starved entirely (with
        // proportional share both would run at 3:1 shares).
        let m = WinnerTakesAllMarket::default();
        let a = job(0, 2, 2_000.0, 300.0);
        let b = job(1, 2, 2_000.0, 100.0);
        let caps = m.capacity_received(&hosts(1), &[a, b], SimTime::from_secs(2_000));
        let fairness = jain_fairness(&caps);
        assert!(
            fairness < 0.9,
            "winner-takes-all should be visibly unfair: {fairness} ({caps:?})"
        );
    }

    #[test]
    fn broke_bidder_never_runs() {
        let m = WinnerTakesAllMarket::default();
        let r = m.run(&hosts(1), &[job(0, 1, 100.0, 0.0)], SimTime::from_secs(5_000));
        assert!(!r.all_finished());
        assert_eq!(r.outcomes[0].max_nodes, 0);
    }

    #[test]
    fn second_price_lone_bidder_pays_nothing() {
        // Vickrey with one bidder and no reserve: the clearing price is 0.
        let m = WinnerTakesAllMarket::spawn_style();
        let r = m.run(&hosts(1), &[job(0, 1, 100.0, 360.0)], SimTime::from_secs(5_000));
        assert!(r.all_finished());
        assert_eq!(r.outcomes[0].cost, 0.0);
    }

    #[test]
    fn second_price_charges_runner_up_bid() {
        let m = WinnerTakesAllMarket::spawn_style();
        // rich bids 1.0/interval, poor bids 0.25/interval.
        let rich = job(0, 1, 500.0, 360.0);
        let poor = job(1, 1, 500.0, 90.0);
        let r = m.run(&hosts(1), &[rich, poor], SimTime::from_secs(50_000));
        // While contending, the rich winner pays the poor bid (0.25), so
        // its total spend is well under first-price.
        let first = WinnerTakesAllMarket::default().run(
            &hosts(1),
            &[job(0, 1, 500.0, 360.0), job(1, 1, 500.0, 90.0)],
            SimTime::from_secs(50_000),
        );
        assert!(
            r.outcomes[0].cost < first.outcomes[0].cost,
            "second price {} should undercut first price {}",
            r.outcomes[0].cost,
            first.outcomes[0].cost
        );
        assert!(r.outcomes[0].cost > 0.0, "contended winner still pays");
    }

    #[test]
    fn price_history_tracks_winning_bids() {
        let m = WinnerTakesAllMarket::default();
        let r = m.run(&hosts(1), &[job(0, 1, 100.0, 360.0)], SimTime::from_secs(5_000));
        assert!(!r.price_history.is_empty());
        // bid per interval = budget/deadline × interval = 360/3600×10 = 1.0
        let (_, p0) = r.price_history[0];
        assert!((p0 - 1.0).abs() < 1e-9, "{p0}");
    }
}
