//! Shared workload and outcome types for the baseline schedulers.

use gm_des::SimTime;
use gm_tycoon::UserId;

/// A job as all baselines see it: a bag of equally-sized sub-jobs.
#[derive(Clone, Debug)]
pub struct JobRequest {
    /// Job id (unique within a run).
    pub id: u32,
    /// Owning user.
    pub user: UserId,
    /// Number of sub-jobs.
    pub subjobs: u32,
    /// Work per sub-job in MHz·seconds.
    pub work_per_subjob: f64,
    /// Arrival time.
    pub arrival: SimTime,
    /// Budget in credits (market baselines only).
    pub budget: f64,
    /// Deadline in seconds from arrival (market baselines only).
    pub deadline_secs: f64,
}

impl JobRequest {
    /// Validate basic invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.subjobs == 0 {
            return Err(format!("job {}: zero subjobs", self.id));
        }
        if self.work_per_subjob.is_nan() || self.work_per_subjob <= 0.0 {
            return Err(format!("job {}: non-positive work", self.id));
        }
        Ok(())
    }
}

/// What happened to one job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Job id.
    pub id: u32,
    /// Owning user.
    pub user: UserId,
    /// Completion time (None = did not finish within the horizon).
    pub finished_at: Option<SimTime>,
    /// Makespan in seconds (up to the horizon if unfinished).
    pub makespan_secs: f64,
    /// Credits spent (market baselines; 0 otherwise).
    pub cost: f64,
    /// Peak concurrent sub-jobs.
    pub max_nodes: usize,
    /// Average concurrent sub-jobs over the job's active lifetime.
    pub avg_nodes: f64,
}

/// Result of one baseline run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Per-job outcomes in job-id order.
    pub outcomes: Vec<JobOutcome>,
    /// Posted/spot price history (market baselines; empty otherwise).
    pub price_history: Vec<(SimTime, f64)>,
}

impl RunResult {
    /// All jobs finished?
    pub fn all_finished(&self) -> bool {
        self.outcomes.iter().all(|o| o.finished_at.is_some())
    }

    /// Makespan of the whole batch (max over finished jobs), seconds.
    pub fn batch_makespan_secs(&self) -> f64 {
        self.outcomes
            .iter()
            .map(|o| o.makespan_secs)
            .fold(0.0, f64::max)
    }

    /// Coefficient of variation of the price history (the G-commerce
    /// "price predictability" metric; lower = more predictable).
    pub fn price_volatility(&self) -> Option<f64> {
        if self.price_history.len() < 2 {
            return None;
        }
        let xs: Vec<f64> = self.price_history.iter().map(|(_, p)| *p).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        if mean.abs() < 1e-300 {
            return None;
        }
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        Some(var.sqrt() / mean)
    }
}

/// Jain's fairness index of a set of non-negative allocations:
/// `(Σx)² / (n·Σx²)`; 1 = perfectly fair, 1/n = maximally unfair.
pub fn jain_fairness(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let s: f64 = xs.iter().sum();
    let s2: f64 = xs.iter().map(|x| x * x).sum();
    if s2 <= 0.0 {
        return 1.0;
    }
    s * s / (xs.len() as f64 * s2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_index_extremes() {
        assert!((jain_fairness(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        let unfair = jain_fairness(&[1.0, 0.0, 0.0, 0.0]);
        assert!((unfair - 0.25).abs() < 1e-12);
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn jain_index_monotone_in_imbalance() {
        let a = jain_fairness(&[2.0, 2.0, 2.0]);
        let b = jain_fairness(&[3.0, 2.0, 1.0]);
        let c = jain_fairness(&[5.0, 0.5, 0.5]);
        assert!(a > b && b > c);
    }

    #[test]
    fn price_volatility() {
        let flat = RunResult {
            outcomes: vec![],
            price_history: (0..10).map(|i| (SimTime::from_secs(i), 2.0)).collect(),
        };
        assert!(flat.price_volatility().unwrap() < 1e-12);
        let spiky = RunResult {
            outcomes: vec![],
            price_history: (0..10)
                .map(|i| (SimTime::from_secs(i), if i % 2 == 0 { 1.0 } else { 3.0 }))
                .collect(),
        };
        assert!(spiky.price_volatility().unwrap() > 0.4);
        let empty = RunResult {
            outcomes: vec![],
            price_history: vec![],
        };
        assert!(empty.price_volatility().is_none());
    }

    #[test]
    fn request_validation() {
        let mut r = JobRequest {
            id: 0,
            user: UserId(1),
            subjobs: 2,
            work_per_subjob: 100.0,
            arrival: SimTime::ZERO,
            budget: 10.0,
            deadline_secs: 100.0,
        };
        assert!(r.validate().is_ok());
        r.subjobs = 0;
        assert!(r.validate().is_err());
        r.subjobs = 1;
        r.work_per_subjob = 0.0;
        assert!(r.validate().is_err());
    }
}
