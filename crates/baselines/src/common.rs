//! Shared workload and outcome types — re-exported from `gm-core`.
//!
//! These types moved into [`gm_core::workload`] and
//! [`gm_core::metrics`] so that the Tycoon market and the conventional
//! baselines report through one type universe; the old
//! `gm_baselines::common::*` paths keep working via these re-exports.

pub use gm_core::metrics::jain_fairness;
pub use gm_core::workload::{JobOutcome, JobRequest, RunResult};

#[cfg(test)]
mod tests {
    use super::*;
    use gm_des::SimTime;
    use gm_tycoon::UserId;

    /// The historical `baselines::common` paths must keep resolving to
    /// the gm-core types (the detailed behaviour tests live in gm-core).
    #[test]
    fn reexported_paths_still_work() {
        assert!((jain_fairness(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        let r = JobRequest {
            id: 0,
            user: UserId(1),
            subjobs: 1,
            work_per_subjob: 1.0,
            arrival: SimTime::ZERO,
            budget: 0.0,
            deadline_secs: 0.0,
        };
        assert!(r.validate().is_ok());
        let rr = RunResult {
            outcomes: vec![],
            price_history: vec![],
        };
        assert!(rr.all_finished());
        assert_eq!(rr.batch_makespan_secs(), 0.0);
    }
}
