//! Administratively equal processor sharing.
//!
//! Every sub-job placed on a host time-shares it equally with the host's
//! other residents — no budgets, no incentives, the egalitarian baseline.
//! Placement is least-loaded or round-robin.

use gm_des::{SimDuration, SimTime};
use gm_tycoon::HostSpec;

use crate::common::{JobOutcome, JobRequest, RunResult};

/// Sub-job placement strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Put each sub-job on the host with the fewest residents.
    LeastLoaded,
    /// Cycle through hosts.
    RoundRobin,
}

/// The equal-share scheduler.
pub struct ShareScheduler {
    /// Allocation tick in seconds.
    pub interval_secs: f64,
    /// Placement strategy.
    pub placement: Placement,
}

impl Default for ShareScheduler {
    fn default() -> Self {
        ShareScheduler {
            interval_secs: 10.0,
            placement: Placement::LeastLoaded,
        }
    }
}

struct Resident {
    job: usize,
    remaining: f64,
}

impl ShareScheduler {
    /// Run the workload to completion (or `horizon`).
    pub fn run(&self, hosts: &[HostSpec], jobs: &[JobRequest], horizon: SimTime) -> RunResult {
        for j in jobs {
            j.validate().expect("invalid job");
        }
        assert!(!hosts.is_empty());
        let mut residents: Vec<Vec<Resident>> = hosts.iter().map(|_| Vec::new()).collect();
        let mut pending: Vec<u32> = jobs.iter().map(|j| j.subjobs).collect();
        let mut finished: Vec<u32> = vec![0; jobs.len()];
        let mut finished_at: Vec<Option<SimTime>> = vec![None; jobs.len()];
        let mut nodes_stat: Vec<(u64, f64, usize)> = vec![(0, 0.0, 0); jobs.len()];
        let mut rr_next = 0usize;

        let dt = SimDuration::from_secs_f64(self.interval_secs);
        let mut now = SimTime::ZERO;
        while now < horizon {
            // Admit everything that has arrived (time sharing: no slots).
            for (ji, j) in jobs.iter().enumerate() {
                if j.arrival > now {
                    continue;
                }
                while pending[ji] > 0 {
                    let h = match self.placement {
                        Placement::LeastLoaded => residents
                            .iter()
                            .enumerate()
                            .min_by_key(|(i, r)| (r.len(), *i))
                            .map(|(i, _)| i)
                            .expect("hosts nonempty"),
                        Placement::RoundRobin => {
                            let h = rr_next % residents.len();
                            rr_next += 1;
                            h
                        }
                    };
                    residents[h].push(Resident {
                        job: ji,
                        remaining: j.work_per_subjob,
                    });
                    pending[ji] -= 1;
                }
            }

            // Progress: equal share of the host among residents, each
            // capped at one vCPU.
            for (h_idx, host) in hosts.iter().enumerate() {
                let n = residents[h_idx].len();
                if n == 0 {
                    continue;
                }
                let share = 1.0 / n as f64;
                let cpu_fraction = (share * host.cpus as f64).min(1.0);
                let cap = cpu_fraction * host.vcpu_capacity_mhz();
                for r in residents[h_idx].iter_mut() {
                    r.remaining -= cap * self.interval_secs;
                }
                residents[h_idx].retain(|r| {
                    if r.remaining <= 0.0 {
                        finished[r.job] += 1;
                        if finished[r.job] == jobs[r.job].subjobs {
                            finished_at[r.job] = Some(now + dt);
                        }
                        false
                    } else {
                        true
                    }
                });
            }

            // Concurrency samples.
            for (ji, j) in jobs.iter().enumerate() {
                if finished[ji] < j.subjobs && j.arrival <= now {
                    let active: usize = residents
                        .iter()
                        .map(|r| r.iter().filter(|x| x.job == ji).count())
                        .sum();
                    nodes_stat[ji].0 += 1;
                    nodes_stat[ji].1 += active as f64;
                    nodes_stat[ji].2 = nodes_stat[ji].2.max(active);
                }
            }

            now += dt;
            if finished.iter().zip(jobs).all(|(f, j)| *f == j.subjobs) {
                break;
            }
        }

        let outcomes = jobs
            .iter()
            .enumerate()
            .map(|(i, j)| JobOutcome {
                id: j.id,
                user: j.user,
                finished_at: finished_at[i],
                makespan_secs: finished_at[i].unwrap_or(now).since(j.arrival).as_secs_f64(),
                cost: 0.0,
                max_nodes: nodes_stat[i].2,
                avg_nodes: if nodes_stat[i].0 == 0 {
                    0.0
                } else {
                    nodes_stat[i].1 / nodes_stat[i].0 as f64
                },
            })
            .collect();

        RunResult {
            outcomes,
            price_history: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_tycoon::UserId;

    fn hosts(n: u32) -> Vec<HostSpec> {
        (0..n).map(HostSpec::testbed).collect()
    }

    fn job(id: u32, subjobs: u32, work_secs: f64) -> JobRequest {
        JobRequest {
            id,
            user: UserId(id),
            subjobs,
            work_per_subjob: work_secs * 2910.0,
            arrival: SimTime::ZERO,
            budget: 0.0,
            deadline_secs: 0.0,
        }
    }

    #[test]
    fn lone_job_runs_at_full_speed() {
        let s = ShareScheduler::default();
        let r = s.run(&hosts(4), &[job(0, 4, 100.0)], SimTime::from_secs(10_000));
        assert!(r.all_finished());
        assert!((r.outcomes[0].makespan_secs - 100.0).abs() <= 10.0);
    }

    #[test]
    fn two_jobs_on_dual_cpu_hosts_dont_contend() {
        // 2 users × 4 subjobs on 4 dual-CPU hosts: each host has 2
        // residents, each gets a full CPU.
        let s = ShareScheduler::default();
        let jobs = [job(0, 4, 100.0), job(1, 4, 100.0)];
        let r = s.run(&hosts(4), &jobs, SimTime::from_secs(10_000));
        for o in &r.outcomes {
            assert!((o.makespan_secs - 100.0).abs() <= 10.0, "{}", o.makespan_secs);
        }
    }

    #[test]
    fn four_jobs_halve_throughput() {
        // 4 users × 4 subjobs on 4 dual-CPU hosts: 4 residents per host,
        // each gets 2/4 = 0.5 CPU.
        let s = ShareScheduler::default();
        let jobs: Vec<JobRequest> = (0..4).map(|i| job(i, 4, 100.0)).collect();
        let r = s.run(&hosts(4), &jobs, SimTime::from_secs(10_000));
        for o in &r.outcomes {
            assert!((o.makespan_secs - 200.0).abs() <= 20.0, "{}", o.makespan_secs);
        }
    }

    #[test]
    fn round_robin_spreads_over_hosts() {
        let s = ShareScheduler {
            interval_secs: 10.0,
            placement: Placement::RoundRobin,
        };
        let r = s.run(&hosts(4), &[job(0, 4, 50.0)], SimTime::from_secs(10_000));
        assert_eq!(r.outcomes[0].max_nodes, 4, "one subjob per host");
    }

    #[test]
    fn least_loaded_balances() {
        let s = ShareScheduler::default();
        let jobs = [job(0, 8, 50.0)];
        let r = s.run(&hosts(4), &jobs, SimTime::from_secs(10_000));
        // 8 subjobs over 4 hosts = 2 per host; everyone gets a full CPU.
        assert!((r.outcomes[0].makespan_secs - 50.0).abs() <= 10.0);
    }

    #[test]
    fn equal_share_ignores_budgets() {
        // Identical shapes, wildly different budgets → identical outcomes.
        let s = ShareScheduler::default();
        let mut a = job(0, 4, 100.0);
        a.budget = 1.0;
        let mut b = job(1, 4, 100.0);
        b.budget = 1000.0;
        let r = s.run(&hosts(2), &[a, b], SimTime::from_secs(100_000));
        let m0 = r.outcomes[0].makespan_secs;
        let m1 = r.outcomes[1].makespan_secs;
        assert!((m0 - m1).abs() < 1e-9, "budget must not matter: {m0} {m1}");
    }
}
