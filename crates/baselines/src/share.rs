//! Administratively equal processor sharing.
//!
//! Every sub-job placed on a host time-shares it equally with the host's
//! other residents — no budgets, no incentives, the egalitarian baseline.
//! Placement is least-loaded or round-robin.
//!
//! The scheduling rules live in [`SharePolicy`]; the tick loop is
//! `gm_core`'s shared [`PolicyDriver`].

use gm_core::policy::{AllocationPolicy, PolicyDriver, PolicyError, TickCtx};
use gm_des::SimTime;
use gm_tycoon::{HostSpec, UserId};

use crate::common::{JobOutcome, JobRequest, RunResult};

/// Sub-job placement strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Put each sub-job on the host with the fewest residents.
    LeastLoaded,
    /// Cycle through hosts.
    RoundRobin,
}

/// The equal-share scheduler (configuration + convenience runner).
pub struct ShareScheduler {
    /// Allocation tick in seconds.
    pub interval_secs: f64,
    /// Placement strategy.
    pub placement: Placement,
}

impl Default for ShareScheduler {
    fn default() -> Self {
        ShareScheduler {
            interval_secs: 10.0,
            placement: Placement::LeastLoaded,
        }
    }
}

impl ShareScheduler {
    /// The policy object to hand to a [`PolicyDriver`].
    pub fn policy(&self) -> SharePolicy {
        SharePolicy::new(self.placement)
    }

    /// Run the workload to completion (or `horizon`) through the shared
    /// driver.
    pub fn run(&self, hosts: &[HostSpec], jobs: &[JobRequest], horizon: SimTime) -> RunResult {
        let mut policy = self.policy();
        PolicyDriver::new(hosts.to_vec(), self.interval_secs)
            .horizon(horizon)
            .run(&mut policy, jobs)
            .expect("invalid job")
    }
}

struct Resident {
    track: usize,
    remaining: f64,
}

struct JobTrack {
    id: u32,
    user: UserId,
    arrival: SimTime,
    budget: f64,
    deadline_secs: f64,
    subjobs: u32,
    pending: u32,
    finished: u32,
    finished_at: Option<SimTime>,
    nodes_stat: (u64, f64, usize),
}

/// Equal processor sharing as an [`AllocationPolicy`].
pub struct SharePolicy {
    placement: Placement,
    /// Per-host resident sub-jobs (time-sharing: unbounded).
    residents: Vec<Vec<Resident>>,
    tracks: Vec<JobTrack>,
    work: Vec<f64>,
    rr_next: usize,
}

impl SharePolicy {
    /// New policy with the given placement strategy.
    pub fn new(placement: Placement) -> Self {
        SharePolicy {
            placement,
            residents: Vec::new(),
            tracks: Vec::new(),
            work: Vec::new(),
            rr_next: 0,
        }
    }
}

impl AllocationPolicy for SharePolicy {
    fn name(&self) -> &'static str {
        "share"
    }

    fn begin_tick(&mut self, ctx: &TickCtx) {
        if self.residents.is_empty() {
            assert!(!ctx.hosts.is_empty());
            self.residents = ctx.hosts.iter().map(|_| Vec::new()).collect();
        }
    }

    fn admit(&mut self, _ctx: &TickCtx, req: &JobRequest) -> Result<(), PolicyError> {
        self.tracks.push(JobTrack {
            id: req.id,
            user: req.user,
            arrival: req.arrival,
            budget: req.budget,
            deadline_secs: req.deadline_secs,
            subjobs: req.subjobs,
            pending: req.subjobs,
            finished: 0,
            finished_at: None,
            nodes_stat: (0, 0.0, 0),
        });
        self.work.push(req.work_per_subjob);
        Ok(())
    }

    fn place(&mut self, _ctx: &TickCtx) {
        // Time sharing has no slot limit: everything admitted lands on a
        // host immediately.
        for ti in 0..self.tracks.len() {
            while self.tracks[ti].pending > 0 {
                let h = match self.placement {
                    Placement::LeastLoaded => self
                        .residents
                        .iter()
                        .enumerate()
                        .min_by_key(|(i, r)| (r.len(), *i))
                        .map(|(i, _)| i)
                        .expect("hosts nonempty"),
                    Placement::RoundRobin => {
                        let h = self.rr_next % self.residents.len();
                        self.rr_next += 1;
                        h
                    }
                };
                self.residents[h].push(Resident {
                    track: ti,
                    remaining: self.work[ti],
                });
                self.tracks[ti].pending -= 1;
            }
        }
    }

    fn advance(&mut self, ctx: &TickCtx) {
        let dt = ctx.interval();
        for (h_idx, host) in ctx.hosts.iter().enumerate() {
            let n = self.residents[h_idx].len();
            if n == 0 {
                continue;
            }
            // Equal share of the host among residents, each capped at one
            // vCPU.
            let share = 1.0 / n as f64;
            let cpu_fraction = (share * host.cpus as f64).min(1.0);
            let cap = cpu_fraction * host.vcpu_capacity_mhz();
            for r in self.residents[h_idx].iter_mut() {
                r.remaining -= cap * ctx.interval_secs;
            }
            let tracks = &mut self.tracks;
            self.residents[h_idx].retain(|r| {
                if r.remaining <= 0.0 {
                    let t = &mut tracks[r.track];
                    t.finished += 1;
                    if t.finished == t.subjobs {
                        t.finished_at = Some(ctx.now + dt);
                    }
                    false
                } else {
                    true
                }
            });
        }
    }

    fn settle(&mut self, _ctx: &TickCtx) {
        for (ti, t) in self.tracks.iter_mut().enumerate() {
            if t.finished < t.subjobs {
                let active: usize = self
                    .residents
                    .iter()
                    .map(|r| r.iter().filter(|x| x.track == ti).count())
                    .sum();
                t.nodes_stat.0 += 1;
                t.nodes_stat.1 += active as f64;
                t.nodes_stat.2 = t.nodes_stat.2.max(active);
            }
        }
    }

    fn price(&self, _ctx: &TickCtx) -> Option<f64> {
        None
    }

    fn all_settled(&self) -> bool {
        self.tracks.iter().all(|t| t.finished == t.subjobs)
    }

    fn outcomes(&self, now: SimTime) -> Vec<JobOutcome> {
        self.tracks
            .iter()
            .map(|t| JobOutcome {
                id: t.id,
                user: t.user,
                finished_at: t.finished_at,
                makespan_secs: t.finished_at.unwrap_or(now).since(t.arrival).as_secs_f64(),
                value: gm_core::workload::on_time_value(
                    t.budget,
                    t.deadline_secs,
                    t.arrival,
                    t.finished_at,
                ),
                cost: 0.0,
                max_nodes: t.nodes_stat.2,
                avg_nodes: if t.nodes_stat.0 == 0 {
                    0.0
                } else {
                    t.nodes_stat.1 / t.nodes_stat.0 as f64
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_tycoon::UserId;

    fn hosts(n: u32) -> Vec<HostSpec> {
        (0..n).map(HostSpec::testbed).collect()
    }

    fn job(id: u32, subjobs: u32, work_secs: f64) -> JobRequest {
        JobRequest {
            id,
            user: UserId(id),
            subjobs,
            work_per_subjob: work_secs * 2910.0,
            arrival: SimTime::ZERO,
            budget: 0.0,
            deadline_secs: 0.0,
        }
    }

    #[test]
    fn lone_job_runs_at_full_speed() {
        let s = ShareScheduler::default();
        let r = s.run(&hosts(4), &[job(0, 4, 100.0)], SimTime::from_secs(10_000));
        assert!(r.all_finished());
        assert!((r.outcomes[0].makespan_secs - 100.0).abs() <= 10.0);
    }

    #[test]
    fn two_jobs_on_dual_cpu_hosts_dont_contend() {
        // 2 users × 4 subjobs on 4 dual-CPU hosts: each host has 2
        // residents, each gets a full CPU.
        let s = ShareScheduler::default();
        let jobs = [job(0, 4, 100.0), job(1, 4, 100.0)];
        let r = s.run(&hosts(4), &jobs, SimTime::from_secs(10_000));
        for o in &r.outcomes {
            assert!((o.makespan_secs - 100.0).abs() <= 10.0, "{}", o.makespan_secs);
        }
    }

    #[test]
    fn four_jobs_halve_throughput() {
        // 4 users × 4 subjobs on 4 dual-CPU hosts: 4 residents per host,
        // each gets 2/4 = 0.5 CPU.
        let s = ShareScheduler::default();
        let jobs: Vec<JobRequest> = (0..4).map(|i| job(i, 4, 100.0)).collect();
        let r = s.run(&hosts(4), &jobs, SimTime::from_secs(10_000));
        for o in &r.outcomes {
            assert!((o.makespan_secs - 200.0).abs() <= 20.0, "{}", o.makespan_secs);
        }
    }

    #[test]
    fn round_robin_spreads_over_hosts() {
        let s = ShareScheduler {
            interval_secs: 10.0,
            placement: Placement::RoundRobin,
        };
        let r = s.run(&hosts(4), &[job(0, 4, 50.0)], SimTime::from_secs(10_000));
        assert_eq!(r.outcomes[0].max_nodes, 4, "one subjob per host");
    }

    #[test]
    fn least_loaded_balances() {
        let s = ShareScheduler::default();
        let jobs = [job(0, 8, 50.0)];
        let r = s.run(&hosts(4), &jobs, SimTime::from_secs(10_000));
        // 8 subjobs over 4 hosts = 2 per host; everyone gets a full CPU.
        assert!((r.outcomes[0].makespan_secs - 50.0).abs() <= 10.0);
    }

    #[test]
    fn equal_share_ignores_budgets() {
        // Identical shapes, wildly different budgets → identical outcomes.
        let s = ShareScheduler::default();
        let mut a = job(0, 4, 100.0);
        a.budget = 1.0;
        let mut b = job(1, 4, 100.0);
        b.budget = 1000.0;
        let r = s.run(&hosts(2), &[a, b], SimTime::from_secs(100_000));
        let m0 = r.outcomes[0].makespan_secs;
        let m1 = r.outcomes[1].makespan_secs;
        assert!((m0 - m1).abs() < 1e-9, "budget must not matter: {m0} {m1}");
    }
}
