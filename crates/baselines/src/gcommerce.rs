//! A G-commerce-style commodity market (Wolski, Plank, Bryan & Brevik,
//! IPDPS'01), as characterized in the paper's related work (§6):
//! "providers decide the selling price after considering long-term profit
//! and past performance … resources are divided into static slots that are
//! sold with a price based on expected revenue", with periodic budget
//! allocations to users.
//!
//! Implementation: hosts sell fixed vCPU slots at one *posted* price per
//! interval; the price moves toward supply/demand equilibrium with a
//! multiplicative adjustment. Buyers purchase slots while their budget
//! rate affords them. There is no preemption or proportional share — a
//! slot is yours for the interval at the posted price.
//!
//! The market rules live in [`GCommercePolicy`]; the tick loop is
//! `gm_core`'s shared [`PolicyDriver`]. The posted price is sampled at
//! the *start* of each tick (pre-adjustment), matching the original
//! G-commerce predictability analysis.

use gm_core::policy::{AllocationPolicy, PolicyDriver, PolicyError, TickCtx};
use gm_des::SimTime;
use gm_tycoon::{HostSpec, UserId};

use crate::common::{JobOutcome, JobRequest, RunResult};

/// The commodity-market scheduler (configuration + convenience runner).
pub struct GCommerceMarket {
    /// Allocation tick in seconds.
    pub interval_secs: f64,
    /// Initial posted price per slot-interval.
    pub initial_price: f64,
    /// Multiplicative price adjustment gain per interval.
    pub adjustment_gain: f64,
    /// Price floor.
    pub min_price: f64,
}

impl Default for GCommerceMarket {
    fn default() -> Self {
        GCommerceMarket {
            interval_secs: 10.0,
            initial_price: 0.01,
            adjustment_gain: 0.05,
            min_price: 1e-6,
        }
    }
}

impl GCommerceMarket {
    /// The policy object to hand to a [`PolicyDriver`].
    pub fn policy(&self) -> GCommercePolicy {
        GCommercePolicy {
            price: self.initial_price,
            adjustment_gain: self.adjustment_gain,
            min_price: self.min_price,
            posted: self.initial_price,
            demand: 0,
            tracks: Vec::new(),
        }
    }

    /// Run the workload until completion or `horizon` through the shared
    /// driver.
    pub fn run(&self, hosts: &[HostSpec], jobs: &[JobRequest], horizon: SimTime) -> RunResult {
        let mut policy = self.policy();
        PolicyDriver::new(hosts.to_vec(), self.interval_secs)
            .horizon(horizon)
            .run(&mut policy, jobs)
            .expect("invalid job")
    }
}

struct JobTrack {
    id: u32,
    user: UserId,
    arrival: SimTime,
    budget: f64,
    deadline_secs: f64,
    subjobs: u32,
    /// Remaining work of subjobs not currently holding a slot (paused
    /// subjobs keep their progress — checkpointed, not lost).
    queued: Vec<f64>,
    /// Remaining work of subjobs currently holding slots.
    running: Vec<f64>,
    finished: u32,
    spent: f64,
    budget_left: f64,
    finished_at: Option<SimTime>,
    nodes_stat: (u64, f64, usize),
}

/// The G-commerce posted-price market as an [`AllocationPolicy`].
pub struct GCommercePolicy {
    price: f64,
    adjustment_gain: f64,
    min_price: f64,
    /// Price as posted at the start of the current tick (what buyers saw
    /// and what the price history records).
    posted: f64,
    /// Demand measured at the posted price this tick (drives adjustment).
    demand: usize,
    tracks: Vec<JobTrack>,
}

impl GCommercePolicy {
    fn vcpu_mhz(ctx: &TickCtx) -> f64 {
        ctx.hosts
            .first()
            .map(|h| h.vcpu_capacity_mhz())
            .unwrap_or(2910.0)
    }
}

impl AllocationPolicy for GCommercePolicy {
    fn name(&self) -> &'static str {
        "gcommerce"
    }

    fn admit(&mut self, _ctx: &TickCtx, req: &JobRequest) -> Result<(), PolicyError> {
        self.tracks.push(JobTrack {
            id: req.id,
            user: req.user,
            arrival: req.arrival,
            budget: req.budget,
            deadline_secs: req.deadline_secs,
            subjobs: req.subjobs,
            queued: vec![req.work_per_subjob; req.subjobs as usize],
            running: Vec::new(),
            finished: 0,
            spent: 0.0,
            budget_left: req.budget,
            finished_at: None,
            nodes_stat: (0, 0.0, 0),
        });
        Ok(())
    }

    fn place(&mut self, ctx: &TickCtx) {
        let slots = ctx.total_slots();
        assert!(slots > 0);
        let vcpu_mhz = Self::vcpu_mhz(ctx);
        // The price buyers see this tick (recorded pre-adjustment).
        self.posted = self.price;
        let price = self.price;

        // Each buyer's willingness-to-pay per slot-interval: the budget
        // spread over the remaining slot-intervals of work — paying more
        // would bankrupt the job before completion.
        let willing: Vec<f64> = self
            .tracks
            .iter()
            .map(|t| {
                let slot_ints = |r: &f64| (r / (vcpu_mhz * ctx.interval_secs)).ceil();
                let total: f64 = t.running.iter().map(slot_ints).sum::<f64>()
                    + t.queued.iter().map(slot_ints).sum::<f64>();
                if total <= 0.0 {
                    0.0
                } else {
                    t.budget_left / total
                }
            })
            .collect();

        // Demand at the posted price: one slot per pending-or-running
        // subjob, but only from buyers whose willingness covers it.
        self.demand = self
            .tracks
            .iter()
            .zip(&willing)
            .filter(|(_, w)| price <= **w)
            .map(|(t, _)| t.running.len() + t.queued.len())
            .sum();

        // Sell slots in admission (= arrival, id) order: the posted-price
        // market is first-come-first-served.
        let mut sold = 0usize;
        for (ti, t) in self.tracks.iter_mut().enumerate() {
            if price > willing[ti] || price > t.budget_left {
                // Priced out: release the slots, checkpoint progress.
                t.queued.append(&mut t.running);
                continue;
            }
            // Keep already-running subjobs first (pay per interval), then
            // resume queued ones.
            let mut affordable = (t.budget_left / price).floor() as usize;
            let kept = t.running.len().min(slots - sold).min(affordable);
            while t.running.len() > kept {
                let r = t.running.pop().expect("nonempty");
                t.queued.push(r);
            }
            sold += kept;
            affordable -= kept;
            while !t.queued.is_empty() && sold < slots && affordable > 0 {
                let r = t.queued.remove(0);
                t.running.push(r);
                sold += 1;
                affordable -= 1;
            }
            let cost = price * t.running.len() as f64;
            t.budget_left -= cost;
            t.spent += cost;
        }
    }

    fn advance(&mut self, ctx: &TickCtx) {
        let vcpu_mhz = Self::vcpu_mhz(ctx);
        let dt = ctx.interval();
        for t in self.tracks.iter_mut() {
            for r in t.running.iter_mut() {
                *r -= vcpu_mhz * ctx.interval_secs;
            }
            let before = t.running.len();
            t.running.retain(|r| *r > 0.0);
            let done = before - t.running.len();
            t.finished += done as u32;
            if t.finished == t.subjobs && t.finished_at.is_none() {
                t.finished_at = Some(ctx.now + dt);
            }
        }
    }

    fn settle(&mut self, ctx: &TickCtx) {
        for t in self.tracks.iter_mut() {
            if t.finished < t.subjobs {
                let active = t.running.len();
                t.nodes_stat.0 += 1;
                t.nodes_stat.1 += active as f64;
                t.nodes_stat.2 = t.nodes_stat.2.max(active);
            }
        }
        // Supply/demand price adjustment for the next tick.
        let slots = ctx.total_slots();
        let imbalance = (self.demand as f64 - slots as f64) / slots as f64;
        self.price *= 1.0 + self.adjustment_gain * imbalance.clamp(-1.0, 1.0);
        self.price = self.price.max(self.min_price);
    }

    fn price(&self, _ctx: &TickCtx) -> Option<f64> {
        Some(self.posted)
    }

    fn all_settled(&self) -> bool {
        self.tracks.iter().all(|t| t.finished == t.subjobs)
    }

    fn outcomes(&self, now: SimTime) -> Vec<JobOutcome> {
        self.tracks
            .iter()
            .map(|t| JobOutcome {
                id: t.id,
                user: t.user,
                finished_at: t.finished_at,
                makespan_secs: t.finished_at.unwrap_or(now).since(t.arrival).as_secs_f64(),
                value: gm_core::workload::on_time_value(
                    t.budget,
                    t.deadline_secs,
                    t.arrival,
                    t.finished_at,
                ),
                cost: t.spent,
                max_nodes: t.nodes_stat.2,
                avg_nodes: if t.nodes_stat.0 == 0 {
                    0.0
                } else {
                    t.nodes_stat.1 / t.nodes_stat.0 as f64
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_tycoon::UserId;

    fn hosts(n: u32) -> Vec<HostSpec> {
        (0..n).map(HostSpec::testbed).collect()
    }

    fn job(id: u32, subjobs: u32, work_secs: f64, budget: f64) -> JobRequest {
        JobRequest {
            id,
            user: UserId(id),
            subjobs,
            work_per_subjob: work_secs * 2910.0,
            arrival: SimTime::ZERO,
            budget,
            deadline_secs: 1e9,
        }
    }

    #[test]
    fn funded_job_completes() {
        let m = GCommerceMarket::default();
        let r = m.run(&hosts(2), &[job(0, 4, 100.0, 1000.0)], SimTime::from_secs(10_000));
        assert!(r.all_finished());
        assert!(r.outcomes[0].cost > 0.0);
    }

    #[test]
    fn price_rises_under_excess_demand() {
        let m = GCommerceMarket::default();
        // 1 host (2 slots), 20 wanted slots → sustained excess demand.
        let r = m.run(&hosts(1), &[job(0, 20, 500.0, 1e9)], SimTime::from_secs(2_000));
        let first = r.price_history.first().unwrap().1;
        let last = r.price_history.last().unwrap().1;
        assert!(last > first * 2.0, "price should rise: {first} → {last}");
    }

    #[test]
    fn price_decays_when_idle() {
        let m = GCommerceMarket::default();
        let r = m.run(&hosts(4), &[job(0, 1, 10.0, 100.0)], SimTime::from_secs(3_000));
        // After the tiny job finishes… horizon ends at completion; instead
        // run with a no-op long horizon by adding an unfunded job.
        let r2 = m.run(
            &hosts(4),
            &[job(0, 1, 10.0, 100.0), job(1, 1, 1e12, 0.0)],
            SimTime::from_secs(3_000),
        );
        let last = r2.price_history.last().unwrap().1;
        assert!(last < m.initial_price, "idle market must cool: {last}");
        drop(r);
    }

    #[test]
    fn broke_job_starves() {
        let m = GCommerceMarket::default();
        let r = m.run(&hosts(2), &[job(0, 2, 100.0, 0.0)], SimTime::from_secs(2_000));
        assert!(!r.all_finished());
        assert_eq!(r.outcomes[0].max_nodes, 0);
    }

    #[test]
    fn posted_price_is_less_volatile_than_burst_auctions() {
        // Sanity for the G-commerce predictability claim: the posted price
        // series moves by at most `gain` per step.
        let m = GCommerceMarket::default();
        let jobs: Vec<JobRequest> = (0..5).map(|i| job(i, 10, 300.0, 1e6)).collect();
        let r = m.run(&hosts(3), &jobs, SimTime::from_secs(20_000));
        for w in r.price_history.windows(2) {
            let ratio = w[1].1 / w[0].1;
            assert!(
                (1.0 - m.adjustment_gain - 1e-9..=1.0 + m.adjustment_gain + 1e-9)
                    .contains(&ratio),
                "price jumped by {ratio}"
            );
        }
    }

    #[test]
    fn richer_job_outlasts_poorer_under_contention() {
        let m = GCommerceMarket::default();
        // Over-subscribed market: prices climb until the poor job can't buy.
        let rich = job(0, 6, 2_000.0, 1e9);
        let poor = job(1, 6, 2_000.0, 0.05);
        let r = m.run(&hosts(1), &[rich, poor], SimTime::from_secs(200_000));
        let rich_done = r.outcomes[0].finished_at;
        let poor_done = r.outcomes[1].finished_at;
        match (rich_done, poor_done) {
            (Some(tr), Some(tp)) => assert!(tr <= tp),
            (Some(_), None) => {} // poor starved entirely — acceptable
            other => panic!("rich job should finish: {other:?}"),
        }
    }
}
