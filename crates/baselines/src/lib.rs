//! # gm-baselines — comparison schedulers
//!
//! The schedulers the paper positions itself against (§2.1, §6), usable as
//! baselines in the benchmark harness:
//!
//! * [`fifo`] — a traditional PBS/LSF-style space-shared batch queue
//!   ("traditional queueing and batch scheduling algorithms assume that
//!   job priorities can simply be set by administrative means", §2.1).
//! * [`share`] — administratively equal processor sharing with
//!   least-loaded or round-robin placement (the no-market strawman).
//! * [`gcommerce`] — a G-commerce-style commodity market (Wolski et al.):
//!   posted per-slot prices adjusted toward supply/demand equilibrium.
//! * [`wta`] — per-host winner-takes-all auctions, first-price (the
//!   auction model G-commerce simulated: "winner-takes-it-all auctions and
//!   not proportional share, leading to reduced fairness", §6) or
//!   second-price sealed-bid (Spawn, the paper's ancestor system).
//!
//! Each baseline is an implementation of
//! [`gm_core::policy::AllocationPolicy`] ([`FifoPolicy`], [`SharePolicy`],
//! [`GCommercePolicy`], [`WtaPolicy`]); the simulation loop itself is
//! `gm_core`'s single shared [`PolicyDriver`](gm_core::PolicyDriver), so
//! every policy — including the Tycoon market via
//! `gridmarket::policy::TycoonPolicy` — runs under identical arrival
//! streams, fault plans, and clocks. The old `SchedulerX::run(...)`
//! convenience methods remain as thin wrappers over that driver, and the
//! [`common`] workload/outcome types are re-exports from
//! [`gm_core::workload`].

pub mod common;
pub mod fifo;
pub mod gcommerce;
pub mod share;
pub mod wta;

pub use common::{jain_fairness, JobOutcome, JobRequest, RunResult};
pub use fifo::{FifoBatchQueue, FifoPolicy};
pub use gcommerce::{GCommerceMarket, GCommercePolicy};
pub use share::{Placement, SharePolicy, ShareScheduler};
pub use wta::{Pricing, WinnerTakesAllMarket, WtaPolicy};
