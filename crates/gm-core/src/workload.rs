//! Policy-neutral workload and outcome types.
//!
//! These used to live in `gm_baselines::common`; they moved here so the
//! Tycoon market and the conventional baselines report through one type
//! universe (the `baselines::common` paths remain as re-exports).

use gm_des::SimTime;
use gm_tycoon::UserId;

use crate::policy::PolicyError;

/// A job as every policy sees it: a bag of equally-sized sub-jobs.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRequest {
    /// Job id (unique within a run).
    pub id: u32,
    /// Owning user.
    pub user: UserId,
    /// Number of sub-jobs.
    pub subjobs: u32,
    /// Work per sub-job in MHz·seconds.
    pub work_per_subjob: f64,
    /// Arrival time.
    pub arrival: SimTime,
    /// Budget in credits (market policies only).
    pub budget: f64,
    /// Deadline in seconds from arrival (market policies only).
    pub deadline_secs: f64,
}

impl JobRequest {
    /// Total work across all sub-jobs in MHz·seconds.
    pub fn total_work(&self) -> f64 {
        f64::from(self.subjobs) * self.work_per_subjob
    }

    /// Did a job that completed at `finished_at` make its deadline?
    /// `deadline_secs <= 0` means "no deadline" (always on time).
    pub fn on_time(&self, finished_at: SimTime) -> bool {
        self.deadline_secs <= 0.0
            || finished_at.since(self.arrival).as_secs_f64() <= self.deadline_secs + 1e-9
    }

    /// The shared all-or-nothing value model used by every policy that
    /// has no richer value semantics of its own: the job delivers its
    /// full `budget` as value iff it finished within its deadline, and
    /// nothing otherwise. SLA-curve policies (`gm-optimal`) override
    /// this with partial-credit curve values; both models award exactly
    /// `budget` for full on-time delivery, which is what makes welfare
    /// comparable across policies.
    pub fn on_time_value(&self, finished_at: Option<SimTime>) -> f64 {
        on_time_value(self.budget, self.deadline_secs, self.arrival, finished_at)
    }

    /// Validate basic invariants.
    pub fn validate(&self) -> Result<(), PolicyError> {
        if self.subjobs == 0 {
            return Err(PolicyError::invalid(format!("job {}: zero subjobs", self.id)));
        }
        if self.work_per_subjob.is_nan() || self.work_per_subjob <= 0.0 {
            return Err(PolicyError::invalid(format!(
                "job {}: non-positive work",
                self.id
            )));
        }
        Ok(())
    }
}

/// The shared on-time value rule over raw fields (see
/// [`JobRequest::on_time_value`]) — for policies that track jobs in
/// their own structures instead of keeping the request around.
pub fn on_time_value(
    budget: f64,
    deadline_secs: f64,
    arrival: SimTime,
    finished_at: Option<SimTime>,
) -> f64 {
    match finished_at {
        Some(t) if deadline_secs <= 0.0 || t.since(arrival).as_secs_f64() <= deadline_secs + 1e-9 => {
            budget
        }
        _ => 0.0,
    }
}

/// What happened to one job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Job id.
    pub id: u32,
    /// Owning user.
    pub user: UserId,
    /// Completion time (None = did not finish within the horizon).
    pub finished_at: Option<SimTime>,
    /// Makespan in seconds (up to the horizon if unfinished).
    pub makespan_secs: f64,
    /// Realized value delivered to the user under the run's value model
    /// (see [`JobRequest::on_time_value`]); the per-job welfare term.
    pub value: f64,
    /// Credits spent (market policies; 0 otherwise).
    pub cost: f64,
    /// Peak concurrent sub-jobs.
    pub max_nodes: usize,
    /// Average concurrent sub-jobs over the job's active lifetime.
    pub avg_nodes: f64,
}

/// Result of one policy run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Per-job outcomes in submission order (one per [`JobRequest`]).
    pub outcomes: Vec<JobOutcome>,
    /// Posted/spot price history (market policies; empty otherwise).
    pub price_history: Vec<(SimTime, f64)>,
}

impl RunResult {
    /// All jobs finished?
    pub fn all_finished(&self) -> bool {
        self.outcomes.iter().all(|o| o.finished_at.is_some())
    }

    /// Makespan of the whole batch (max over finished jobs), seconds.
    pub fn batch_makespan_secs(&self) -> f64 {
        self.outcomes
            .iter()
            .map(|o| o.makespan_secs)
            .fold(0.0, f64::max)
    }

    /// Coefficient of variation of the price history (the G-commerce
    /// "price predictability" metric; lower = more predictable).
    pub fn price_volatility(&self) -> Option<f64> {
        let xs: Vec<f64> = self.price_history.iter().map(|(_, p)| *p).collect();
        crate::metrics::price_volatility(&xs)
    }

    /// Total realized value across all jobs — the allocative (social)
    /// welfare of the run. Payments are transfers, so they do not enter;
    /// see [`crate::metrics::welfare`].
    pub fn welfare(&self) -> f64 {
        crate::metrics::welfare(self.outcomes.iter().map(|o| o.value))
    }

    /// Total credits charged across all jobs — the provider-side revenue
    /// of the run (0 for non-market policies).
    pub fn revenue(&self) -> f64 {
        crate::metrics::revenue(self.outcomes.iter().map(|o| o.cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn price_volatility_via_result() {
        let flat = RunResult {
            outcomes: vec![],
            price_history: (0..10).map(|i| (SimTime::from_secs(i), 2.0)).collect(),
        };
        assert!(flat.price_volatility().unwrap() < 1e-12);
        let empty = RunResult {
            outcomes: vec![],
            price_history: vec![],
        };
        assert!(empty.price_volatility().is_none());
    }

    #[test]
    fn request_validation() {
        let mut r = JobRequest {
            id: 0,
            user: UserId(1),
            subjobs: 2,
            work_per_subjob: 100.0,
            arrival: SimTime::ZERO,
            budget: 10.0,
            deadline_secs: 100.0,
        };
        assert!(r.validate().is_ok());
        r.subjobs = 0;
        assert!(r.validate().is_err());
        r.subjobs = 1;
        r.work_per_subjob = 0.0;
        assert!(r.validate().is_err());
    }
}
