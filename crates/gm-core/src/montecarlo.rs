//! The Monte-Carlo chaos engine: a deterministic parallel scenario
//! runner with panic quarantine and confidence-interval reports.
//!
//! The paper validates its market claims with a handful of fixed-seed
//! runs; this module is the throughput multiplier that turns each of
//! those anecdotes into a population. A [`MonteCarlo`] runner fans N
//! seeded scenarios across the in-repo [`gm_exec::ThreadPool`] in
//! bounded-memory batches and guarantees three properties (DESIGN.md
//! §13):
//!
//! 1. **Byte determinism** — per-seed results are assembled by *seed
//!    index*, never by completion order, so the same seed list yields
//!    bit-identical [`McBatch`]es (and rendered reports) at any thread
//!    count and under any scheduling interleaving.
//! 2. **Panic quarantine** — a panicking scenario becomes a
//!    [`ScenarioFailure`] data point carrying its seed, the panic
//!    message, and a replay hint; the other N − 1 scenarios complete
//!    and the process survives.
//! 3. **Honest aggregates** — [`McReport`] summarises every metric with
//!    mean / variance / p50–p99 and a Student-t confidence interval
//!    ([`gm_numeric::student`]), so "money is conserved under random
//!    fault schedules" ships with a sample size and an interval, not a
//!    seed triple.
//!
//! Telemetry (`mc.*` scenario counters, per-batch wall-time histogram,
//! and the `exec.*` pool counters) is registered lazily via
//! [`MonteCarlo::with_registry`], mirroring the `net.*` convention:
//! default runs keep the historical metric set byte-identical.

use std::sync::Arc;
use std::time::Instant;

use gm_des::{Rng64, SplitMix64};
use gm_exec::ThreadPool;
use gm_numeric::Summary;
use gm_telemetry::{Counter, Gauge, Histogram, Registry};

/// Default scenarios in flight per batch (bounds peak memory: at most
/// this many un-aggregated results exist at once).
pub const DEFAULT_BATCH: usize = 256;

/// Default confidence level of the aggregate report intervals.
pub const DEFAULT_CONFIDENCE: f64 = 0.95;

/// A quarantined scenario: the panic became a data point, not a dead
/// process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioFailure {
    /// The scenario seed that panicked — the replay key.
    pub seed: u64,
    /// Position of that seed in the submitted seed list.
    pub index: usize,
    /// Rendered panic payload (`&str`/`String` payloads verbatim).
    pub panic_message: String,
    /// How to reproduce this exact scenario in isolation.
    pub replay_hint: String,
}

impl std::fmt::Display for ScenarioFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "seed {:#018x} (index {}): {} — {}",
            self.seed, self.index, self.panic_message, self.replay_hint
        )
    }
}

/// One scenario's slot in a [`McBatch`], in seed-index order.
#[derive(Clone, Debug)]
pub struct McOutcome<T> {
    /// The scenario seed.
    pub seed: u64,
    /// Position in the submitted seed list.
    pub index: usize,
    /// The scenario's result, or its quarantined failure.
    pub result: Result<T, ScenarioFailure>,
}

/// The results of one [`MonteCarlo::run`]: one outcome per submitted
/// seed, **always** ordered by seed index regardless of which worker
/// finished first.
#[derive(Clone, Debug)]
pub struct McBatch<T> {
    /// Per-seed outcomes in seed-index order.
    pub outcomes: Vec<McOutcome<T>>,
    confidence: f64,
}

impl<T> McBatch<T> {
    /// Reassemble a batch from outcomes (used by callers that fan one
    /// tagged run out over several logical batches — e.g. the per-policy
    /// chaos sweep regrouping one `(seed × policy)` run by policy).
    pub fn from_outcomes(outcomes: Vec<McOutcome<T>>, confidence: f64) -> McBatch<T> {
        McBatch {
            outcomes,
            confidence,
        }
    }

    /// Confidence level of [`McBatch::report`] intervals.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// Number of submitted scenarios.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// True when no scenarios were submitted.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Completed `(seed, result)` pairs in seed-index order.
    pub fn completed(&self) -> impl Iterator<Item = (u64, &T)> {
        self.outcomes
            .iter()
            .filter_map(|o| o.result.as_ref().ok().map(|r| (o.seed, r)))
    }

    /// Quarantined failures in seed-index order.
    pub fn failures(&self) -> impl Iterator<Item = &ScenarioFailure> {
        self.outcomes.iter().filter_map(|o| o.result.as_ref().err())
    }

    /// Seeds of every quarantined scenario (the replay list).
    pub fn quarantined_seeds(&self) -> Vec<u64> {
        self.failures().map(|f| f.seed).collect()
    }

    /// Aggregate a report over the completed scenarios.
    ///
    /// `metrics` maps one scenario result to its named metric values;
    /// every completed scenario must report the same metric names in the
    /// same order (the extraction is a pure function of the result, so
    /// this holds by construction for any honest extractor).
    ///
    /// # Panics
    /// Panics if two scenarios disagree on the metric name set.
    pub fn report(&self, metrics: impl Fn(&T) -> Vec<(&'static str, f64)>) -> McReport {
        let mut names: Vec<&'static str> = Vec::new();
        let mut columns: Vec<Vec<f64>> = Vec::new();
        for (_, result) in self.completed() {
            let row = metrics(result);
            if names.is_empty() {
                names = row.iter().map(|(n, _)| *n).collect();
                columns = vec![Vec::new(); names.len()];
            }
            assert_eq!(
                row.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
                names,
                "scenario metric names must be identical across seeds"
            );
            for (col, (_, v)) in columns.iter_mut().zip(&row) {
                col.push(*v);
            }
        }
        let metrics = names
            .iter()
            .zip(&columns)
            .filter_map(|(&name, col)| {
                Summary::of(col, self.confidence).map(|summary| MetricSummary { name, summary })
            })
            .collect();
        McReport {
            requested: self.outcomes.len(),
            completed: self.completed().count(),
            confidence: self.confidence,
            metrics,
            quarantined: self
                .failures()
                .map(|f| (f.seed, f.panic_message.clone()))
                .collect(),
        }
    }
}

/// One metric's aggregate statistics in a [`McReport`].
#[derive(Clone, Copy, Debug)]
pub struct MetricSummary {
    /// Metric name (as reported by the extractor).
    pub name: &'static str,
    /// Descriptive statistics + Student-t confidence interval.
    pub summary: Summary,
}

/// Aggregate robustness report over one Monte-Carlo batch.
#[derive(Clone, Debug)]
pub struct McReport {
    /// Scenarios submitted.
    pub requested: usize,
    /// Scenarios that completed (requested − quarantined).
    pub completed: usize,
    /// Confidence level of every interval below.
    pub confidence: f64,
    /// Per-metric summaries, in extractor order.
    pub metrics: Vec<MetricSummary>,
    /// `(seed, panic message)` of every quarantined scenario.
    pub quarantined: Vec<(u64, String)>,
}

impl McReport {
    /// Look up one metric's summary by name.
    pub fn metric(&self, name: &str) -> Option<&Summary> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .map(|m| &m.summary)
    }

    /// Render the report as an aligned text table (deterministic: a pure
    /// function of the batch contents).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(
            s,
            "monte-carlo: {} scenarios, {} completed, {} quarantined  ({}% CI, Student-t)",
            self.requested,
            self.completed,
            self.quarantined.len(),
            self.confidence * 100.0
        )
        .unwrap();
        writeln!(
            s,
            "{:<24} {:>6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "metric", "n", "mean", "±ci", "p50", "p99", "min", "max"
        )
        .unwrap();
        for m in &self.metrics {
            let x = &m.summary;
            writeln!(
                s,
                "{:<24} {:>6} {:>12.6} {:>12.6} {:>12.6} {:>12.6} {:>12.6} {:>12.6}",
                m.name,
                x.count,
                x.mean,
                x.ci_half_width(),
                x.p50,
                x.p99,
                x.min,
                x.max
            )
            .unwrap();
        }
        if !self.quarantined.is_empty() {
            writeln!(s, "quarantined seeds:").unwrap();
            for (seed, msg) in &self.quarantined {
                writeln!(s, "  {seed:#018x}  {msg}").unwrap();
            }
        }
        s
    }
}

/// Telemetry handles, resolved once at attach time (lazy surface: only
/// runs that call [`MonteCarlo::with_registry`] export `mc.*`/`exec.*`).
struct McInstruments {
    /// `mc.scenarios_started`
    started: Counter,
    /// `mc.scenarios_completed`
    completed: Counter,
    /// `mc.scenarios_panicked`
    panicked: Counter,
    /// `mc.batch_ms` — wall time per bounded batch.
    batch_ms: Histogram,
    /// `exec.tasks_executed` — pool-lifetime task count.
    exec_executed: Gauge,
    /// `exec.tasks_panicked` — pool-lifetime caught panics.
    exec_panicked: Gauge,
}

/// The deterministic parallel scenario runner. See the module docs for
/// the determinism and quarantine contract.
pub struct MonteCarlo {
    pool: ThreadPool,
    batch: usize,
    confidence: f64,
    replay_template: String,
    instruments: Option<McInstruments>,
}

impl MonteCarlo {
    /// Runner over a fresh pool of `threads` workers.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> MonteCarlo {
        MonteCarlo {
            pool: ThreadPool::new(threads),
            batch: DEFAULT_BATCH,
            confidence: DEFAULT_CONFIDENCE,
            replay_template: "replay: re-run this scenario with seed {seed} (any thread count)"
                .to_owned(),
            instruments: None,
        }
    }

    /// Runner sized to the available CPUs (min 1).
    pub fn with_default_parallelism() -> MonteCarlo {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        MonteCarlo::new(n)
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The underlying pool (diagnostics: `tasks_executed`/`tasks_panicked`).
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Scenarios in flight per batch — the memory bound. Results of a
    /// batch are drained into the output before the next batch starts.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn batch(mut self, n: usize) -> Self {
        assert!(n > 0, "batch size must be >= 1");
        self.batch = n;
        self
    }

    /// Confidence level for [`McBatch::report`] intervals (default 0.95).
    ///
    /// # Panics
    /// Panics unless `0 < c < 1`.
    pub fn confidence(mut self, c: f64) -> Self {
        assert!(c > 0.0 && c < 1.0, "confidence in (0,1), got {c}");
        self.confidence = c;
        self
    }

    /// Template for [`ScenarioFailure::replay_hint`]; every `{seed}` is
    /// replaced with the failing seed in hex.
    pub fn replay_hint(mut self, template: &str) -> Self {
        self.replay_template = template.to_owned();
        self
    }

    /// Attach telemetry: `mc.scenarios_started` / `mc.scenarios_completed`
    /// / `mc.scenarios_panicked` counters, the `mc.batch_ms` wall-time
    /// histogram, and `exec.tasks_executed` / `exec.tasks_panicked`
    /// gauges sampled from the pool after each run.
    pub fn with_registry(mut self, registry: &Registry) -> Self {
        self.instruments = Some(McInstruments {
            started: registry.counter("mc.scenarios_started"),
            completed: registry.counter("mc.scenarios_completed"),
            panicked: registry.counter("mc.scenarios_panicked"),
            batch_ms: registry.histogram("mc.batch_ms"),
            exec_executed: registry.gauge("exec.tasks_executed"),
            exec_panicked: registry.gauge("exec.tasks_panicked"),
        });
        self
    }

    /// Run `scenario(seed)` for every seed, in bounded parallel batches.
    ///
    /// The returned batch holds one outcome per seed **in seed-index
    /// order**; a panicking scenario is quarantined as a
    /// [`ScenarioFailure`] while the rest complete. The scenario function
    /// must be a pure function of its seed for the determinism contract
    /// to mean anything (every in-repo scenario is).
    pub fn run<T: Send + 'static>(
        &self,
        seeds: &[u64],
        scenario: impl Fn(u64) -> T + Send + Sync + 'static,
    ) -> McBatch<T> {
        let items: Vec<(u64, ())> = seeds.iter().map(|&s| (s, ())).collect();
        self.run_tagged(&items, move |seed, ()| scenario(seed))
    }

    /// Like [`MonteCarlo::run`], but every scenario carries an arbitrary
    /// tag alongside its seed — the fan-out axis for sweeps that vary
    /// more than the seed (e.g. the chaos sweep running every *(seed ×
    /// policy)* pair through one pool). The determinism and quarantine
    /// contract is identical: outcomes come back in submission order,
    /// and a panicking `(seed, tag)` pair is quarantined on its own.
    pub fn run_tagged<K, T>(
        &self,
        items: &[(u64, K)],
        scenario: impl Fn(u64, &K) -> T + Send + Sync + 'static,
    ) -> McBatch<T>
    where
        K: Clone + Send + Sync + 'static,
        T: Send + 'static,
    {
        let scenario = Arc::new(scenario);
        let mut outcomes: Vec<McOutcome<T>> = Vec::with_capacity(items.len());
        if let Some(ins) = &self.instruments {
            ins.started.add(items.len() as u64);
        }
        for chunk in items.chunks(self.batch) {
            let t0 = Instant::now();
            let scenario = Arc::clone(&scenario);
            // `try_par_map` fills result slots by item index and turns a
            // task panic into an `Err(message)` slot, so this batch comes
            // back in submission order no matter which worker ran what —
            // and a detonating scenario cannot take the sweep down with it.
            let results: Vec<Result<T, String>> = self
                .pool
                .try_par_map(chunk.to_vec(), move |(seed, tag)| scenario(seed, &tag));
            let base = outcomes.len();
            for (offset, ((seed, _), result)) in chunk.iter().zip(results).enumerate() {
                let index = base + offset;
                let result = result.map_err(|panic_message| ScenarioFailure {
                    seed: *seed,
                    index,
                    replay_hint: self
                        .replay_template
                        .replace("{seed}", &format!("{seed:#x}")),
                    panic_message,
                });
                if let Some(ins) = &self.instruments {
                    match &result {
                        Ok(_) => ins.completed.inc(),
                        Err(_) => ins.panicked.inc(),
                    }
                }
                outcomes.push(McOutcome {
                    seed: *seed,
                    index,
                    result,
                });
            }
            if let Some(ins) = &self.instruments {
                ins.batch_ms.record(t0.elapsed().as_secs_f64() * 1e3);
            }
        }
        if let Some(ins) = &self.instruments {
            ins.exec_executed.set(self.pool.tasks_executed() as f64);
            ins.exec_panicked.set(self.pool.tasks_panicked() as f64);
        }
        McBatch {
            outcomes,
            confidence: self.confidence,
        }
    }
}

/// Derive `n` scenario seeds from one base seed (a SplitMix64 stream —
/// the standard seed-sequence construction, so neighbouring base seeds
/// do not produce overlapping scenario seeds).
pub fn seed_stream(base: u64, n: usize) -> Vec<u64> {
    let mut rng = SplitMix64::new(base);
    (0..n).map(|_| rng.next_u64()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic pseudo-scenario: a short arithmetic walk whose
    /// result depends only on the seed.
    fn walk(seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        let mut acc = 0.0;
        let mut peak: f64 = 0.0;
        for _ in 0..100 {
            acc += rng.next_f64() - 0.5;
            peak = peak.max(acc.abs());
        }
        vec![acc, peak]
    }

    fn walk_metrics(r: &[f64]) -> Vec<(&'static str, f64)> {
        vec![("endpoint", r[0]), ("peak", r[1])]
    }

    /// Bit-exact fingerprint of a batch of float results.
    fn fingerprint(batch: &McBatch<Vec<f64>>) -> Vec<(u64, Result<Vec<u64>, String>)> {
        batch
            .outcomes
            .iter()
            .map(|o| {
                (
                    o.seed,
                    o.result
                        .as_ref()
                        .map(|v| v.iter().map(|x| x.to_bits()).collect())
                        .map_err(|f| f.panic_message.clone()),
                )
            })
            .collect()
    }

    #[test]
    fn results_are_byte_identical_across_thread_counts() {
        let seeds = seed_stream(0xC0FFEE, 40);
        let baseline = MonteCarlo::new(1).run(&seeds, walk);
        for threads in [2, 8] {
            let batch = MonteCarlo::new(threads).batch(7).run(&seeds, walk);
            assert_eq!(fingerprint(&baseline), fingerprint(&batch), "threads={threads}");
            assert_eq!(
                baseline.report(|r| walk_metrics(r)).render(),
                batch.report(|r| walk_metrics(r)).render(),
                "report differs at threads={threads}"
            );
        }
    }

    #[test]
    fn panicking_seed_is_quarantined_with_the_right_seed() {
        let seeds = seed_stream(7, 16);
        let bad = seeds[5];
        let mc = MonteCarlo::new(4).replay_hint("re-run --seed {seed}");
        let batch = mc.run(&seeds, move |s| {
            if s == bad {
                panic!("scenario exploded on purpose");
            }
            walk(s)
        });
        assert_eq!(batch.quarantined_seeds(), vec![bad]);
        let failure = batch.failures().next().unwrap();
        assert_eq!(failure.seed, bad);
        assert_eq!(failure.index, 5);
        assert_eq!(failure.panic_message, "scenario exploded on purpose");
        assert_eq!(failure.replay_hint, format!("re-run --seed {bad:#x}"));
        // The other 15 completed, in order.
        assert_eq!(batch.completed().count(), 15);
        assert_eq!(mc.pool().tasks_panicked(), 1);
        // Aggregates exclude the quarantined seed but report it.
        let report = batch.report(|r| walk_metrics(r));
        assert_eq!(report.requested, 16);
        assert_eq!(report.completed, 15);
        assert_eq!(report.metric("endpoint").unwrap().count, 15);
        assert_eq!(report.quarantined, vec![(bad, "scenario exploded on purpose".into())]);
        assert!(report.render().contains("quarantined seeds:"));
    }

    #[test]
    fn batching_bounds_do_not_change_results() {
        let seeds = seed_stream(99, 23);
        let whole = MonteCarlo::new(3).batch(1000).run(&seeds, walk);
        let tiny = MonteCarlo::new(3).batch(2).run(&seeds, walk);
        assert_eq!(fingerprint(&whole), fingerprint(&tiny));
    }

    #[test]
    fn telemetry_is_lazy_and_counts_scenarios() {
        // Default: no registry, no mc.* metrics anywhere.
        let silent = Registry::new();
        MonteCarlo::new(2).run(&seed_stream(1, 4), walk);
        assert!(silent.snapshot().counters.is_empty());

        // Attached: scenario counters and the exec surface appear.
        let registry = Registry::new();
        let mc = MonteCarlo::new(2).with_registry(&registry);
        let bad = seed_stream(1, 6)[2];
        mc.run(&seed_stream(1, 6), move |s| {
            if s == bad {
                panic!("boom");
            }
            walk(s)
        });
        let snap = registry.snapshot();
        assert_eq!(snap.counters["mc.scenarios_started"], 6);
        assert_eq!(snap.counters["mc.scenarios_completed"], 5);
        assert_eq!(snap.counters["mc.scenarios_panicked"], 1);
        assert_eq!(snap.gauges["exec.tasks_panicked"], 1.0);
        assert!(snap.gauges["exec.tasks_executed"] >= 6.0);
        assert!(snap.histograms.contains_key("mc.batch_ms"));
    }

    #[test]
    fn report_on_empty_and_degenerate_batches() {
        let empty = MonteCarlo::new(1).run(&[], walk);
        let r = empty.report(|r| walk_metrics(r));
        assert_eq!(r.requested, 0);
        assert!(r.metrics.is_empty());

        let one = MonteCarlo::new(1).run(&[42], walk);
        let r = one.report(|r| walk_metrics(r));
        assert_eq!(r.completed, 1);
        let m = r.metric("endpoint").unwrap();
        // Single observation: degenerate interval at the mean.
        assert_eq!(m.ci_lo, m.mean);
        assert_eq!(m.ci_hi, m.mean);
    }

    #[test]
    fn seed_stream_is_stable_and_distinct() {
        let a = seed_stream(5, 8);
        let b = seed_stream(5, 8);
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 8, "seed collision in stream");
    }
}
