//! Comparison metrics shared by all policy reports.

/// Jain's fairness index of a set of non-negative allocations:
/// `(Σx)² / (n·Σx²)`; 1 = perfectly fair, 1/n = maximally unfair.
pub fn jain_fairness(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let s: f64 = xs.iter().sum();
    let s2: f64 = xs.iter().map(|x| x * x).sum();
    if s2 <= 0.0 {
        return 1.0;
    }
    s * s / (xs.len() as f64 * s2)
}

/// Allocative (social) welfare: the sum of per-job realized values.
/// Payments are transfers between users and providers, so they cancel
/// out of welfare and are reported separately as [`revenue`]. Every
/// policy reports this uniformly through `JobOutcome::value`, so the
/// VCG tier, the Tycoon market, and the conventional baselines are
/// compared on one scale (DESIGN.md §14).
pub fn welfare(values: impl IntoIterator<Item = f64>) -> f64 {
    values.into_iter().sum()
}

/// Provider-side revenue: the sum of per-job credits charged (0 for
/// policies that do not charge).
pub fn revenue(costs: impl IntoIterator<Item = f64>) -> f64 {
    costs.into_iter().sum()
}

/// Coefficient of variation of a price series (the G-commerce "price
/// predictability" metric; lower = more predictable). `None` when the
/// series is too short or its mean is ~0.
pub fn price_volatility(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if mean.abs() < 1e-300 {
        return None;
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
    Some(var.sqrt() / mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_index_extremes() {
        assert!((jain_fairness(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        let unfair = jain_fairness(&[1.0, 0.0, 0.0, 0.0]);
        assert!((unfair - 0.25).abs() < 1e-12);
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn jain_index_monotone_in_imbalance() {
        let a = jain_fairness(&[2.0, 2.0, 2.0]);
        let b = jain_fairness(&[3.0, 2.0, 1.0]);
        let c = jain_fairness(&[5.0, 0.5, 0.5]);
        assert!(a > b && b > c);
    }

    #[test]
    fn volatility_edge_cases() {
        assert!(price_volatility(&[]).is_none());
        assert!(price_volatility(&[1.0]).is_none());
        assert!(price_volatility(&[0.0, 0.0, 0.0]).is_none());
        assert!(price_volatility(&[2.0; 10]).unwrap() < 1e-12);
        let spiky: Vec<f64> = (0..10).map(|i| if i % 2 == 0 { 1.0 } else { 3.0 }).collect();
        assert!(price_volatility(&spiky).unwrap() > 0.4);
    }
}
