//! The [`AllocationPolicy`] trait and the unified [`PolicyDriver`].
//!
//! Every allocator in the suite — Tycoon's bid-based proportional-share
//! market as well as the FIFO, equal-share, G-commerce, and
//! winner-takes-all baselines — implements one trait, and a single
//! per-tick loop drives them all:
//!
//! ```text
//! per tick:  begin_tick → faults → admit arrivals → place → advance
//!            → settle → price sample → now += interval
//! ```
//!
//! The driver owns everything policy-independent: the host inventory,
//! the interval, the horizon, the arrival stream ordering (by
//! `(arrival, id)`), the fault schedule, and the telemetry counters.
//! Because those are shared, two policies run under *identical* arrival
//! streams and fault plans — the A/B comparison in the paper's Tables
//! 1/2 is apples to apples by construction.

use gm_des::{FaultEvent, FaultPlan, SimDuration, SimTime};
use gm_telemetry::{Counter, Registry};
use gm_tycoon::HostSpec;

use crate::workload::{JobOutcome, JobRequest, RunResult};

/// Error from validation, admission, or a policy-internal failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// A [`JobRequest`] failed validation before the run started.
    Invalid(String),
    /// A policy refused or failed to admit a job mid-run.
    Rejected {
        /// Id of the offending job.
        job: u32,
        /// Policy-specific reason (for Tycoon, the rendered `GridError`).
        reason: String,
    },
}

impl PolicyError {
    /// Shorthand for a validation failure.
    pub fn invalid(msg: impl Into<String>) -> Self {
        PolicyError::Invalid(msg.into())
    }
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyError::Invalid(msg) => write!(f, "invalid job request: {msg}"),
            PolicyError::Rejected { job, reason } => {
                write!(f, "job {job} rejected by policy: {reason}")
            }
        }
    }
}

impl std::error::Error for PolicyError {}

/// The shared host-capacity + clock view handed to every hook.
///
/// `hosts` is the full inventory in index order; policies that model
/// host failure internally (Tycoon) also receive [`FaultEvent`]s via
/// [`AllocationPolicy::apply_fault`], while capacity-oblivious baselines
/// may simply read specs off this slice each tick.
#[derive(Debug, Clone, Copy)]
pub struct TickCtx<'a> {
    /// Start of the current tick.
    pub now: SimTime,
    /// Tick length in seconds.
    pub interval_secs: f64,
    /// Host inventory (stable order and length for the whole run).
    pub hosts: &'a [HostSpec],
}

impl TickCtx<'_> {
    /// Tick length as a [`SimDuration`].
    pub fn interval(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.interval_secs)
    }

    /// End of the current tick (`now + interval`).
    pub fn tick_end(&self) -> SimTime {
        self.now + self.interval()
    }

    /// Total CPU slots across the inventory.
    pub fn total_slots(&self) -> usize {
        self.hosts.iter().map(|h| h.cpus as usize).sum()
    }
}

/// An allocator that can be driven tick by tick by the [`PolicyDriver`].
///
/// Hook order within one tick is fixed (see the module docs). All hooks
/// except [`admit`](AllocationPolicy::admit) are infallible: a policy
/// that cannot serve a job reports that through its
/// [`outcomes`](AllocationPolicy::outcomes) (unfinished job), exactly
/// like the paper's stalled-job semantics.
pub trait AllocationPolicy {
    /// Short stable name (`"tycoon"`, `"fifo"`, ...): used in reports,
    /// telemetry labels, and the policy-matrix CI gate.
    fn name(&self) -> &'static str;

    /// Called first every tick, before faults and arrivals. Policies
    /// carrying their own clock (Tycoon's telemetry `ManualClock`)
    /// synchronise it here; stateless baselines can ignore it.
    fn begin_tick(&mut self, _ctx: &TickCtx) {}

    /// Deliver one scheduled fault event. The default ignores faults —
    /// the conventional baselines model an idealised failure-free
    /// cluster, which is itself a documented comparison bias in their
    /// favour. Events flow through generically: `FaultKind::BankRestart`
    /// (kill the economy's bank and recover it from its durable ledger,
    /// DESIGN.md §11) reaches a market-backed policy through this same
    /// hook with no driver-side special casing.
    fn apply_fault(&mut self, _ctx: &TickCtx, _ev: &FaultEvent) {}

    /// Admit a newly arrived job. Called in `(arrival, id)` order, at
    /// the first tick with `req.arrival <= now`.
    fn admit(&mut self, ctx: &TickCtx, req: &JobRequest) -> Result<(), PolicyError>;

    /// Claim capacity for admitted work (queue → slots, bids, market
    /// orders). Runs before [`advance`](AllocationPolicy::advance).
    fn place(&mut self, ctx: &TickCtx);

    /// Advance running work by one interval (burn CPU, move sub-jobs to
    /// completion, run the market's auction tick).
    fn advance(&mut self, ctx: &TickCtx);

    /// Post-advance bookkeeping: charging, refunds, posted-price
    /// adjustment, concurrency sampling.
    fn settle(&mut self, ctx: &TickCtx);

    /// The price to record for this tick, if the policy posts one
    /// (`None` ⇒ no sample; FIFO and equal-share never post).
    fn price(&self, ctx: &TickCtx) -> Option<f64>;

    /// True when every admitted job has reached a terminal state and no
    /// money/slots remain in flight — the driver's early-exit condition.
    fn all_settled(&self) -> bool;

    /// Report one [`JobOutcome`] per admitted job. `now` is the
    /// driver's final clock value, used as the horizon for unfinished
    /// jobs' makespans.
    fn outcomes(&self, now: SimTime) -> Vec<JobOutcome>;
}

/// Counters the driver maintains across one run.
#[derive(Debug, Clone, Copy, Default)]
pub struct DriverStats {
    /// Ticks executed.
    pub ticks: u64,
    /// Jobs admitted (≤ requests when some arrive past the horizon).
    pub admitted: usize,
    /// Fault events delivered to the policy.
    pub faults_injected: usize,
    /// The driver's clock when the run ended (horizon or early exit).
    /// Callers that report makespans against the run end must use this
    /// value: recomputing `ticks × interval` drifts for non-integral
    /// intervals, while this is the exact repeatedly-advanced clock.
    pub final_now: SimTime,
}

/// Telemetry handles the driver increments when a registry is attached.
struct DriverInstruments {
    ticks: Counter,
    admitted: Counter,
    faults_injected: Counter,
}

/// The one simulation loop shared by every policy.
///
/// Construct with the host inventory and tick interval, optionally add
/// a horizon, fault plan, and telemetry registry, then [`run`] a policy
/// over a request stream.
///
/// [`run`]: PolicyDriver::run
pub struct PolicyDriver {
    hosts: Vec<HostSpec>,
    interval_secs: f64,
    horizon: SimTime,
    faults: FaultPlan,
    instruments: Option<DriverInstruments>,
    stats: DriverStats,
}

impl PolicyDriver {
    /// Default horizon: generous enough for every in-repo workload.
    pub const DEFAULT_HORIZON_HOURS: u64 = 6;

    /// New driver over `hosts` ticking every `interval_secs`.
    pub fn new(hosts: Vec<HostSpec>, interval_secs: f64) -> Self {
        PolicyDriver {
            hosts,
            interval_secs,
            horizon: SimTime::ZERO + SimDuration::from_secs(Self::DEFAULT_HORIZON_HOURS * 3600),
            faults: FaultPlan::new(),
            instruments: None,
            stats: DriverStats::default(),
        }
    }

    /// Set the simulation horizon (the run also ends early once all
    /// work is settled and the fault plan exhausted).
    pub fn horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }

    /// Attach a fault schedule; events are delivered to the policy's
    /// [`AllocationPolicy::apply_fault`] hook in time order.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Attach a telemetry registry: the driver maintains the
    /// `driver.ticks`, `driver.jobs_admitted`, and `faults.injected`
    /// counters (the last name matches the pre-refactor scenario
    /// telemetry, so existing dashboards and tests keep working).
    pub fn with_registry(mut self, registry: &Registry) -> Self {
        self.instruments = Some(DriverInstruments {
            ticks: registry.counter("driver.ticks"),
            admitted: registry.counter("driver.jobs_admitted"),
            faults_injected: registry.counter("faults.injected"),
        });
        self
    }

    /// Counters from the most recent [`run`](PolicyDriver::run).
    pub fn stats(&self) -> &DriverStats {
        &self.stats
    }

    /// Host inventory the driver hands to policies each tick.
    pub fn host_specs(&self) -> &[HostSpec] {
        &self.hosts
    }

    /// Drive `policy` over `requests` until everything settles or the
    /// horizon is reached. Requests are admitted in `(arrival, id)`
    /// order regardless of slice order; outcomes come back in slice
    /// order. Ids must be unique.
    pub fn run(
        &mut self,
        policy: &mut dyn AllocationPolicy,
        requests: &[JobRequest],
    ) -> Result<RunResult, PolicyError> {
        for req in requests {
            req.validate()?;
        }
        let mut seen = std::collections::BTreeSet::new();
        for req in requests {
            if !seen.insert(req.id) {
                return Err(PolicyError::invalid(format!("duplicate job id {}", req.id)));
            }
        }
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by_key(|&i| (requests[i].arrival, requests[i].id));

        self.stats = DriverStats::default();
        let mut faults = self.faults.clone();
        let dt = SimDuration::from_secs_f64(self.interval_secs);
        let mut now = SimTime::ZERO;
        let mut next = 0usize;
        let mut price_history: Vec<(SimTime, f64)> = Vec::new();

        while now < self.horizon {
            let ctx = TickCtx {
                now,
                interval_secs: self.interval_secs,
                hosts: &self.hosts,
            };
            policy.begin_tick(&ctx);
            for ev in faults.take_due(now) {
                self.stats.faults_injected += 1;
                if let Some(ins) = &self.instruments {
                    ins.faults_injected.inc();
                }
                policy.apply_fault(&ctx, &ev);
            }
            while next < order.len() && requests[order[next]].arrival <= now {
                policy.admit(&ctx, &requests[order[next]])?;
                self.stats.admitted += 1;
                if let Some(ins) = &self.instruments {
                    ins.admitted.inc();
                }
                next += 1;
            }
            policy.place(&ctx);
            policy.advance(&ctx);
            policy.settle(&ctx);
            if let Some(p) = policy.price(&ctx) {
                price_history.push((now, p));
            }
            self.stats.ticks += 1;
            if let Some(ins) = &self.instruments {
                ins.ticks.inc();
            }
            now += dt;
            if next == order.len() && policy.all_settled() && faults.is_exhausted() {
                break;
            }
        }

        self.stats.final_now = now;
        Ok(Self::collect(policy, requests, now, price_history))
    }

    /// Assemble the [`RunResult`]: policy outcomes matched back to the
    /// request slice order, plus synthesised zero outcomes for requests
    /// that never arrived within the horizon.
    fn collect(
        policy: &dyn AllocationPolicy,
        requests: &[JobRequest],
        now: SimTime,
        price_history: Vec<(SimTime, f64)>,
    ) -> RunResult {
        let mut by_id: std::collections::BTreeMap<u32, JobOutcome> = policy
            .outcomes(now)
            .into_iter()
            .map(|o| (o.id, o))
            .collect();
        let outcomes = requests
            .iter()
            .map(|req| {
                by_id.remove(&req.id).unwrap_or(JobOutcome {
                    id: req.id,
                    user: req.user,
                    finished_at: None,
                    makespan_secs: now.since(req.arrival).as_secs_f64(),
                    value: 0.0,
                    cost: 0.0,
                    max_nodes: 0,
                    avg_nodes: 0.0,
                })
            })
            .collect();
        RunResult {
            outcomes,
            price_history,
        }
    }
}
