//! # gm-core — the scheduler core
//!
//! One driver, many allocation policies. This crate is the seam between
//! the simulation substrate (`gm-des` clocks and fault plans, `gm-tycoon`
//! host capacity) and the allocators that compete in the paper's
//! market-vs-baseline comparison:
//!
//! - [`workload`] — the policy-neutral job description
//!   ([`JobRequest`]) and per-run report ([`RunResult`]) shared by every
//!   scheduler, market or not.
//! - [`metrics`] — the comparison metrics (Jain fairness index, price
//!   volatility) used by policy reports and the experiments crate.
//! - [`policy`] — the [`AllocationPolicy`] trait (admit / place /
//!   advance / settle / price hooks over a shared host-capacity + clock
//!   view) and the single [`PolicyDriver`] tick loop that replaces the
//!   per-baseline `run()` loops: every policy sees *identical* arrival
//!   streams, fault plans, and telemetry, so A/B results are
//!   byte-reproducible.
//!
//! The crate deliberately depends only on `gm-des`, `gm-tycoon` (for
//! `HostSpec`/`UserId`) and `gm-telemetry`; the grid stack plugs in from
//! above via `gridmarket::policy::TycoonPolicy`.
#![deny(clippy::too_many_lines)]

pub mod metrics;
pub mod policy;
pub mod workload;

pub use metrics::{jain_fairness, price_volatility};
pub use policy::{AllocationPolicy, DriverStats, PolicyDriver, PolicyError, TickCtx};
pub use workload::{JobOutcome, JobRequest, RunResult};
