//! # gm-core — the scheduler core
//!
//! One driver, many allocation policies. This crate is the seam between
//! the simulation substrate (`gm-des` clocks and fault plans, `gm-tycoon`
//! host capacity) and the allocators that compete in the paper's
//! market-vs-baseline comparison:
//!
//! - [`workload`] — the policy-neutral job description
//!   ([`JobRequest`]) and per-run report ([`RunResult`]) shared by every
//!   scheduler, market or not.
//! - [`metrics`] — the comparison metrics (Jain fairness index, price
//!   volatility) used by policy reports and the experiments crate.
//! - [`policy`] — the [`AllocationPolicy`] trait (admit / place /
//!   advance / settle / price hooks over a shared host-capacity + clock
//!   view) and the single [`PolicyDriver`] tick loop that replaces the
//!   per-baseline `run()` loops: every policy sees *identical* arrival
//!   streams, fault plans, and telemetry, so A/B results are
//!   byte-reproducible.
//! - [`montecarlo`] — the deterministic parallel scenario runner
//!   ([`MonteCarlo`]): fans seeded scenarios across a `gm-exec` pool in
//!   bounded batches, quarantines panicking seeds as
//!   [`ScenarioFailure`] data points, and aggregates Student-t
//!   confidence-interval reports ([`McReport`]) over robustness
//!   metrics.
//!
//! The crate deliberately depends only on `gm-des`, `gm-tycoon` (for
//! `HostSpec`/`UserId`), `gm-telemetry`, and the in-repo `gm-exec` /
//! `gm-numeric` substrates; the grid stack plugs in from above via
//! `gridmarket::policy::TycoonPolicy`.
#![deny(clippy::too_many_lines)]

pub mod metrics;
pub mod montecarlo;
pub mod policy;
pub mod workload;

pub use metrics::{jain_fairness, price_volatility, revenue, welfare};
pub use montecarlo::{
    seed_stream, McBatch, McOutcome, McReport, MetricSummary, MonteCarlo, ScenarioFailure,
};
pub use policy::{AllocationPolicy, DriverStats, PolicyDriver, PolicyError, TickCtx};
pub use workload::{JobOutcome, JobRequest, RunResult};
