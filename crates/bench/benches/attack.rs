//! Guard-layer overhead microbench (`DESIGN.md` §16).
//!
//! Runs the same honest chaos scenario — the default `ChaosConfig` world
//! driven end to end through `PolicyDriver` + `TycoonPolicy` — twice:
//! once with the market guard disabled (the pre-defense market) and once
//! with the default guard armed but never firing (rate limiter, circuit
//! breaker and quarantine all vetting every bid placement and re-bid).
//! Reports the median full-run wall time of each and the relative
//! overhead, which the design budget caps at 5 % — defenses must be free
//! when every bidder is honest.
//!
//! `--save` (what `just bench-save-attack` passes) writes the result to
//! `BENCH_attack.json` at the repository root.

use std::hint::black_box;
use std::time::Instant;

use gm_bio::workload::BioWorkload;
use gm_des::{FaultPlan, SimDuration, SimTime};
use gm_grid::{AgentConfig, JobManager, VmConfig};
use gm_tycoon::{GuardConfig, HostSpec, Market, UserId};
use gridmarket::sched::{JobRequest, PolicyDriver};
use gridmarket::{ChaosConfig, TycoonPolicy};

const SAMPLES: usize = 15;
const BUDGET_PCT: f64 = 5.0;
const SEED: u64 = 0xBE7C_47AC;

/// The honest chaos stream of the default world (same stagger, work and
/// budgets as the Monte-Carlo suite).
fn honest_stream(cfg: &ChaosConfig) -> Vec<JobRequest> {
    let workload = BioWorkload {
        subjobs: cfg.subjobs,
        chunk_minutes: cfg.chunk_minutes,
        deadline_minutes: cfg.deadline_minutes,
    };
    (0..cfg.users)
        .map(|i| JobRequest {
            id: i,
            user: UserId(i + 1),
            subjobs: cfg.subjobs,
            work_per_subjob: workload.work_mhz_secs_per_subjob(),
            arrival: SimTime::ZERO + SimDuration::from_secs(30 * (u64::from(i) + 1)),
            budget: cfg.funding,
            deadline_secs: cfg.deadline_minutes as f64 * 60.0,
        })
        .collect()
}

/// Wall time (ms) of one full honest chaos run under `guard`.
fn sample_run_ms(guard: GuardConfig) -> f64 {
    let cfg = ChaosConfig::default();
    let hosts: Vec<HostSpec> =
        gridmarket::scenario::jittered_hosts(SEED, cfg.hosts, cfg.heterogeneity);
    let mut market = Market::new(&SEED.to_be_bytes());
    market.set_interval_secs(10.0);
    market.set_guard(guard);
    for h in &hosts {
        market.add_host(h.clone());
    }
    let jm = JobManager::new(&mut market, AgentConfig::default(), VmConfig::default());
    let mut policy = TycoonPolicy::new(market, jm);
    let jobs = honest_stream(&cfg);

    let t0 = Instant::now();
    let r = PolicyDriver::new(hosts, 10.0)
        .horizon(SimTime::ZERO + SimDuration::from_hours(cfg.horizon_hours))
        .faults(FaultPlan::generate(SEED, cfg.fault_gen()))
        .run(&mut policy, &jobs)
        .expect("honest chaos run");
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    black_box(r.outcomes.len());
    ms
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn main() {
    let save = std::env::args().any(|a| a == "--save");

    // Interleave the two configurations so frequency drift and background
    // noise hit both alike.
    let mut open = Vec::with_capacity(SAMPLES);
    let mut armed = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        open.push(sample_run_ms(GuardConfig::disabled()));
        armed.push(sample_run_ms(GuardConfig::default()));
    }
    let open_med = median(&mut open);
    let armed_med = median(&mut armed);
    let overhead_pct = (armed_med - open_med) / open_med * 100.0;
    let pass = overhead_pct < BUDGET_PCT;

    println!(
        "honest_chaos_run               open {open_med:>9.2} ms   guarded {armed_med:>9.2} ms   overhead {overhead_pct:>+6.2} %   budget <{BUDGET_PCT} %   {}",
        if pass { "PASS" } else { "FAIL" }
    );

    if save {
        let json = format!(
            "{{\n  \"bench\": \"honest_chaos_run\",\n  \"samples\": {SAMPLES},\n  \"open_run_ms_median\": {open_med:.3},\n  \"guarded_run_ms_median\": {armed_med:.3},\n  \"overhead_pct\": {overhead_pct:.3},\n  \"budget_pct\": {BUDGET_PCT:.1},\n  \"pass\": {pass}\n}}\n"
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_attack.json");
        std::fs::write(path, json).expect("write BENCH_attack.json");
        println!("saved {path}");
    }
}
