//! Overload-layer overhead microbench (`DESIGN.md` §12).
//!
//! Runs the same sequential bank-transfer workload twice against a live
//! `BankService`: once on the default net configuration (perfect links,
//! unbounded mailbox, no breaker — the historical runtime) and once with
//! the full overload machinery armed but idle (perfect links, a bounded
//! mailbox large enough never to shed, a closed circuit breaker, and
//! `net.*` telemetry). Reports the median per-request time of each and
//! the relative overhead, which the design budget caps at 5 % — the
//! resilience layer must be free when nothing is failing.
//!
//! `--save` (what `just bench-save-overload` passes) writes the result to
//! `BENCH_overload.json` at the repository root.

use std::hint::black_box;
use std::time::Instant;

use gm_crypto::Keypair;
use gm_telemetry::Registry;
use gm_tycoon::{
    BreakerConfig, Credits, LiveMarket, NetConfig, NetInstruments, QueueConfig, ShedPolicy,
};

const TRANSFERS_PER_SAMPLE: u64 = 2_000;
const SAMPLES: usize = 15;
const BUDGET_PCT: f64 = 5.0;

fn armed_config() -> NetConfig {
    // Everything on, nothing firing: perfect links, a mailbox bound far
    // above the single-client depth, default breakers, live telemetry.
    NetConfig {
        queue: QueueConfig::bounded(64, ShedPolicy::RejectNew),
        breaker: Some(BreakerConfig::default()),
        telemetry: Some(NetInstruments::new(&Registry::new())),
        ..NetConfig::default()
    }
}

/// Per-request wall time (µs) of `TRANSFERS_PER_SAMPLE` transfers against
/// a freshly spawned bank service.
fn sample_request_us(net: NetConfig) -> f64 {
    let live = LiveMarket::spawn_with_net(b"overload-bench", Vec::new(), net);
    let bank = live.bank();
    let key = Keypair::from_seed(b"bench-user").public;
    let payer = bank.open_account(key, "payer").expect("open payer");
    let sink = bank.open_account(key, "sink").expect("open sink");
    bank.mint(payer, Credits::from_whole(10_000_000))
        .expect("endowment");

    // Warm the service thread and both account pages.
    for id in 1..=100u64 {
        black_box(bank.transfer_with_id(id, payer, sink, Credits::from_whole(1))).expect("warmup");
    }

    let t0 = Instant::now();
    for id in 0..TRANSFERS_PER_SAMPLE {
        black_box(bank.transfer_with_id(1_000 + id, payer, sink, Credits::from_whole(1)))
            .expect("transfer");
    }
    let us = t0.elapsed().as_secs_f64() * 1e6 / TRANSFERS_PER_SAMPLE as f64;
    drop(live);
    us
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn main() {
    let save = std::env::args().any(|a| a == "--save");

    // Interleave the two configurations so frequency drift and background
    // noise hit both alike.
    let mut bare = Vec::with_capacity(SAMPLES);
    let mut armed = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        bare.push(sample_request_us(NetConfig::default()));
        armed.push(sample_request_us(armed_config()));
    }
    let bare_med = median(&mut bare);
    let armed_med = median(&mut armed);
    let overhead_pct = (armed_med - bare_med) / bare_med * 100.0;
    let pass = overhead_pct < BUDGET_PCT;

    println!(
        "bank_transfer_roundtrip        default {bare_med:>9.2} µs   armed {armed_med:>9.2} µs   overhead {overhead_pct:>+6.2} %   budget <{BUDGET_PCT} %   {}",
        if pass { "PASS" } else { "FAIL" }
    );

    if save {
        let json = format!(
            "{{\n  \"bench\": \"bank_transfer_roundtrip\",\n  \"transfers_per_sample\": {TRANSFERS_PER_SAMPLE},\n  \"samples\": {SAMPLES},\n  \"default_request_us_median\": {bare_med:.3},\n  \"armed_request_us_median\": {armed_med:.3},\n  \"overhead_pct\": {overhead_pct:.3},\n  \"budget_pct\": {BUDGET_PCT:.1},\n  \"pass\": {pass}\n}}\n"
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_overload.json");
        std::fs::write(path, json).expect("write BENCH_overload.json");
        println!("saved {path}");
    }
}
