//! Market-core scale benchmark (DESIGN.md §15).
//!
//! Measures dense struct-of-arrays tick throughput at 30 / 1k / 10k /
//! 100k hosts, each host carrying 10 funded bids from distinct bank
//! accounts — one million funded accounts at the top size. The per-tick
//! price trace is disabled (its memory is O(hosts × ticks)) and no
//! telemetry is attached, so the numbers isolate the proportional-share
//! sweep itself. Each size is also re-run with the sweep sharded across
//! scoped workers to report the parallel ticks/sec.
//!
//! The scaling gate: per-host tick cost at 100k hosts must stay within
//! 2× the per-host cost at 1k hosts — i.e. the sweep stays linear and
//! never regresses to the pointer-chasing map walk it replaced.
//!
//! Flags: `--save` writes `BENCH_scale.json` at the repository root
//! (what `just bench-save-scale` passes); `--check` exits non-zero if
//! the gate fails (what `just scale-matrix` passes); `--quick` drops the
//! 100k size (and with it the gate) for fast local runs.

use std::hint::black_box;
use std::time::Instant;

use gm_crypto::Keypair;
use gm_des::SimTime;
use gm_tycoon::{Credits, HostId, HostSpec, Market, UserId};

fn bids_per_host() -> u32 {
    std::env::var("GM_SCALE_BIDS").ok().and_then(|v| v.parse().ok()).unwrap_or(10)
}
const SAMPLES: usize = 3;
const GATE_RATIO: f64 = 2.0;
/// Host-ticks per timing sample, so every size gets comparable work.
const HOST_TICKS_PER_SAMPLE: u64 = 2_000_000;

struct SizeResult {
    hosts: u32,
    accounts: u64,
    ticks_per_sample: u64,
    setup_secs: f64,
    seq_tick_us: f64,
    seq_per_host_ns: f64,
    seq_ticks_per_sec: f64,
    par_shards: usize,
    par_tick_us: f64,
    par_ticks_per_sec: f64,
}

/// Build a market of `hosts` hosts with `bids_per_host()` funded bids per
/// host, each from its own freshly opened and minted account.
fn build_market(hosts: u32) -> (Market, f64) {
    let t0 = Instant::now();
    let mut market = Market::new(b"scale-bench");
    market.set_price_trace_enabled(false);
    for i in 0..hosts {
        market.add_host(HostSpec::testbed(i));
    }
    // One key for every account: key derivation is not what we measure,
    // and the bank only checks ownership on user-signed paths.
    let key = Keypair::from_seed(b"scale-user").public;
    for h in 0..hosts {
        for b in 0..bids_per_host() {
            let n = u64::from(h) * u64::from(bids_per_host()) + u64::from(b);
            let acct = market.bank_mut().open_account(key, &format!("acct{n}"));
            market
                .bank_mut()
                .mint(acct, Credits::from_whole(10_000))
                .expect("endowment");
            market
                .place_funded_bid(
                    UserId(b + 1),
                    acct,
                    HostId(h),
                    // Low rates so escrow outlives every tick we time.
                    0.001 + f64::from(b) * 1e-4,
                    Credits::from_whole(1_000),
                )
                .expect("funded bid");
        }
    }
    (market, t0.elapsed().as_secs_f64())
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Median per-tick µs over `SAMPLES` timing windows of `ticks` ticks.
fn sample_tick_us(market: &mut Market, now: &mut SimTime, ticks: u64) -> f64 {
    let dt = gm_des::SimDuration::from_secs(10);
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        for _ in 0..ticks {
            black_box(market.tick(*now));
            *now += dt;
        }
        samples.push(t0.elapsed().as_secs_f64() * 1e6 / ticks as f64);
    }
    median(&mut samples)
}

fn run_size(hosts: u32, shards: usize) -> SizeResult {
    let (mut market, setup_secs) = build_market(hosts);
    let ticks = (HOST_TICKS_PER_SAMPLE / u64::from(hosts)).clamp(3, 400);
    let mut now = SimTime::ZERO;
    let dt = gm_des::SimDuration::from_secs(10);
    for _ in 0..3 {
        black_box(market.tick(now));
        now += dt;
    }
    let seq_tick_us = sample_tick_us(&mut market, &mut now, ticks);
    market.set_sharding(shards);
    let par_tick_us = sample_tick_us(&mut market, &mut now, ticks);
    SizeResult {
        hosts,
        accounts: u64::from(hosts) * u64::from(bids_per_host()),
        ticks_per_sample: ticks,
        setup_secs,
        seq_tick_us,
        seq_per_host_ns: seq_tick_us * 1e3 / f64::from(hosts),
        seq_ticks_per_sec: 1e6 / seq_tick_us,
        par_shards: shards,
        par_tick_us,
        par_ticks_per_sec: 1e6 / par_tick_us,
    }
}

fn main() {
    let save = std::env::args().any(|a| a == "--save");
    let check = std::env::args().any(|a| a == "--check");
    let quick = std::env::args().any(|a| a == "--quick");

    let shards = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);
    let sizes: &[u32] = if quick {
        &[30, 1_000, 10_000]
    } else {
        &[30, 1_000, 10_000, 100_000]
    };

    let mut results = Vec::new();
    for &hosts in sizes {
        let r = run_size(hosts, shards);
        println!(
            "scale_tick {:>7} hosts  {:>9} accounts  setup {:>6.1} s   seq {:>11.1} µs/tick ({:>8.1} ns/host, {:>9.1} ticks/s)   sharded×{} {:>11.1} µs/tick ({:>9.1} ticks/s)",
            r.hosts,
            r.accounts,
            r.setup_secs,
            r.seq_tick_us,
            r.seq_per_host_ns,
            r.seq_ticks_per_sec,
            r.par_shards,
            r.par_tick_us,
            r.par_ticks_per_sec,
        );
        results.push(r);
    }

    // The gate: per-host cost must not regress super-linearly with size.
    let gate = (!quick).then(|| {
        let at_1k = results.iter().find(|r| r.hosts == 1_000).expect("1k size");
        let at_100k = results.iter().find(|r| r.hosts == 100_000).expect("100k size");
        let ratio = at_100k.seq_per_host_ns / at_1k.seq_per_host_ns;
        let pass = ratio <= GATE_RATIO;
        println!(
            "scale_gate per-host 100k/1k = {:.1}/{:.1} ns = {:.2}×   budget ≤{GATE_RATIO}×   {}",
            at_100k.seq_per_host_ns,
            at_1k.seq_per_host_ns,
            ratio,
            if pass { "PASS" } else { "FAIL" }
        );
        (ratio, pass)
    });

    if save {
        let mut sizes_json = String::new();
        for (i, r) in results.iter().enumerate() {
            if i > 0 {
                sizes_json.push_str(",\n");
            }
            sizes_json.push_str(&format!(
                "    {{\"hosts\": {}, \"accounts\": {}, \"ticks_per_sample\": {}, \"setup_secs\": {:.2}, \"seq_tick_us_median\": {:.2}, \"seq_per_host_ns\": {:.2}, \"seq_ticks_per_sec\": {:.2}, \"par_shards\": {}, \"par_tick_us_median\": {:.2}, \"par_ticks_per_sec\": {:.2}}}",
                r.hosts,
                r.accounts,
                r.ticks_per_sample,
                r.setup_secs,
                r.seq_tick_us,
                r.seq_per_host_ns,
                r.seq_ticks_per_sec,
                r.par_shards,
                r.par_tick_us,
                r.par_ticks_per_sec,
            ));
        }
        let gate_json = match gate {
            Some((ratio, pass)) => format!(
                "{{\"per_host_ratio_100k_vs_1k\": {ratio:.3}, \"budget_ratio\": {GATE_RATIO:.1}, \"pass\": {pass}}}"
            ),
            None => "null".to_owned(),
        };
        let bids = bids_per_host();
        let json = format!(
            "{{\n  \"bench\": \"market_scale\",\n  \"bids_per_host\": {bids},\n  \"samples\": {SAMPLES},\n  \"sizes\": [\n{sizes_json}\n  ],\n  \"gate\": {gate_json}\n}}\n"
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
        std::fs::write(path, json).expect("write BENCH_scale.json");
        println!("saved {path}");
    }

    if check {
        match gate {
            Some((_, true)) => println!("scale gate OK"),
            Some((ratio, false)) => {
                eprintln!("scale gate FAILED: per-host ratio {ratio:.2} exceeds {GATE_RATIO}");
                std::process::exit(1);
            }
            None => {
                eprintln!("--check requires the full size matrix (drop --quick)");
                std::process::exit(2);
            }
        }
    }
}
