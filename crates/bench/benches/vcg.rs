//! Optimization-tier solver bench (DESIGN.md §14).
//!
//! Measures the welfare-LP solve time of one planning window as the
//! program grows — apps ∈ {8, 32, 128} × hosts ∈ {30, 120} — plus the
//! full VCG pricing pass (1 + N leave-one-out re-solves) at the sizes
//! the live policy actually plans (tens of apps), and the
//! Tycoon-vs-VCG welfare gap on the shared SLA workload
//! (`gm_experiments::ext_vcg`).
//!
//! The budget gates only the sizes CI must stay fast at: a single
//! window solve at ≤ 32 apps × 30 hosts must finish within the solver
//! time budget, and the welfare gap must be non-negative (the LP never
//! does worse than the auction market it generalizes). The 128-app
//! rows are reported ungated — they chart the scaling curve, they are
//! not a CI constraint.
//!
//! `--save` (what `just bench-save-vcg` passes) writes the result to
//! `BENCH_vcg.json` at the repository root.

use std::time::Instant;

use gm_des::{Rng64, SplitMix64};
use gm_optimal::{vcg, SlaCurve, WelfareApp, WelfareProgram};

/// Per-solve budget for the gated (CI-sized) windows, in seconds.
const SOLVE_BUDGET_SECS: f64 = 1.0;
/// Gate boundary: windows with more apps than this are informational.
const GATED_APPS: usize = 32;

/// A deterministic pseudo-random window: `apps` concave curves (1–3
/// segments) competing for `hosts` equal-capacity hosts, scaled so the
/// window is ~2× oversubscribed (the regime the policy plans in).
fn window(apps: usize, hosts: usize, seed: u64) -> WelfareProgram {
    let mut rng = SplitMix64::new(seed);
    let host_cap = 100.0;
    let mut program = WelfareProgram::new(vec![host_cap; hosts]);
    let demand_per_app = 2.0 * host_cap * hosts as f64 / apps as f64;
    for a in 0..apps {
        let segs = 1 + (rng.next_u64() % 3) as usize;
        let mut points = Vec::new();
        let (mut w, mut v) = (0.0, 0.0);
        let mut slope = 1.0 + rng.next_f64() * 3.0;
        for _ in 0..segs {
            w += demand_per_app * (0.2 + 0.8 * rng.next_f64()) / segs as f64;
            v += slope * (w - points.last().map_or(0.0, |&(pw, _)| pw));
            points.push((w, v));
            slope *= 0.3 + 0.6 * rng.next_f64();
        }
        let curve = SlaCurve::new(points).expect("concave by construction");
        let cap = curve.total_work();
        program.add_app(WelfareApp {
            id: a as u32,
            segments: curve.remaining_segments(0.0, cap),
            cap,
        });
    }
    program
}

fn main() {
    let save = std::env::args().any(|a| a == "--save");
    let mut pass = true;
    let mut rows = Vec::new();

    // Warm-up: touch the allocator paths once.
    let _ = window(8, 30, 1).solve();

    for &apps in &[8usize, 32, 128] {
        for &hosts in &[30usize, 120] {
            let program = window(apps, hosts, 0x5EED ^ (apps as u64) << 8 ^ hosts as u64);
            let t0 = Instant::now();
            let sol = program.solve().expect("window must solve");
            let secs = t0.elapsed().as_secs_f64();
            let gated = apps <= GATED_APPS;
            let ok = !gated || secs <= SOLVE_BUDGET_SECS;
            pass &= ok;
            println!(
                "vcg_window_solve  apps {apps:>4}  hosts {hosts:>4}   {:>8.1} ms   welfare {:>10.1}   {}",
                secs * 1e3,
                sol.welfare,
                if !gated {
                    "(ungated: scaling row)"
                } else if ok {
                    "PASS"
                } else {
                    "FAIL"
                }
            );
            rows.push((apps, hosts, secs, gated));
        }
    }

    // Full VCG pricing (1 + N solves) at the policy's working size.
    let program = window(8, 30, 0xCAFE);
    let t0 = Instant::now();
    let priced = vcg(&program).expect("VCG pricing must complete");
    let vcg_secs = t0.elapsed().as_secs_f64();
    let vcg_ok = vcg_secs <= SOLVE_BUDGET_SECS;
    pass &= vcg_ok;
    println!(
        "vcg_full_pricing  apps    8  hosts   30   {:>8.1} ms   revenue {:>10.1}   {}",
        vcg_secs * 1e3,
        priced.revenue(),
        if vcg_ok { "PASS" } else { "FAIL" }
    );

    // Welfare gap on the shared SLA workload: the optimization tier
    // must not lose to the auction market it generalizes.
    let cmp = gm_experiments::ext_vcg::run(gm_experiments::Scale::Quick);
    let vcg_w = cmp.row("vcg").expect("vcg row").welfare;
    let tycoon_w = cmp.row("tycoon").expect("tycoon row").welfare;
    let gap = vcg_w - tycoon_w;
    let gap_ok = gap >= -1e-9;
    pass &= gap_ok;
    println!(
        "vcg_welfare_gap   vcg {vcg_w:.2} - tycoon {tycoon_w:.2} = {gap:.2}   {}",
        if gap_ok { "PASS" } else { "FAIL" }
    );
    println!(
        "budget: window solve <= {SOLVE_BUDGET_SECS:.1} s at <= {GATED_APPS} apps, welfare gap >= 0   {}",
        if pass { "PASS" } else { "FAIL" }
    );

    if save {
        let mut entries = String::new();
        for (i, (apps, hosts, secs, gated)) in rows.iter().enumerate() {
            if i > 0 {
                entries.push_str(",\n");
            }
            entries.push_str(&format!(
                "    {{\"apps\": {apps}, \"hosts\": {hosts}, \"solve_ms\": {:.2}, \"gated\": {gated}}}",
                secs * 1e3
            ));
        }
        let json = format!(
            "{{\n  \"bench\": \"vcg\",\n  \"solve_budget_secs\": {SOLVE_BUDGET_SECS},\n  \"rows\": [\n{entries}\n  ],\n  \"vcg_full_pricing_ms\": {:.2},\n  \"welfare_vcg\": {vcg_w:.2},\n  \"welfare_tycoon\": {tycoon_w:.2},\n  \"welfare_gap\": {gap:.2},\n  \"pass\": {pass}\n}}\n",
            vcg_secs * 1e3
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_vcg.json");
        std::fs::write(path, json).expect("write BENCH_vcg.json");
        println!("saved {path}");
    }

    if !pass {
        std::process::exit(1);
    }
}
