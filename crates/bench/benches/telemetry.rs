//! Telemetry overhead microbench (DESIGN.md §9).
//!
//! Runs the same Table-1-scale auction workload — 30 testbed hosts, 8
//! users, every user holding a funded bid on every host — twice: once on
//! a bare market and once with a `gm_telemetry::Registry` attached (tick
//! histogram, per-host spot gauges, bid/transfer counters). Reports the
//! median per-tick time of each and the relative overhead, which the
//! design budget caps at 5 %.
//!
//! `--save` (what `just bench-save` passes) writes the result to
//! `BENCH_telemetry.json` at the repository root.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use gm_crypto::Keypair;
use gm_des::SimTime;
use gm_telemetry::{Registry, WallClock};
use gm_tycoon::{Credits, HostId, HostSpec, Market, UserId};

const HOSTS: u32 = 30;
const USERS: u32 = 8;
const TICKS_PER_SAMPLE: u32 = 200;
const SAMPLES: usize = 15;
const BUDGET_PCT: f64 = 5.0;

fn build_market(with_telemetry: bool) -> Market {
    let mut market = Market::new(b"telemetry-bench");
    let registry = Registry::new();
    if with_telemetry {
        market.attach_telemetry(&registry, Arc::new(WallClock::new()));
    }
    for i in 0..HOSTS {
        market.add_host(HostSpec::testbed(i));
    }
    for u in 0..USERS {
        let key = Keypair::from_seed(format!("user{u}").as_bytes()).public;
        let acct = market.bank_mut().open_account(key, &format!("user{u}"));
        market
            .bank_mut()
            .mint(acct, Credits::from_whole(1_000_000))
            .expect("endowment");
        for h in 0..HOSTS {
            market
                .place_funded_bid(
                    UserId(u),
                    acct,
                    HostId(h),
                    0.01 + f64::from(u) * 1e-3,
                    Credits::from_whole(1_000),
                )
                .expect("funded bid");
        }
    }
    market
}

/// Per-tick wall time (µs) over one freshly-built market.
fn sample_tick_us(with_telemetry: bool) -> f64 {
    let mut market = build_market(with_telemetry);
    let mut now = SimTime::ZERO;
    let dt = gm_des::SimDuration::from_secs(10);
    // Warm caches and let the first allocations settle.
    for _ in 0..20 {
        black_box(market.tick(now));
        now += dt;
    }
    let t0 = Instant::now();
    for _ in 0..TICKS_PER_SAMPLE {
        black_box(market.tick(now));
        now += dt;
    }
    t0.elapsed().as_secs_f64() * 1e6 / f64::from(TICKS_PER_SAMPLE)
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn main() {
    let save = std::env::args().any(|a| a == "--save");

    // Interleave the two configurations so frequency drift and background
    // noise hit both alike.
    let mut bare = Vec::with_capacity(SAMPLES);
    let mut instrumented = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        bare.push(sample_tick_us(false));
        instrumented.push(sample_tick_us(true));
    }
    let bare_med = median(&mut bare);
    let instr_med = median(&mut instrumented);
    let overhead_pct = (instr_med - bare_med) / bare_med * 100.0;
    let pass = overhead_pct < BUDGET_PCT;

    println!(
        "auction_tick_{HOSTS}hosts_{USERS}users        bare {bare_med:>9.2} µs   telemetry {instr_med:>9.2} µs   overhead {overhead_pct:>+6.2} %   budget <{BUDGET_PCT} %   {}",
        if pass { "PASS" } else { "FAIL" }
    );

    if save {
        let json = format!(
            "{{\n  \"bench\": \"auction_tick\",\n  \"hosts\": {HOSTS},\n  \"users\": {USERS},\n  \"ticks_per_sample\": {TICKS_PER_SAMPLE},\n  \"samples\": {SAMPLES},\n  \"bare_tick_us_median\": {bare_med:.3},\n  \"telemetry_tick_us_median\": {instr_med:.3},\n  \"overhead_pct\": {overhead_pct:.3},\n  \"budget_pct\": {BUDGET_PCT:.1},\n  \"pass\": {pass}\n}}\n"
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json");
        std::fs::write(path, json).expect("write BENCH_telemetry.json");
        println!("saved {path}");
    }
}
