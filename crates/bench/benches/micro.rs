//! Hot-path microbenchmarks across the substrate crates.

use gm_bench::Harness;
use gm_bio::{window_similarity, Proteome};
use gm_crypto::{hmac_sha256, sha256, Keypair};
use gm_des::{Pcg32, Rng64};
use gm_numeric::norm_quantile;
use gm_numeric::spline::smoothing_spline;
use gm_numeric::toeplitz::yule_walker;
use gm_predict::SlotTable;
use gm_tycoon::{best_response, Auctioneer, Credits, HostId, HostQuote, HostSpec, UserId};
use std::hint::black_box;

fn bench_best_response(h: &Harness) {
    for n in [4usize, 16, 64, 256] {
        let mut rng = Pcg32::seed_from_u64(n as u64);
        let quotes: Vec<HostQuote> = (0..n)
            .map(|i| HostQuote {
                host: HostId(i as u32),
                weight: 1000.0 + rng.next_f64() * 4000.0,
                others_rate: 0.001 + rng.next_f64(),
            })
            .collect();
        h.bench(&format!("best_response/{n}"), || {
            best_response(&quotes, 5.0, usize::MAX)
        });
    }
}

fn bench_auctioneer(h: &Harness) {
    h.bench("auctioneer_allocate_50_bids", || {
        let mut a = Auctioneer::new(HostSpec::testbed(0));
        for i in 0..50 {
            a.place_bid(UserId(i), 0.01 + i as f64 * 1e-4, Credits::from_whole(1000));
        }
        a.allocate(10.0)
    });
}

fn bench_crypto(h: &Harness) {
    let data_1k = vec![0xabu8; 1024];
    let data_64k = vec![0xcdu8; 64 * 1024];
    h.bench("sha256_1KiB", || sha256(&data_1k));
    h.bench("sha256_64KiB", || sha256(&data_64k));
    h.bench("hmac_sha256_1KiB", || hmac_sha256(b"key", &data_1k));
    let keys = Keypair::from_seed(b"bench");
    let msg = b"transfer 100 credits to the resource broker";
    h.bench("schnorr_sign", || keys.sign(msg));
    let sig = keys.sign(msg);
    h.bench("schnorr_verify", || keys.public.verify(msg, &sig));
}

fn bench_numeric(h: &Harness) {
    let mut rng = Pcg32::seed_from_u64(1);
    let series: Vec<f64> = (0..4096).map(|_| rng.next_f64()).collect();
    h.bench("yule_walker_ar6_4096", || yule_walker(&series, 6));
    h.bench("smoothing_spline_4096", || smoothing_spline(&series, 100.0));
    h.bench("norm_quantile", || norm_quantile(black_box(0.95)));
    h.bench("slot_table_add_1000", || {
        let mut t = SlotTable::new(16, 0.5);
        for i in 0..1000 {
            t.add((i % 97) as f64 * 0.03);
        }
        t
    });
}

fn bench_bio(h: &Harness) {
    let proteome = Proteome::synthesize(4, 9);
    let window = &proteome.proteins[0].seq[..25];
    let target = &proteome.proteins[1].seq;
    h.bench("blosum_window_scan", || window_similarity(window, target));
    h.bench("proteome_synthesize_100", || Proteome::synthesize(100, 7));
}

fn main() {
    let h = Harness::new();
    bench_best_response(&h);
    bench_auctioneer(&h);
    bench_crypto(&h);
    bench_numeric(&h);
    bench_bio(&h);
}
