//! Hot-path microbenchmarks across the substrate crates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gm_bio::{window_similarity, Proteome};
use gm_crypto::{hmac_sha256, sha256, Keypair};
use gm_des::{Pcg32, Rng64};
use gm_numeric::spline::smoothing_spline;
use gm_numeric::toeplitz::yule_walker;
use gm_numeric::norm_quantile;
use gm_predict::SlotTable;
use gm_tycoon::{best_response, Auctioneer, Credits, HostId, HostQuote, HostSpec, UserId};
use std::hint::black_box;

fn bench_best_response(c: &mut Criterion) {
    let mut group = c.benchmark_group("best_response");
    for n in [4usize, 16, 64, 256] {
        let mut rng = Pcg32::seed_from_u64(n as u64);
        let quotes: Vec<HostQuote> = (0..n)
            .map(|i| HostQuote {
                host: HostId(i as u32),
                weight: 1000.0 + rng.next_f64() * 4000.0,
                others_rate: 0.001 + rng.next_f64(),
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &quotes, |b, q| {
            b.iter(|| black_box(best_response(q, 5.0, usize::MAX)))
        });
    }
    group.finish();
}

fn bench_auctioneer(c: &mut Criterion) {
    c.bench_function("auctioneer_allocate_50_bids", |b| {
        b.iter_batched(
            || {
                let mut a = Auctioneer::new(HostSpec::testbed(0));
                for i in 0..50 {
                    a.place_bid(UserId(i), 0.01 + i as f64 * 1e-4, Credits::from_whole(1000));
                }
                a
            },
            |mut a| black_box(a.allocate(10.0)),
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_crypto(c: &mut Criterion) {
    let data_1k = vec![0xabu8; 1024];
    let data_64k = vec![0xcdu8; 64 * 1024];
    c.bench_function("sha256_1KiB", |b| b.iter(|| black_box(sha256(&data_1k))));
    c.bench_function("sha256_64KiB", |b| b.iter(|| black_box(sha256(&data_64k))));
    c.bench_function("hmac_sha256_1KiB", |b| {
        b.iter(|| black_box(hmac_sha256(b"key", &data_1k)))
    });
    let keys = Keypair::from_seed(b"bench");
    let msg = b"transfer 100 credits to the resource broker";
    c.bench_function("schnorr_sign", |b| b.iter(|| black_box(keys.sign(msg))));
    let sig = keys.sign(msg);
    c.bench_function("schnorr_verify", |b| {
        b.iter(|| black_box(keys.public.verify(msg, &sig)))
    });
}

fn bench_numeric(c: &mut Criterion) {
    let mut rng = Pcg32::seed_from_u64(1);
    let series: Vec<f64> = (0..4096).map(|_| rng.next_f64()).collect();
    c.bench_function("yule_walker_ar6_4096", |b| {
        b.iter(|| black_box(yule_walker(&series, 6)))
    });
    c.bench_function("smoothing_spline_4096", |b| {
        b.iter(|| black_box(smoothing_spline(&series, 100.0)))
    });
    c.bench_function("norm_quantile", |b| {
        b.iter(|| black_box(norm_quantile(black_box(0.95))))
    });
    c.bench_function("slot_table_add_1000", |b| {
        b.iter_batched(
            || SlotTable::new(16, 0.5),
            |mut t| {
                for i in 0..1000 {
                    t.add((i % 97) as f64 * 0.03);
                }
                black_box(t)
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_bio(c: &mut Criterion) {
    let proteome = Proteome::synthesize(4, 9);
    let window = &proteome.proteins[0].seq[..25];
    let target = &proteome.proteins[1].seq;
    c.bench_function("blosum_window_scan", |b| {
        b.iter(|| black_box(window_similarity(window, target)))
    });
    c.bench_function("proteome_synthesize_100", |b| {
        b.iter(|| black_box(Proteome::synthesize(100, 7)))
    });
}

criterion_group!(
    benches,
    bench_best_response,
    bench_auctioneer,
    bench_crypto,
    bench_numeric,
    bench_bio
);
criterion_main!(benches);
