//! Regenerate the paper's Table 1 and Table 2 (quick scale) under
//! Criterion timing. The group rows are printed once to stderr so
//! `bench_output.txt` captures the reproduced numbers alongside timings.

use criterion::{criterion_group, criterion_main, Criterion};
use gm_experiments::{table1, table2, Scale};
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    // Print the reproduced tables once.
    let t1 = table1::run(Scale::Quick);
    eprintln!("\n{}", t1.rendered);
    let t2 = table2::run(Scale::Quick);
    eprintln!("{}", t2.rendered);

    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("table1_equal_funding", |b| {
        b.iter(|| black_box(table1::run(Scale::Quick)))
    });
    group.bench_function("table2_two_point_funding", |b| {
        b.iter(|| black_box(table2::run(Scale::Quick)))
    });
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
