//! Regenerate the paper's Table 1 and Table 2 (quick scale) under timing.
//! The group rows are printed once to stderr so `bench_output.txt`
//! captures the reproduced numbers alongside timings.

use gm_bench::Harness;
use gm_experiments::{table1, table2, Scale};

fn main() {
    // Print the reproduced tables once.
    let t1 = table1::run(Scale::Quick);
    eprintln!("\n{}", t1.rendered);
    let t2 = table2::run(Scale::Quick);
    eprintln!("{}", t2.rendered);

    let h = Harness::new().samples(10);
    h.bench("table1_equal_funding", || table1::run(Scale::Quick));
    h.bench("table2_two_point_funding", || table2::run(Scale::Quick));
}
