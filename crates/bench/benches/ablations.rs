//! Ablations of the design choices called out in `DESIGN.md`: each bench
//! times a scenario variant and prints its outcome metrics once, so the
//! quality impact is recorded next to the timing.

use gm_bench::{bench_scenario, Harness};

use gm_predict::ar::{epsilon, naive_epsilon, walk_forward, ArModel, MeanMode};

fn summarize(tag: &str, r: &gridmarket::ScenarioResult) {
    let makespan = r.users.iter().map(|u| u.time_hours).fold(0.0f64, f64::max);
    let cost: f64 = r.users.iter().map(|u| u.charged).sum();
    eprintln!(
        "[ablation] {tag}: makespan {makespan:.2} h, total cost {cost:.2} cr, all done: {}",
        r.all_done()
    );
}

fn ablate_rebidding(h: &Harness) {
    summarize("rebid=on ", &bench_scenario(true, 9.0));
    summarize("rebid=off", &bench_scenario(false, 9.0));
    h.bench("ablation_rebid/on", || bench_scenario(true, 9.0));
    h.bench("ablation_rebid/off", || bench_scenario(false, 9.0));
}

fn ablate_premium_cap(h: &Harness) {
    summarize("premium=3   ", &bench_scenario(true, 3.0));
    summarize("premium=9   ", &bench_scenario(true, 9.0));
    summarize("premium=off ", &bench_scenario(true, f64::INFINITY));
    h.bench("ablation_premium/3", || bench_scenario(true, 3.0));
    h.bench("ablation_premium/uncapped", || {
        bench_scenario(true, f64::INFINITY)
    });
}

fn ablate_ar_smoothing(h: &Harness) {
    let cfg = gm_experiments::pricegen::PriceGenConfig::new(3.0, 0xAB1);
    let prices = gm_experiments::pricegen::host0_prices(&cfg);
    let split = prices.len() / 2;
    let (train, validate) = prices.split_at(split);
    let horizon = 10;
    for (tag, lambda) in [("raw", 0.0), ("smoothed", 81.0)] {
        if let Some(m) = ArModel::fit(train, 6, lambda) {
            let m = m.with_mean_mode(MeanMode::Local(30));
            let (p, me) = walk_forward(&m, train, validate, horizon);
            eprintln!(
                "[ablation] AR {tag}: eps {:.4} (naive {:.4})",
                epsilon(&p, &me),
                naive_epsilon(validate, horizon)
            );
        }
    }
    let model_raw = ArModel::fit(train, 6, 0.0).unwrap();
    let model_smooth = ArModel::fit(train, 6, 81.0).unwrap();
    h.bench("ablation_ar/walk_forward_raw", || {
        walk_forward(&model_raw, train, validate, horizon)
    });
    h.bench("ablation_ar/walk_forward_smoothed", || {
        walk_forward(&model_smooth, train, validate, horizon)
    });
}

fn ablate_interval(h: &Harness) {
    use gridmarket::scenario::{Scenario, UserSetup};
    let run = |interval: f64| {
        Scenario::builder()
            .seed(33)
            .hosts(4)
            .chunk_minutes(6.0)
            .deadline_minutes(60)
            .horizon_hours(6)
            .interval_secs(interval)
            .user(UserSetup::new(100.0).subjobs(3))
            .user(UserSetup::new(300.0).subjobs(3))
            .run()
            .expect("interval scenario")
    };
    for interval in [10.0, 60.0] {
        let r = run(interval);
        let makespan = r.users.iter().map(|u| u.time_hours).fold(0.0f64, f64::max);
        eprintln!(
            "[ablation] interval={interval}s: makespan {makespan:.2} h, all done {}",
            r.all_done()
        );
    }
    h.bench("ablation_interval/10s", || run(10.0));
    h.bench("ablation_interval/60s", || run(60.0));
}

fn main() {
    let h = Harness::new().samples(10);
    ablate_rebidding(&h);
    ablate_premium_cap(&h);
    ablate_ar_smoothing(&h);
    ablate_interval(&h);
}
