//! Ablations of the design choices called out in `DESIGN.md`: each bench
//! times a scenario variant and prints its outcome metrics once, so the
//! quality impact is recorded next to the timing.

use criterion::{criterion_group, criterion_main, Criterion};
use gm_bench::bench_scenario;

use gm_predict::ar::{epsilon, naive_epsilon, walk_forward, ArModel, MeanMode};
use std::hint::black_box;

fn summarize(tag: &str, r: &gridmarket::ScenarioResult) {
    let makespan = r.users.iter().map(|u| u.time_hours).fold(0.0f64, f64::max);
    let cost: f64 = r.users.iter().map(|u| u.charged).sum();
    eprintln!(
        "[ablation] {tag}: makespan {makespan:.2} h, total cost {cost:.2} cr, all done: {}",
        r.all_done()
    );
}

fn ablate_rebidding(c: &mut Criterion) {
    summarize("rebid=on ", &bench_scenario(true, 9.0));
    summarize("rebid=off", &bench_scenario(false, 9.0));
    let mut g = c.benchmark_group("ablation_rebid");
    g.sample_size(10);
    g.bench_function("rebid_on", |b| b.iter(|| black_box(bench_scenario(true, 9.0))));
    g.bench_function("rebid_off", |b| b.iter(|| black_box(bench_scenario(false, 9.0))));
    g.finish();
}

fn ablate_premium_cap(c: &mut Criterion) {
    summarize("premium=3   ", &bench_scenario(true, 3.0));
    summarize("premium=9   ", &bench_scenario(true, 9.0));
    summarize("premium=off ", &bench_scenario(true, f64::INFINITY));
    let mut g = c.benchmark_group("ablation_premium");
    g.sample_size(10);
    g.bench_function("premium_3", |b| b.iter(|| black_box(bench_scenario(true, 3.0))));
    g.bench_function("premium_uncapped", |b| {
        b.iter(|| black_box(bench_scenario(true, f64::INFINITY)))
    });
    g.finish();
}

fn ablate_ar_smoothing(c: &mut Criterion) {
    let cfg = gm_experiments::pricegen::PriceGenConfig::new(3.0, 0xAB1);
    let prices = gm_experiments::pricegen::host0_prices(&cfg);
    let split = prices.len() / 2;
    let (train, validate) = prices.split_at(split);
    let horizon = 10;
    for (tag, lambda) in [("raw", 0.0), ("smoothed", 81.0)] {
        if let Some(m) = ArModel::fit(train, 6, lambda) {
            let m = m.with_mean_mode(MeanMode::Local(30));
            let (p, me) = walk_forward(&m, train, validate, horizon);
            eprintln!(
                "[ablation] AR {tag}: eps {:.4} (naive {:.4})",
                epsilon(&p, &me),
                naive_epsilon(validate, horizon)
            );
        }
    }
    let model_raw = ArModel::fit(train, 6, 0.0).unwrap();
    let model_smooth = ArModel::fit(train, 6, 81.0).unwrap();
    let mut g = c.benchmark_group("ablation_ar_smoothing");
    g.sample_size(10);
    g.bench_function("walk_forward_raw", |b| {
        b.iter(|| black_box(walk_forward(&model_raw, train, validate, horizon)))
    });
    g.bench_function("walk_forward_smoothed", |b| {
        b.iter(|| black_box(walk_forward(&model_smooth, train, validate, horizon)))
    });
    g.finish();
}

fn ablate_interval(c: &mut Criterion) {
    use gridmarket::scenario::{Scenario, UserSetup};
    let run = |interval: f64| {
        Scenario::builder()
            .seed(33)
            .hosts(4)
            .chunk_minutes(6.0)
            .deadline_minutes(60)
            .horizon_hours(6)
            .interval_secs(interval)
            .user(UserSetup::new(100.0).subjobs(3))
            .user(UserSetup::new(300.0).subjobs(3))
            .run()
            .expect("interval scenario")
    };
    for interval in [10.0, 60.0] {
        let r = run(interval);
        let makespan = r.users.iter().map(|u| u.time_hours).fold(0.0f64, f64::max);
        eprintln!("[ablation] interval={interval}s: makespan {makespan:.2} h, all done {}", r.all_done());
    }
    let mut g = c.benchmark_group("ablation_interval");
    g.sample_size(10);
    g.bench_function("interval_10s", |b| b.iter(|| black_box(run(10.0))));
    g.bench_function("interval_60s", |b| b.iter(|| black_box(run(60.0))));
    g.finish();
}

criterion_group!(
    benches,
    ablate_rebidding,
    ablate_premium_cap,
    ablate_ar_smoothing,
    ablate_interval
);
criterion_main!(benches);
