//! Monte-Carlo scenario-runner throughput bench (DESIGN.md §13).
//!
//! Fans the same fixed seed set of chaos scenarios — the full market
//! stack under random `FaultPlan`s — through `gm_core::MonteCarlo` at
//! 1, 2, 4 and 8 worker threads and reports scenarios/sec plus the
//! parallel efficiency `speedup(n) / n` relative to the single-thread
//! run. The budget requires ≥ 60 % efficiency at every thread count
//! that the machine can actually parallelise (thread counts above
//! `available_parallelism` are reported but not gated — oversubscribing
//! a small CI box is not a harness regression).
//!
//! Every run also re-checks the determinism contract: the rendered
//! report at n threads must be byte-identical to the 1-thread report.
//!
//! `--save` (what `just bench-save-mc` passes) writes the result to
//! `BENCH_mc.json` at the repository root.

use std::time::Instant;

use gridmarket::sched::seed_stream;
use gridmarket::{chaos_runner, chaos_scenario, ChaosConfig, ChaosMetrics};

const SEEDS: usize = 48;
const THREADS: [usize; 4] = [1, 2, 4, 8];
const EFFICIENCY_BUDGET: f64 = 0.60;

/// One thread-count measurement: wall time and the rendered report.
fn run_at(threads: usize, seeds: &[u64]) -> (f64, String) {
    let cfg = ChaosConfig::default();
    let mc = chaos_runner(threads).batch(16);
    let t0 = Instant::now();
    let batch = mc.run(seeds, move |s| chaos_scenario(s, &cfg));
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        batch.completed().count(),
        seeds.len(),
        "bench seeds must not quarantine"
    );
    (secs, batch.report(ChaosMetrics::rows).render())
}

fn main() {
    let save = std::env::args().any(|a| a == "--save");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let seeds = seed_stream(0xBE7C4, SEEDS);

    // Warm-up so first-touch allocation noise stays out of the 1-thread
    // baseline every other row is scored against.
    let _ = run_at(1, &seeds[..8]);

    let (base_secs, base_report) = run_at(1, &seeds);
    let base_rate = SEEDS as f64 / base_secs;

    let mut pass = true;
    let mut rows = Vec::new();
    for &n in &THREADS {
        let (secs, rate, efficiency) = if n == 1 {
            (base_secs, base_rate, 1.0)
        } else {
            let (secs, report) = run_at(n, &seeds);
            assert_eq!(
                report, base_report,
                "determinism broken: {n}-thread report differs from 1-thread"
            );
            let rate = SEEDS as f64 / secs;
            (secs, rate, (rate / base_rate) / n as f64)
        };
        // Only gate thread counts the hardware can actually run in
        // parallel; beyond that, efficiency is informational.
        let gated = n <= cores;
        let ok = !gated || efficiency >= EFFICIENCY_BUDGET;
        pass &= ok;
        println!(
            "mc_chaos_{SEEDS}seeds  threads {n}   {secs:>6.2} s   {rate:>7.1} scn/s   efficiency {:>5.1} %   {}",
            efficiency * 100.0,
            if !gated {
                "(ungated: > available cores)"
            } else if ok {
                "PASS"
            } else {
                "FAIL"
            }
        );
        rows.push((n, rate, efficiency, gated));
    }
    println!(
        "budget: efficiency >= {:.0} % for threads <= {cores} available cores   {}",
        EFFICIENCY_BUDGET * 100.0,
        if pass { "PASS" } else { "FAIL" }
    );

    if save {
        let mut entries = String::new();
        for (i, (n, rate, eff, gated)) in rows.iter().enumerate() {
            if i > 0 {
                entries.push_str(",\n");
            }
            entries.push_str(&format!(
                "    {{\"threads\": {n}, \"scenarios_per_sec\": {rate:.2}, \"efficiency\": {eff:.3}, \"gated\": {gated}}}"
            ));
        }
        let json = format!(
            "{{\n  \"bench\": \"mc_chaos\",\n  \"seeds\": {SEEDS},\n  \"available_cores\": {cores},\n  \"efficiency_budget\": {EFFICIENCY_BUDGET},\n  \"rows\": [\n{entries}\n  ],\n  \"pass\": {pass}\n}}\n"
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mc.json");
        std::fs::write(path, json).expect("write BENCH_mc.json");
        println!("saved {path}");
    }

    if !pass {
        std::process::exit(1);
    }
}
