//! Regenerate the paper's Fig. 3–7 (quick scale) under Criterion timing,
//! printing each figure's reproduced numbers once to stderr.

use criterion::{criterion_group, criterion_main, Criterion};
use gm_experiments::{fig3, fig4, fig5, fig6, fig7, Scale};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    eprintln!("\n{}", fig3::run(Scale::Quick).rendered);
    eprintln!("{}", fig4::run(Scale::Quick).rendered);
    eprintln!("{}", fig5::run(Scale::Quick).rendered);
    eprintln!("{}", fig6::run(Scale::Quick).rendered);
    eprintln!("{}", fig7::run(Scale::Quick).rendered);

    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig3_guarantee_curves", |b| {
        b.iter(|| black_box(fig3::run(Scale::Quick)))
    });
    group.bench_function("fig4_ar_forecast", |b| {
        b.iter(|| black_box(fig4::run(Scale::Quick)))
    });
    group.bench_function("fig5_portfolio", |b| {
        b.iter(|| black_box(fig5::run(Scale::Quick)))
    });
    group.bench_function("fig6_price_windows", |b| {
        b.iter(|| black_box(fig6::run(Scale::Quick)))
    });
    group.bench_function("fig7_window_approximation", |b| {
        b.iter(|| black_box(fig7::run(Scale::Quick)))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
