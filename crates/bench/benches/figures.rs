//! Regenerate the paper's Fig. 3–7 (quick scale) under timing, printing
//! each figure's reproduced numbers once to stderr.

use gm_bench::Harness;
use gm_experiments::{fig3, fig4, fig5, fig6, fig7, Scale};

fn main() {
    eprintln!("\n{}", fig3::run(Scale::Quick).rendered);
    eprintln!("{}", fig4::run(Scale::Quick).rendered);
    eprintln!("{}", fig5::run(Scale::Quick).rendered);
    eprintln!("{}", fig6::run(Scale::Quick).rendered);
    eprintln!("{}", fig7::run(Scale::Quick).rendered);

    let h = Harness::new().samples(10);
    h.bench("fig3_guarantee_curves", || fig3::run(Scale::Quick));
    h.bench("fig4_ar_forecast", || fig4::run(Scale::Quick));
    h.bench("fig5_portfolio", || fig5::run(Scale::Quick));
    h.bench("fig6_price_windows", || fig6::run(Scale::Quick));
    h.bench("fig7_window_approximation", || fig7::run(Scale::Quick));
}
