//! # gm-bench — benchmark harness
//!
//! Criterion benches (`cargo bench --workspace`):
//!
//! * `tables` — regenerate Table 1 / Table 2 (quick scale).
//! * `figures` — regenerate Fig. 3–7 (quick scale).
//! * `micro` — hot-path microbenchmarks: Best Response, auctioneer
//!   allocation, SHA-256, Schnorr sign/verify, token verification,
//!   Levinson-Durbin, smoothing spline, the BLOSUM62 scan kernel.
//! * `ablations` — design-choice ablations called out in `DESIGN.md`:
//!   per-interval rebidding on/off, bid-rate premium cap, VM provisioning
//!   cost, AR smoothing on/off.
//!
//! The benches print the *quality* metrics they produce (ε, group rows)
//! to stderr once per run so `bench_output.txt` records both speed and
//! outcome.

/// Shared helper: a small deterministic scenario used by several benches.
pub fn bench_scenario(rebid: bool, premium: f64) -> gridmarket::ScenarioResult {
    use gridmarket::scenario::{Scenario, UserSetup};
    let agent = gm_grid::AgentConfig {
        rebid,
        max_share_premium: premium,
        ..gm_grid::AgentConfig::default()
    };
    Scenario::builder()
        .seed(100)
        .hosts(6)
        .chunk_minutes(6.0)
        .deadline_minutes(60)
        .horizon_hours(6)
        .agent(agent)
        .user(UserSetup::new(100.0).subjobs(3))
        .user(UserSetup::new(100.0).subjobs(3))
        .user(UserSetup::new(400.0).subjobs(3))
        .run()
        .expect("bench scenario")
}
