//! # gm-bench — benchmark harness
//!
//! Self-contained benches (`cargo bench --workspace`), timed by the
//! in-repo [`Harness`] (no external benchmark framework):
//!
//! * `tables` — regenerate Table 1 / Table 2 (quick scale).
//! * `figures` — regenerate Fig. 3–7 (quick scale).
//! * `micro` — hot-path microbenchmarks: Best Response, auctioneer
//!   allocation, SHA-256, Schnorr sign/verify, token verification,
//!   Levinson-Durbin, smoothing spline, the BLOSUM62 scan kernel.
//! * `ablations` — design-choice ablations called out in `DESIGN.md`:
//!   per-interval rebidding on/off, bid-rate premium cap, VM provisioning
//!   cost, AR smoothing on/off.
//!
//! The benches print the *quality* metrics they produce (ε, group rows)
//! to stderr once per run so `bench_output.txt` records both speed and
//! outcome.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Minimal wall-clock timing harness: per benchmark it warms up once,
/// auto-batches fast routines so every sample runs for at least a few
/// milliseconds, then prints per-iteration mean/min/max over the samples.
pub struct Harness {
    samples: usize,
    min_sample_time: Duration,
}

impl Default for Harness {
    fn default() -> Self {
        Harness::new()
    }
}

impl Harness {
    /// A harness with 10 samples of ≥ 5 ms each.
    pub fn new() -> Self {
        Harness {
            samples: 10,
            min_sample_time: Duration::from_millis(5),
        }
    }

    /// Set the number of timed samples.
    pub fn samples(mut self, n: usize) -> Self {
        self.samples = n.max(1);
        self
    }

    /// Time `f` and print one result line to stdout.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) {
        // Warm-up run doubles as batch-size calibration.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed();
        let batch = (self.min_sample_time.as_nanos() / once.as_nanos().max(1))
            .clamp(1, 1_000_000) as u32;
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            per_iter.push(t.elapsed().as_secs_f64() / batch as f64);
        }
        per_iter.sort_by(f64::total_cmp);
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{name:<44} mean {:>10}  min {:>10}  max {:>10}  ({} samples x {batch} iters)",
            fmt_secs(mean),
            fmt_secs(per_iter[0]),
            fmt_secs(*per_iter.last().expect("samples >= 1")),
            self.samples,
        );
    }
}

/// Human-readable seconds with an adaptive unit.
fn fmt_secs(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

/// Shared helper: a small deterministic scenario used by several benches.
pub fn bench_scenario(rebid: bool, premium: f64) -> gridmarket::ScenarioResult {
    use gridmarket::scenario::{Scenario, UserSetup};
    let agent = gm_grid::AgentConfig {
        rebid,
        max_share_premium: premium,
        ..gm_grid::AgentConfig::default()
    };
    Scenario::builder()
        .seed(100)
        .hosts(6)
        .chunk_minutes(6.0)
        .deadline_minutes(60)
        .horizon_hours(6)
        .agent(agent)
        .user(UserSetup::new(100.0).subjobs(3))
        .user(UserSetup::new(100.0).subjobs(3))
        .user(UserSetup::new(400.0).subjobs(3))
        .run()
        .expect("bench scenario")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_a_closure() {
        // Smoke test: must not panic, batch must calibrate for a fast fn.
        Harness::new().samples(3).bench("noop_add", || black_box(1u64) + 1);
    }

    #[test]
    fn fmt_units() {
        assert!(fmt_secs(2e-9).ends_with("ns"));
        assert!(fmt_secs(2e-6).ends_with("µs"));
        assert!(fmt_secs(2e-3).ends_with("ms"));
        assert!(fmt_secs(2.0).ends_with(" s"));
    }
}
