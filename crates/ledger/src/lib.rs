//! # gm-ledger — durable write-ahead logging for the economy
//!
//! An ARIES-flavoured durability layer (`DESIGN.md` §11): state-changing
//! events are appended to a write-ahead log *before* their effects are
//! considered durable, and the log is periodically folded into a compacted
//! snapshot. Recovery replays `snapshot + WAL`, truncating a torn tail
//! (a crash mid-append) and rejecting records whose checksum does not
//! match (bit rot / partial overwrite).
//!
//! ## Record framing
//!
//! Every record — snapshot and WAL alike — is framed as
//!
//! ```text
//! [len: u32 BE] [sha256(payload): 32 bytes] [payload: len bytes]
//! ```
//!
//! The checksum covers the payload only; the length header is implicitly
//! validated by the checksum (a corrupted length either lands on a torn
//! tail or produces a payload whose digest cannot match).
//!
//! The crate knows nothing about banks or credits: payloads are opaque
//! byte strings. `gm-tycoon` layers the bank-event codec on top.

use std::fmt;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use gm_crypto::sha256;

/// Bytes of framing overhead per record (length header + SHA-256 digest).
pub const RECORD_HEADER_BYTES: usize = 4 + 32;

/// Why a journal could not be replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerError {
    /// The snapshot record failed its checksum — there is no consistent
    /// base state to recover from.
    CorruptSnapshot,
    /// The snapshot record is truncated (torn snapshot write).
    TornSnapshot,
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::CorruptSnapshot => write!(f, "snapshot checksum mismatch"),
            LedgerError::TornSnapshot => write!(f, "snapshot record truncated"),
        }
    }
}

impl std::error::Error for LedgerError {}

/// The outcome of replaying a journal: the snapshot payload (if any), the
/// WAL record payloads that survived validation, and what was discarded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replay {
    /// Decoded snapshot payload; `None` when no snapshot was ever taken.
    pub snapshot: Option<Vec<u8>>,
    /// Validated WAL record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes discarded from a torn tail (an append the crash cut short).
    pub torn_tail_bytes: usize,
    /// Records rejected on checksum mismatch. Replay stops at the first
    /// corrupt record: everything after it is untrusted.
    pub corrupt_records: usize,
}

/// An append-only journal: one compacted snapshot plus a write-ahead log,
/// both as framed byte buffers. In-memory by default; [`Journal::save_dir`]
/// and [`Journal::load_dir`] move it to and from disk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Journal {
    /// The framed snapshot record (empty = no snapshot).
    snapshot: Vec<u8>,
    /// Concatenated framed WAL records.
    wal: Vec<u8>,
    /// Byte offset of the end of each complete WAL record, in order.
    record_ends: Vec<usize>,
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&sha256(payload));
    out.extend_from_slice(payload);
    out
}

/// Parse one framed record at `buf[off..]`. Returns
/// `Ok(Some((payload, next_off)))` for a valid record, `Ok(None)` for a
/// torn tail (not enough bytes for the claimed record), and `Err(())` for
/// a complete record whose checksum does not match.
#[allow(clippy::type_complexity)]
fn parse_record(buf: &[u8], off: usize) -> Result<Option<(&[u8], usize)>, ()> {
    let Some(header) = buf.get(off..off + 4) else {
        return Ok(None);
    };
    let len = u32::from_be_bytes(header.try_into().expect("4 bytes")) as usize;
    let body_start = off + RECORD_HEADER_BYTES;
    let Some(digest) = buf.get(off + 4..body_start) else {
        return Ok(None);
    };
    let Some(payload) = buf.get(body_start..body_start + len) else {
        return Ok(None);
    };
    if sha256(payload) != digest {
        return Err(());
    }
    Ok(Some((payload, body_start + len)))
}

impl Journal {
    /// Empty journal: no snapshot, no WAL.
    pub fn new() -> Journal {
        Journal::default()
    }

    /// Rebuild a journal from raw snapshot and WAL byte buffers (as read
    /// from disk, or as produced by [`Journal::snapshot_bytes`] /
    /// [`Journal::wal_bytes`]). The buffers are taken verbatim — torn or
    /// corrupt content is diagnosed at [`Journal::replay`] time, exactly
    /// like a post-crash disk image.
    pub fn from_parts(snapshot: Vec<u8>, wal: Vec<u8>) -> Journal {
        let mut record_ends = Vec::new();
        let mut off = 0usize;
        while let Ok(Some((_, next))) = parse_record(&wal, off) {
            record_ends.push(next);
            off = next;
        }
        Journal {
            snapshot,
            wal,
            record_ends,
        }
    }

    /// Append one payload as a framed WAL record; returns the WAL byte
    /// offset just past the new record (a valid kill point).
    pub fn append(&mut self, payload: &[u8]) -> usize {
        self.wal.extend_from_slice(&frame(payload));
        self.record_ends.push(self.wal.len());
        self.wal.len()
    }

    /// Replace the snapshot with `payload` and clear the WAL: everything
    /// the log said is now folded into the snapshot (checkpointing).
    pub fn compact(&mut self, payload: &[u8]) {
        self.snapshot = frame(payload);
        self.wal.clear();
        self.record_ends.clear();
    }

    /// Current WAL length in bytes.
    pub fn wal_len(&self) -> usize {
        self.wal.len()
    }

    /// Number of complete records currently in the WAL.
    pub fn record_count(&self) -> usize {
        self.record_ends.len()
    }

    /// Byte offset of the end of each complete WAL record, in append
    /// order — the kill points a crash sweep iterates over (offset 0, the
    /// empty prefix, is implicitly also a valid kill point).
    pub fn record_ends(&self) -> &[usize] {
        &self.record_ends
    }

    /// Raw framed snapshot bytes (empty when no snapshot exists).
    pub fn snapshot_bytes(&self) -> &[u8] {
        &self.snapshot
    }

    /// Raw concatenated framed WAL bytes.
    pub fn wal_bytes(&self) -> &[u8] {
        &self.wal
    }

    /// A copy of this journal as a crash at WAL byte offset `wal_bytes`
    /// would leave it on disk: the snapshot survives (snapshots are
    /// written atomically via rename), the WAL is cut at an arbitrary
    /// byte — mid-record cuts produce a torn tail for recovery to
    /// truncate.
    pub fn crash_at(&self, wal_bytes: usize) -> Journal {
        let cut = wal_bytes.min(self.wal.len());
        Journal::from_parts(self.snapshot.clone(), self.wal[..cut].to_vec())
    }

    /// Validate and decode the journal. Torn tails are truncated
    /// (silently — an interrupted append never became durable); a
    /// mid-log checksum mismatch stops replay at the corrupt record. Only
    /// a corrupt or torn *snapshot* is unrecoverable.
    pub fn replay(&self) -> Result<Replay, LedgerError> {
        let snapshot = if self.snapshot.is_empty() {
            None
        } else {
            match parse_record(&self.snapshot, 0) {
                Ok(Some((payload, _))) => Some(payload.to_vec()),
                Ok(None) => return Err(LedgerError::TornSnapshot),
                Err(()) => return Err(LedgerError::CorruptSnapshot),
            }
        };
        let mut records = Vec::new();
        let mut off = 0usize;
        let mut corrupt_records = 0usize;
        let torn_tail_bytes;
        loop {
            match parse_record(&self.wal, off) {
                Ok(Some((payload, next))) => {
                    records.push(payload.to_vec());
                    off = next;
                }
                Ok(None) => {
                    torn_tail_bytes = self.wal.len() - off;
                    break;
                }
                Err(()) => {
                    // Everything from the corrupt record on is untrusted.
                    corrupt_records = 1;
                    torn_tail_bytes = 0;
                    break;
                }
            }
        }
        Ok(Replay {
            snapshot,
            records,
            torn_tail_bytes,
            corrupt_records,
        })
    }

    /// Persist to `dir` as `snapshot.bin` + `wal.bin`. The snapshot is
    /// written to a temporary file and renamed into place, so a crash
    /// during `save_dir` can tear the WAL tail but never the snapshot —
    /// the invariant [`Journal::crash_at`] models.
    pub fn save_dir(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join("snapshot.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.snapshot)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, dir.join("snapshot.bin"))?;
        let mut f = std::fs::File::create(dir.join("wal.bin"))?;
        f.write_all(&self.wal)?;
        f.sync_all()?;
        Ok(())
    }

    /// Load a journal previously saved with [`Journal::save_dir`]. Missing
    /// files load as empty (a journal that never wrote anything).
    pub fn load_dir(dir: &Path) -> std::io::Result<Journal> {
        fn read_opt(path: &Path) -> std::io::Result<Vec<u8>> {
            match std::fs::File::open(path) {
                Ok(mut f) => {
                    let mut buf = Vec::new();
                    f.read_to_end(&mut buf)?;
                    Ok(buf)
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
                Err(e) => Err(e),
            }
        }
        Ok(Journal::from_parts(
            read_opt(&dir.join("snapshot.bin"))?,
            read_opt(&dir.join("wal.bin"))?,
        ))
    }
}

/// A cheaply clonable, thread-safe handle to one [`Journal`]: the bank
/// appends through it while tests, auditors and recovery keep their own
/// handles to the same log (and the live `BankService` thread shares it
/// with the spawner — that sharing is exactly what makes a killed service
/// recoverable).
#[derive(Debug, Clone, Default)]
pub struct SharedJournal {
    inner: Arc<Mutex<Journal>>,
}

impl SharedJournal {
    /// A fresh, empty in-memory journal.
    pub fn new() -> SharedJournal {
        SharedJournal::default()
    }

    /// Wrap an existing journal (e.g. one loaded from disk).
    pub fn from_journal(journal: Journal) -> SharedJournal {
        SharedJournal {
            inner: Arc::new(Mutex::new(journal)),
        }
    }

    /// Append one payload; returns the WAL byte offset past the record.
    pub fn append(&self, payload: &[u8]) -> usize {
        self.inner.lock().expect("journal lock").append(payload)
    }

    /// Replace the snapshot and clear the WAL (checkpoint).
    pub fn compact(&self, payload: &[u8]) {
        self.inner.lock().expect("journal lock").compact(payload)
    }

    /// Validate and decode the current journal contents.
    pub fn replay(&self) -> Result<Replay, LedgerError> {
        self.inner.lock().expect("journal lock").replay()
    }

    /// Number of complete WAL records.
    pub fn record_count(&self) -> usize {
        self.inner.lock().expect("journal lock").record_count()
    }

    /// Current WAL length in bytes.
    pub fn wal_len(&self) -> usize {
        self.inner.lock().expect("journal lock").wal_len()
    }

    /// A deep copy of the underlying journal (for crash sweeps: the copy
    /// is the "disk image", unaffected by further appends).
    pub fn to_journal(&self) -> Journal {
        self.inner.lock().expect("journal lock").clone()
    }

    /// See [`Journal::crash_at`].
    pub fn crash_at(&self, wal_bytes: usize) -> Journal {
        self.inner.lock().expect("journal lock").crash_at(wal_bytes)
    }

    /// See [`Journal::save_dir`].
    pub fn save_dir(&self, dir: &Path) -> std::io::Result<()> {
        self.inner.lock().expect("journal lock").save_dir(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payloads(journal: &Journal) -> Vec<Vec<u8>> {
        journal.replay().unwrap().records
    }

    #[test]
    fn append_replay_round_trips() {
        let mut j = Journal::new();
        j.append(b"one");
        j.append(b"");
        j.append(&[0xff; 300]);
        let r = j.replay().unwrap();
        assert_eq!(r.snapshot, None);
        assert_eq!(r.records, vec![b"one".to_vec(), Vec::new(), vec![0xff; 300]]);
        assert_eq!(r.torn_tail_bytes, 0);
        assert_eq!(r.corrupt_records, 0);
        assert_eq!(j.record_count(), 3);
    }

    #[test]
    fn compact_folds_wal_into_snapshot() {
        let mut j = Journal::new();
        j.append(b"a");
        j.append(b"b");
        j.compact(b"state-ab");
        assert_eq!(j.wal_len(), 0);
        j.append(b"c");
        let r = j.replay().unwrap();
        assert_eq!(r.snapshot.as_deref(), Some(&b"state-ab"[..]));
        assert_eq!(r.records, vec![b"c".to_vec()]);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let mut j = Journal::new();
        j.append(b"kept");
        let boundary = j.append(b"torn-away");
        for cut in boundary - RECORD_HEADER_BYTES - 5..boundary {
            let torn = j.crash_at(cut);
            let r = torn.replay().unwrap();
            assert_eq!(r.records, vec![b"kept".to_vec()], "cut at {cut}");
            assert_eq!(r.torn_tail_bytes, cut - j.record_ends()[0]);
            assert_eq!(r.corrupt_records, 0);
        }
    }

    #[test]
    fn every_record_boundary_is_a_clean_kill_point() {
        let mut j = Journal::new();
        for i in 0..20u8 {
            j.append(&[i; 9]);
        }
        let mut prev = 0usize;
        for (idx, &end) in j.record_ends().iter().enumerate() {
            let r = j.crash_at(end).replay().unwrap();
            assert_eq!(r.records.len(), idx + 1);
            assert_eq!(r.torn_tail_bytes, 0);
            assert!(end > prev);
            prev = end;
        }
        // Offset 0 — crash before the first append — is also clean.
        assert!(payloads(&j.crash_at(0)).is_empty());
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let mut j = Journal::new();
        j.append(b"good");
        j.append(b"evil");
        j.append(b"after");
        let mut wal = j.wal_bytes().to_vec();
        // Flip one payload byte of the middle record.
        let off = j.record_ends()[0] + RECORD_HEADER_BYTES;
        wal[off] ^= 0x40;
        let tampered = Journal::from_parts(j.snapshot_bytes().to_vec(), wal);
        let r = tampered.replay().unwrap();
        assert_eq!(r.records, vec![b"good".to_vec()], "replay stops at corruption");
        assert_eq!(r.corrupt_records, 1);
    }

    #[test]
    fn corrupt_snapshot_is_unrecoverable() {
        let mut j = Journal::new();
        j.compact(b"base");
        let mut snap = j.snapshot_bytes().to_vec();
        *snap.last_mut().unwrap() ^= 1;
        let bad = Journal::from_parts(snap, Vec::new());
        assert_eq!(bad.replay(), Err(LedgerError::CorruptSnapshot));
        let torn = Journal::from_parts(j.snapshot_bytes()[..10].to_vec(), Vec::new());
        assert_eq!(torn.replay(), Err(LedgerError::TornSnapshot));
    }

    #[test]
    fn from_parts_reindexes_record_ends() {
        let mut j = Journal::new();
        j.append(b"x");
        j.append(b"yy");
        let rebuilt = Journal::from_parts(j.snapshot_bytes().to_vec(), j.wal_bytes().to_vec());
        assert_eq!(rebuilt.record_ends(), j.record_ends());
        assert_eq!(rebuilt, j);
    }

    #[test]
    fn shared_handle_sees_appends_from_clones() {
        let a = SharedJournal::new();
        let b = a.clone();
        a.append(b"from-a");
        b.append(b"from-b");
        assert_eq!(a.record_count(), 2);
        let r = b.replay().unwrap();
        assert_eq!(r.records.len(), 2);
    }

    #[test]
    fn save_and_load_dir_round_trips() {
        let mut j = Journal::new();
        j.compact(b"snapshotted");
        j.append(b"tail-1");
        j.append(b"tail-2");
        let dir = std::env::temp_dir().join(format!("gm-ledger-test-{}", std::process::id()));
        j.save_dir(&dir).unwrap();
        let back = Journal::load_dir(&dir).unwrap();
        assert_eq!(back, j);
        let _ = std::fs::remove_dir_all(&dir);
        // A directory that never existed loads as an empty journal.
        let empty = Journal::load_dir(&dir.join("nope")).unwrap();
        assert_eq!(empty, Journal::new());
    }
}
