//! # gm-experiments — regenerators for the paper's evaluation
//!
//! One module per table/figure of the paper's Section 5, each with a
//! `run(scale)` entry point returning both structured results (consumed by
//! tests and benches) and a rendered report (printed by the binaries).
//!
//! | Module   | Paper artifact | What it reproduces |
//! |----------|----------------|--------------------|
//! | [`table1`] | Table 1 | equal funding: 5 users × $100, group metrics |
//! | [`table2`] | Table 2 | two-point funding 100,100,500,500,500 |
//! | [`fig3`]   | Fig. 3  | normal-model guarantee curves (80/90/99 %) |
//! | [`fig4`]   | Fig. 4  | AR(6) 1 h forecast + smoothing, ε vs naive |
//! | [`fig5`]   | Fig. 5  | risk-free vs equal-share portfolio |
//! | [`fig6`]   | Fig. 6  | price distribution over hour/day/week windows |
//! | [`fig7`]   | Fig. 7  | dual-window approximation vs measured |
//!
//! Extensions of ours: [`ext_sweep`] (funding sweep against fixed
//! background load, validating the Fig. 3 budget advice in vivo),
//! [`ext_volatility`] (the §6 price-predictability debate measured on our
//! Tycoon / G-commerce / WTA implementations), [`ext_scaling`] (§3's
//! weak-scaling claim) and [`ext_vcg`] (the optimization tier of
//! DESIGN.md §14: welfare/revenue/fairness of the VCG welfare-LP policy
//! against Tycoon and every baseline on one SLA workload).
//!
//! [`mc`] runs all of the above as Monte-Carlo populations: the
//! per-policy chaos sweep behind `just mc-chaos` and the seeded figure
//! report behind `just mc-report` (DESIGN.md §13). Every figure module
//! exposes a `run_seeded(scale, seed)` variant for this; the plain
//! `run(scale)` entry points delegate to it with the historical seed, so
//! single-seed outputs are unchanged.
//!
//! Absolute numbers differ from the paper (their testbed was 30 physical
//! machines; ours is a simulator) — the *shapes* are asserted in
//! `tests/experiments.rs` and recorded in `EXPERIMENTS.md`.

pub mod ext_attack;
pub mod ext_scaling;
pub mod ext_sweep;
pub mod ext_vcg;
pub mod ext_volatility;
pub mod mc;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod pricegen;
pub mod table1;
pub mod table2;

/// Experiment scale: `Quick` for CI/benches, `Paper` for the full §5
/// parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Reduced problem sizes (seconds of wall-clock).
    Quick,
    /// The paper's parameters (30 hosts, 212 min chunks, 40 h traces).
    Paper,
}

impl Scale {
    /// Parse from a CLI argument (`--paper` or its `--paper-scale` alias
    /// selects full scale — the latter is what `just mc-report` forwards
    /// for the fig3–fig7 Monte-Carlo batches).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--paper" || a == "--paper-scale") {
            Scale::Paper
        } else {
            Scale::Quick
        }
    }
}
