//! Fig. 6 — Price distribution within three different time windows (§5.4).
//!
//! "Finally, we look at the distribution of prices over three time
//! windows, a week, a day, and an hour. This data can be used to select an
//! appropriate prediction model." The paper's sample graph shows the
//! last-hour distribution concentrated in the lowest bracket while the
//! day/week windows put most mass in the most expensive bracket.

use gm_numeric::stats::Moments;
use gm_predict::window::DualWindowDistribution;

use crate::pricegen::{host0_prices, PriceGenConfig};
use crate::Scale;

/// One window's distribution.
#[derive(Clone, Debug)]
pub struct WindowReport {
    /// Window label ("hour", "day", "week").
    pub label: &'static str,
    /// Window length in samples.
    pub window_samples: u64,
    /// Proportion of prices per bracket.
    pub proportions: Vec<f64>,
    /// Bracket edges.
    pub edges: Vec<(f64, f64)>,
    /// Skewness of the exact window (diagnostic).
    pub skewness: f64,
}

/// Structured result of the Fig. 6 experiment.
#[derive(Clone, Debug)]
pub struct Fig6 {
    /// Hour/day/week reports.
    pub windows: Vec<WindowReport>,
    /// Rendered report.
    pub rendered: String,
}

/// Run the experiment.
pub fn run(scale: Scale) -> Fig6 {
    run_seeded(scale, 0xF166)
}

/// [`run`] with an explicit market seed (Monte-Carlo entry point).
pub fn run_seeded(scale: Scale, seed: u64) -> Fig6 {
    // Sample interval 60 s; windows in samples.
    let (hours, windows): (f64, [(&'static str, u64); 3]) = match scale {
        Scale::Paper => (
            7.0 * 24.0,
            [("hour", 60), ("day", 1440), ("week", 10_080)],
        ),
        Scale::Quick => (6.0, [("10min", 10), ("hour", 60), ("6hours", 360)]),
    };
    let mut cfg = PriceGenConfig::new(hours, seed);
    cfg.interval_secs = 60.0;
    // Shape the workload so recent history differs from the long-run mix:
    // arrivals intensify over the second half via a second generator? The
    // arrival process is homogeneous; the *price dynamics* still make
    // short and long windows differ because batches complete.
    let prices = host0_prices(&cfg);
    assert!(!prices.is_empty());

    let slots = 10usize;
    let reports: Vec<WindowReport> = windows
        .iter()
        .map(|&(label, w)| {
            let mut dist = DualWindowDistribution::new(w, slots, 1e-4);
            for &p in &prices {
                dist.add(p);
            }
            let tail_start = prices.len().saturating_sub(w as usize);
            let exact_window = &prices[tail_start..];
            let skew = Moments::of(exact_window).map(|m| m.skewness).unwrap_or(0.0);
            WindowReport {
                label,
                window_samples: w,
                proportions: dist.proportions(),
                edges: dist.slot_edges(),
                skewness: skew,
            }
        })
        .collect();

    let mut rendered = String::from("Fig 6. Price distribution within three time windows\n");
    for r in &reports {
        rendered.push_str(&format!(
            "window {:<8} ({} samples)  skewness {:+.2}\n  proportions: ",
            r.label, r.window_samples, r.skewness
        ));
        for p in &r.proportions {
            rendered.push_str(&format!("{:.3} ", p));
        }
        rendered.push('\n');
    }

    Fig6 {
        windows: reports,
        rendered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_windows_reported_with_valid_distributions() {
        let f = run(Scale::Quick);
        assert_eq!(f.windows.len(), 3);
        for w in &f.windows {
            let s: f64 = w.proportions.iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "{}: proportions sum {s}", w.label);
            assert_eq!(w.proportions.len(), 10);
            assert_eq!(w.edges.len(), 10);
        }
    }

    #[test]
    fn windows_differ_from_each_other() {
        // The whole point of the figure: different windows expose
        // different distributions.
        let f = run(Scale::Quick);
        let tv = |a: &[f64], b: &[f64]| -> f64 {
            0.5 * a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>()
        };
        let d_short_long = tv(&f.windows[0].proportions, &f.windows[2].proportions);
        assert!(
            d_short_long > 0.02,
            "hour and week windows identical (TV {d_short_long:.4})"
        );
    }

    #[test]
    fn rendered_lists_all_windows() {
        let f = run(Scale::Quick);
        for w in &f.windows {
            assert!(f.rendered.contains(w.label));
        }
    }
}
