//! Regenerate the paper's fig7. Pass `--paper` for full-scale parameters.
fn main() {
    let scale = gm_experiments::Scale::from_args();
    let result = gm_experiments::fig7::run(scale);
    println!("{}", result.rendered);
}
