//! Extension experiment: price predictability comparison. `--paper` for
//! full scale.
fn main() {
    let scale = gm_experiments::Scale::from_args();
    println!("{}", gm_experiments::ext_volatility::run(scale).rendered);
}
