//! `mc` — the Monte-Carlo robustness CLI (DESIGN.md §13).
//!
//! ```text
//! mc chaos  [--seeds N] [--base-seed HEX] [--threads N] [--check]
//! mc report [--seeds N] [--base-seed HEX] [--threads N] [--paper-scale]
//! ```
//!
//! `chaos` runs the per-policy random-fault sweep (Tycoon, the VCG
//! optimization tier, and the four baselines, fanned out as one flat
//! seed × policy batch) and prints Student-t confidence intervals plus
//! every quarantined seed with its replay hint. `--check` turns it into
//! a CI gate: exit 1 unless zero seeds were quarantined and both banked
//! policies' conservation residuals are exactly 0. `report` re-runs the
//! paper's figure experiments as seeded batches; `--paper-scale` (alias
//! `--paper`) runs them at the paper's full §5 parameters instead of the
//! quick CI sizes.

use gm_experiments::mc::{chaos, report, McArgs};
use gm_experiments::Scale;

fn parse_args() -> (String, McArgs, bool) {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mode = argv
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "chaos".to_owned());
    let mut args = McArgs::default();
    let mut check = false;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut next_val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .clone()
        };
        match a.as_str() {
            "--seeds" => args.seeds = next_val("--seeds").parse().expect("--seeds: integer"),
            "--base-seed" => {
                let v = next_val("--base-seed");
                let v = v.trim_start_matches("0x");
                args.base_seed = u64::from_str_radix(v, 16).expect("--base-seed: hex");
            }
            "--threads" => {
                args.threads = next_val("--threads").parse().expect("--threads: integer");
            }
            "--check" => check = true,
            _ => {}
        }
    }
    (mode, args, check)
}

fn main() {
    let (mode, args, check) = parse_args();
    match mode.as_str() {
        "report" => {
            let r = report(Scale::from_args(), args);
            println!("{}", r.rendered);
        }
        "chaos" => {
            let c = chaos(args);
            println!("{}", c.rendered);
            if check {
                let quarantined = c.total_quarantined();
                let residual = c.tycoon_conservation_max().unwrap_or(f64::NAN);
                let vcg_residual = c.conservation_max("vcg").unwrap_or(f64::NAN);
                if quarantined != 0 || residual != 0.0 || vcg_residual != 0.0 {
                    eprintln!(
                        "mc --check FAILED: {quarantined} quarantined seeds, \
                         tycoon conservation residual max {residual}, \
                         vcg conservation residual max {vcg_residual}"
                    );
                    std::process::exit(1);
                }
                println!(
                    "mc --check OK: {} seeds x {} policies, 0 quarantined, conservation residual 0",
                    args.seeds,
                    c.policies.len()
                );
            }
        }
        other => {
            eprintln!("unknown mode {other:?}; use `chaos` or `report`");
            std::process::exit(2);
        }
    }
}
