//! Extension experiment: weak scaling. `--paper` for full scale.
fn main() {
    let scale = gm_experiments::Scale::from_args();
    println!("{}", gm_experiments::ext_scaling::run(scale).rendered);
}
