//! Regenerate the paper's fig4. Pass `--paper` for full-scale parameters.
fn main() {
    let scale = gm_experiments::Scale::from_args();
    let result = gm_experiments::fig4::run(scale);
    println!("{}", result.rendered);
}
