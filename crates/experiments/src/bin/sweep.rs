//! Extension experiment: funding sweep. Pass `--paper` for full scale.
fn main() {
    let scale = gm_experiments::Scale::from_args();
    println!("{}", gm_experiments::ext_sweep::run(scale).rendered);
}
