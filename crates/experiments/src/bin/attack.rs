//! `attack` — the adversarial attack-matrix CLI (DESIGN.md §16).
//!
//! ```text
//! attack [--seeds N] [--base-seed HEX] [--threads N] [--check]
//! ```
//!
//! Runs every *(policy × strategy)* cell of the attack matrix — the six
//! allocation policies (tycoon defended **and** open, the VCG tier, the
//! four baselines) against the six `gm-adversary` bidder strategies —
//! as one flat Monte-Carlo fan-out, and prints the honest-side report.
//!
//! `--check` turns it into the CI gate: exit 1 unless zero runs were
//! quarantined, the honest cohort scored bit-identically with defenses
//! on and off (the false-positive gate), and the guard measurably
//! reduced both volatility and honest-fairness degradation under at
//! least two attack strategies.

use gm_experiments::ext_attack::matrix;
use gm_experiments::mc::McArgs;

fn parse_args() -> (McArgs, bool) {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = McArgs::default();
    let mut check = false;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut next_val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .clone()
        };
        match a.as_str() {
            "--seeds" => args.seeds = next_val("--seeds").parse().expect("--seeds: integer"),
            "--base-seed" => {
                let v = next_val("--base-seed");
                let v = v.trim_start_matches("0x");
                args.base_seed = u64::from_str_radix(v, 16).expect("--base-seed: hex");
            }
            "--threads" => {
                args.threads = next_val("--threads").parse().expect("--threads: integer");
            }
            "--check" => check = true,
            _ => {}
        }
    }
    (args, check)
}

fn main() {
    let (args, check) = parse_args();
    let m = matrix(args);
    println!("{}", m.rendered);
    if check {
        let quarantined = m.total_quarantined();
        let wins = m.defense_wins();
        let honest_gate = ["fairness", "honest_welfare", "volatility", "revenue"]
            .iter()
            .all(|metric| {
                let def = m.mean("tycoon", "honest", metric);
                let open = m.mean("tycoon_open", "honest", metric);
                match (def, open) {
                    (Some(d), Some(o)) => d.to_bits() == o.to_bits(),
                    _ => false,
                }
            });
        if quarantined != 0 || wins.len() < 2 || !honest_gate {
            eprintln!(
                "attack --check FAILED: {quarantined} quarantined runs, \
                 defense wins {wins:?} (need >= 2), honest-cohort gate {honest_gate}"
            );
            std::process::exit(1);
        }
        println!(
            "attack --check OK: {} seeds x {} cells, 0 quarantined, \
             honest cohort bit-identical with defenses on/off, defense wins: {wins:?}",
            args.seeds,
            m.cells.len()
        );
    }
}
