//! Regenerate the paper's fig5. Pass `--paper` for full-scale parameters.
fn main() {
    let scale = gm_experiments::Scale::from_args();
    let result = gm_experiments::fig5::run(scale);
    println!("{}", result.rendered);
}
