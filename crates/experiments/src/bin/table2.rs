//! Regenerate the paper's table2. Pass `--paper` for full-scale parameters.
fn main() {
    let scale = gm_experiments::Scale::from_args();
    let result = gm_experiments::table2::run(scale);
    println!("{}", result.rendered);
}
