//! `vcg` — the optimization-tier comparison (DESIGN.md §14): the VCG
//! welfare-LP policy vs Tycoon and every baseline on the identical SLA
//! workload. Pass `--paper` for full scale.
fn main() {
    let scale = gm_experiments::Scale::from_args();
    println!("{}", gm_experiments::ext_vcg::run(scale).rendered);
}
