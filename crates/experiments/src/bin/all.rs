//! Regenerate every table and figure. Pass `--paper` for full scale.
fn main() {
    let scale = gm_experiments::Scale::from_args();
    println!("{}", gm_experiments::table1::run(scale).rendered);
    println!("{}", gm_experiments::table2::run(scale).rendered);
    println!("{}", gm_experiments::fig3::run(scale).rendered);
    println!("{}", gm_experiments::fig4::run(scale).rendered);
    println!("{}", gm_experiments::fig5::run(scale).rendered);
    println!("{}", gm_experiments::fig6::run(scale).rendered);
    println!("{}", gm_experiments::fig7::run(scale).rendered);
    println!("{}", gm_experiments::ext_sweep::run(scale).rendered);
    println!("{}", gm_experiments::ext_volatility::run(scale).rendered);
    println!("{}", gm_experiments::ext_scaling::run(scale).rendered);
    println!("{}", gm_experiments::ext_vcg::run(scale).rendered);
}
