//! Extension experiment: funding sweep.
//!
//! Not a paper figure — an in-vivo check of the §4.2 story: Fig. 3 tells a
//! user what to *expect* for a budget; this experiment measures what a
//! budget actually *buys* when a job competes against a fixed background
//! load. Completion time should fall (and hourly cost rise) monotonically
//! with funding, saturating once the job owns ~full shares of its hosts.

use gridmarket::scenario::{Scenario, UserSetup};
use gridmarket::UserReport;

use crate::Scale;

/// One sweep point.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// The target user's token funding.
    pub funding: f64,
    /// The target user's outcome.
    pub report: UserReport,
}

/// Structured result.
#[derive(Clone, Debug)]
pub struct Sweep {
    /// Sweep points in increasing funding order.
    pub points: Vec<SweepPoint>,
    /// Rendered report.
    pub rendered: String,
}

/// Funding levels swept.
pub fn fundings(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Paper => vec![10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0],
        Scale::Quick => vec![20.0, 100.0, 500.0],
    }
}

/// Run the sweep: the target user (submitted last) vs four fixed
/// 100-credit background users.
pub fn run(scale: Scale) -> Sweep {
    run_seeded(scale, 0x5EEB)
}

/// [`run`] with an explicit scenario seed (Monte-Carlo entry point).
pub fn run_seeded(scale: Scale, seed: u64) -> Sweep {
    let points: Vec<SweepPoint> = fundings(scale)
        .into_iter()
        .map(|funding| {
            let mut s = match scale {
                Scale::Paper => Scenario::builder()
                    .seed(seed)
                    .hosts(30)
                    .chunk_minutes(212.0)
                    .deadline_minutes(330)
                    .horizon_hours(48),
                Scale::Quick => Scenario::builder()
                    .seed(seed)
                    .hosts(8)
                    .chunk_minutes(8.0)
                    .deadline_minutes(60)
                    .horizon_hours(8),
            };
            let subjobs = crate::table1::subjobs(scale);
            for i in 0..4 {
                s = s.user(
                    UserSetup::new(100.0)
                        .subjobs(subjobs)
                        .label(&format!("bg{}", i + 1)),
                );
            }
            s = s.user(UserSetup::new(funding).subjobs(subjobs).label("target"));
            let result = s.run().expect("sweep scenario");
            SweepPoint {
                funding,
                report: result.users.last().expect("target user").clone(),
            }
        })
        .collect();

    let mut rendered = String::from("Extension: funding sweep (target user vs 4x100-credit background)\n");
    rendered.push_str("funding   time(h)  cost($/h)  latency(min)  nodes  done\n");
    for p in &points {
        rendered.push_str(&format!(
            "{:>7.0} {:>8.2} {:>10.2} {:>13.2} {:>6} {:>4}/{}\n",
            p.funding,
            p.report.time_hours,
            p.report.cost_per_hour,
            p.report.latency_min_per_job,
            p.report.nodes,
            p.report.completed_subjobs,
            p.report.subjobs,
        ));
    }
    Sweep { points, rendered }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_grid::JobPhase;

    #[test]
    fn more_funding_never_hurts_completion_time() {
        let sweep = run(Scale::Quick);
        assert_eq!(sweep.points.len(), 3);
        let done: Vec<&SweepPoint> = sweep
            .points
            .iter()
            .filter(|p| p.report.phase == JobPhase::Done)
            .collect();
        assert!(done.len() >= 2, "most sweep points should complete");
        for w in done.windows(2) {
            assert!(
                w[1].report.time_hours <= w[0].report.time_hours * 1.15,
                "funding {} slower than {}: {:.2} vs {:.2} h",
                w[1].funding,
                w[0].funding,
                w[1].report.time_hours,
                w[0].report.time_hours
            );
        }
    }

    #[test]
    fn hourly_cost_rises_with_funding() {
        let sweep = run(Scale::Quick);
        let first = &sweep.points.first().unwrap().report;
        let last = &sweep.points.last().unwrap().report;
        assert!(
            last.cost_per_hour >= first.cost_per_hour,
            "{} vs {}",
            last.cost_per_hour,
            first.cost_per_hour
        );
    }
}
