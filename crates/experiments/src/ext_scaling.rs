//! Extension experiment: cluster scaling.
//!
//! §3 closes with "we therefore believe that this model will scale well as
//! the number of compute nodes and virtual machines on these compute nodes
//! increase." We measure it: double the hosts *and* the offered load
//! together (weak scaling) and check that per-user makespans stay flat
//! while total delivered work doubles.

use gridmarket::scenario::{Scenario, UserSetup};

use crate::Scale;

/// One scaling point.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// Number of hosts.
    pub hosts: u32,
    /// Number of users (scaled with hosts).
    pub users: u32,
    /// Worst per-user makespan (hours).
    pub makespan_hours: f64,
    /// Total sub-jobs completed.
    pub completed: usize,
    /// All jobs done?
    pub all_done: bool,
}

/// Structured result.
#[derive(Clone, Debug)]
pub struct Scaling {
    /// Points in increasing cluster size.
    pub points: Vec<ScalePoint>,
    /// Rendered report.
    pub rendered: String,
}

/// Run the weak-scaling sweep.
pub fn run(scale: Scale) -> Scaling {
    let configs: Vec<(u32, u32)> = match scale {
        // (hosts, users): load per host constant at 1 user per 2 hosts.
        Scale::Paper => vec![(10, 5), (20, 10), (40, 20)],
        Scale::Quick => vec![(4, 2), (8, 4), (16, 8)],
    };
    let (chunk_minutes, deadline, subjobs) = match scale {
        Scale::Paper => (60.0, 240, 8u32),
        Scale::Quick => (6.0, 60, 3u32),
    };

    let points: Vec<ScalePoint> = configs
        .into_iter()
        .map(|(hosts, users)| {
            let mut s = Scenario::builder()
                .seed(0x5CA1E)
                .hosts(hosts)
                .chunk_minutes(chunk_minutes)
                .deadline_minutes(deadline)
                .horizon_hours(12);
            for i in 0..users {
                s = s.user(
                    UserSetup::new(100.0)
                        .subjobs(subjobs)
                        .label(&format!("u{i}")),
                );
            }
            let r = s.run().expect("scaling scenario");
            ScalePoint {
                hosts,
                users,
                makespan_hours: r.users.iter().map(|u| u.time_hours).fold(0.0, f64::max),
                completed: r.users.iter().map(|u| u.completed_subjobs).sum(),
                all_done: r.all_done(),
            }
        })
        .collect();

    let mut rendered = String::from(
        "Extension: weak scaling (load grows with the cluster; flat makespan = scales)\n",
    );
    rendered.push_str("hosts  users  makespan(h)  completed  all-done\n");
    for p in &points {
        rendered.push_str(&format!(
            "{:>5} {:>6} {:>12.2} {:>10} {:>9}\n",
            p.hosts, p.users, p.makespan_hours, p.completed, p.all_done
        ));
    }
    Scaling { points, rendered }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_scaling_keeps_makespans_flat() {
        let s = run(Scale::Quick);
        assert_eq!(s.points.len(), 3);
        for p in &s.points {
            assert!(p.all_done, "{}-host point did not finish", p.hosts);
        }
        let base = s.points[0].makespan_hours;
        for p in &s.points[1..] {
            assert!(
                p.makespan_hours < base * 1.5,
                "makespan blew up at {} hosts: {:.2} vs {:.2} h",
                p.hosts,
                p.makespan_hours,
                base
            );
        }
    }

    #[test]
    fn completed_work_scales_with_cluster() {
        let s = run(Scale::Quick);
        assert!(s.points[2].completed >= s.points[0].completed * 3);
    }
}
