//! Extension: the adversarial attack matrix (DESIGN.md §16).
//!
//! Every cell of the matrix is a Monte-Carlo batch over seeds of one
//! *(policy × strategy)* pair: the honest chaos job stream plus one
//! strategic cohort from `gm-adversary`, both driven through the
//! unchanged [`PolicyDriver`] so the allocator is the only variable.
//! Tycoon appears twice — `tycoon` with the default guard layer
//! (rate limiter, price-band circuit breaker, quarantine) and
//! `tycoon_open` with the guard disabled — so the matrix separates what
//! the *market* absorbs from what the *defenses* absorb.
//!
//! Metrics are scored from the honest population's side of the run
//! (user ids below [`gm_adversary::ADVERSARY_USER_BASE`]): an attack that transfers
//! surplus from honest users to the cohort shows up as lost honest
//! welfare and degraded honest fairness even when aggregate numbers look
//! healthy. Volatility for the tycoon rows is computed over the
//! *published* price trace — the external signal the circuit breaker
//! actually defends; charging and allocation always see the raw spot.
//! All volatility rows use absolute σ, not relative CoV (see
//! [`abs_sigma`]).

use gm_adversary::{AdversaryInstruments, AttackContext, AttackKind};
use gm_baselines::{FifoPolicy, GCommerceMarket, Placement, SharePolicy, WinnerTakesAllMarket};
use gm_des::rng::Pcg32;
use gm_des::{FaultPlan, SimDuration, SimTime};
use gm_grid::{AgentConfig, JobManager, VmConfig};
use gm_tycoon::{GuardConfig, HostSpec, Market};
use gridmarket::sched::{
    jain_fairness, seed_stream, AllocationPolicy, JobRequest, McBatch, McOutcome, McReport,
    PolicyDriver, RunResult, ScenarioFailure,
};
use gridmarket::telemetry::{ManualClock, Registry};
use gridmarket::{chaos_runner, ChaosConfig, TycoonPolicy};

use crate::mc::{job_stream, McArgs};

/// Domain-separation salt for the strategy RNG: the cohort's random
/// draws must not correlate with the fault plan generated from the same
/// seed.
const ATTACK_SALT: u64 = 0xA77A_C0DE;

/// War-chest multiplier for the matrix: hostile budgets are sized at
/// `aggression × honest funding`, concentrated enough that the hoarding
/// and shill strategies cross the guard's 1 credit/s per-bid cap within
/// a few re-bid escalations.
const AGGRESSION: f64 = 8.0;

/// The policy roster of the matrix, report order. `tycoon` runs the
/// default guard; `tycoon_open` is the same market with defenses off.
pub const ATTACK_POLICIES: [&str; 7] =
    ["tycoon", "tycoon_open", "vcg", "fifo", "share", "gcommerce", "wta"];

/// The chaos world the matrix runs in: the default chaos distribution
/// plus two seeded adversary-cohort arrivals per run.
pub fn attack_cfg() -> ChaosConfig {
    ChaosConfig {
        adversary_arrivals: 2,
        ..ChaosConfig::default()
    }
}

/// The strategic cohort for `(kind, seed)`: context derived from the
/// chaos config, arrivals from the seed's fault plan, randomness from a
/// salted stream — byte-identical for every policy that faces it.
fn hostile_stream(kind: AttackKind, seed: u64, cfg: &ChaosConfig) -> Vec<JobRequest> {
    let plan = FaultPlan::generate(seed, cfg.fault_gen());
    let workload = gm_bio::workload::BioWorkload {
        subjobs: cfg.subjobs,
        chunk_minutes: cfg.chunk_minutes,
        deadline_minutes: cfg.deadline_minutes,
    };
    // Unloaded honest batch makespan: each host runs its share of the
    // honest sub-jobs back to back at full speed. Strategies time their
    // strikes inside this window.
    let waves = (cfg.users * cfg.subjobs).div_ceil(cfg.hosts.max(1));
    let makespan = f64::from(waves) * cfg.chunk_minutes * 60.0;
    let ctx = AttackContext {
        hosts: cfg.hosts,
        honest_users: cfg.users,
        honest_funding: cfg.funding,
        honest_deadline_secs: cfg.deadline_minutes as f64 * 60.0,
        honest_makespan_secs: makespan,
        work_per_subjob: workload.work_mhz_secs_per_subjob(),
        subjobs: cfg.subjobs,
        horizon: SimTime::ZERO + SimDuration::from_hours(cfg.horizon_hours),
        arrivals: AttackContext::arrivals_from(&plan),
        job_id_base: cfg.users,
        aggression: AGGRESSION,
    };
    kind.strategy().requests(&ctx, &mut Pcg32::seed_from_u64(seed ^ ATTACK_SALT))
}

/// Absolute price volatility: the plain standard deviation of a price
/// series in credits/second. Deliberately *not* the coefficient of
/// variation ([`gm_core::metrics::price_volatility`]): a sustained
/// attack inflates the mean price by orders of magnitude, which *lowers*
/// relative CoV and would score a price wall as "calmer" than an idle
/// market. Absolute σ scores exactly what the circuit breaker defends —
/// the size of excursions in the published signal.
fn abs_sigma(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
    Some(var.sqrt())
}

/// Honest-side metric rows shared by every cell. The split keys on the
/// request id — honest requests occupy ids `0..users`, the cohort ids
/// start at `job_id_base = users` (the cohort's *user* ids start at
/// [`gm_adversary::ADVERSARY_USER_BASE`], but some policies renumber users internally
/// while every policy preserves request ids in its outcomes).
/// `volatility` is passed in because the tycoon rows score the published
/// price trace while the baselines score their own posted-price history.
fn honest_rows(r: &RunResult, honest_jobs: u32, volatility: f64) -> Vec<(&'static str, f64)> {
    let honest: Vec<_> = r.outcomes.iter().filter(|o| o.id < honest_jobs).collect();
    let missed = honest
        .iter()
        .filter(|o| o.finished_at.is_none() || o.value <= 0.0)
        .count();
    let adversary_nodes: f64 = r
        .outcomes
        .iter()
        .filter(|o| o.id >= honest_jobs)
        .map(|o| o.avg_nodes)
        .sum();
    // Fairness over the honest users' realized on-time *value* (equal
    // budgets, so this is value-per-credit). Node counts are blind here:
    // a starved job keeps its VMs attached (4 "nodes") while receiving
    // ~0 CPU share, so a Jain index over `avg_nodes` reads a total stall
    // as perfectly fair. And rate metrics (value per makespan second)
    // punish the *defended* market for staggered-but-successful
    // finishes. Realized value scores exactly what the user cares
    // about — who got what they paid for: everyone on time → 1.0, a
    // price wall that makes one user miss a deadline the others squeaked
    // past → 0.667 for three users.
    let realized: Vec<f64> = honest.iter().map(|o| o.value).collect();
    vec![
        ("fairness", jain_fairness(&realized)),
        ("honest_welfare", honest.iter().map(|o| o.value).sum()),
        (
            "honest_miss_rate",
            missed as f64 / honest.len().max(1) as f64,
        ),
        ("adversary_nodes", adversary_nodes),
        ("volatility", volatility),
        ("revenue", r.revenue()),
    ]
}

/// One tycoon cell: market + guard config, honest stream plus cohort,
/// scored from the honest side. Also the only cell with live telemetry —
/// the `adversary.*` cohort counters and the guard's own `market.guard.*`
/// counters ride the same registry.
fn tycoon_cell(
    kind: AttackKind,
    guard: GuardConfig,
    seed: u64,
    cfg: &ChaosConfig,
) -> Vec<(&'static str, f64)> {
    let hosts: Vec<HostSpec> =
        gridmarket::scenario::jittered_hosts(seed, cfg.hosts, cfg.heterogeneity);
    let registry = Registry::new();
    let clock = ManualClock::new();
    let mut market = Market::new(&seed.to_be_bytes());
    market.set_interval_secs(10.0);
    market.set_guard(guard);
    market.attach_telemetry(&registry, std::sync::Arc::new(clock.clone()));
    for h in &hosts {
        market.add_host(h.clone());
    }
    let jm = JobManager::new(&mut market, AgentConfig::default(), VmConfig::default());
    let mut policy = TycoonPolicy::new(market, jm).with_clock(clock);

    let mut jobs = job_stream(cfg);
    let cohort = hostile_stream(kind, seed, cfg);
    let pairs = if kind == AttackKind::ShillPair { cohort.len() / 3 } else { 0 };
    AdversaryInstruments::new(&registry).record_cohort(cohort.len(), pairs);
    jobs.extend(cohort);

    let r = PolicyDriver::new(hosts, 10.0)
        .horizon(SimTime::ZERO + SimDuration::from_hours(cfg.horizon_hours))
        .faults(FaultPlan::generate(seed, cfg.fault_gen()))
        .with_registry(&registry)
        .run(&mut policy, &jobs)
        .expect("valid attack job stream");

    // Volatility over the *published* (breaker-damped) per-host price
    // trace — the signal external consumers actually see.
    let mut vols: Vec<f64> = Vec::new();
    for (_, series) in policy.market().price_trace().iter() {
        if let Some(v) = abs_sigma(series.values()) {
            vols.push(v);
        }
    }
    let volatility = if vols.is_empty() {
        0.0
    } else {
        vols.iter().sum::<f64>() / vols.len() as f64
    };
    let audit = policy.market().audit_ledger();
    assert!(
        audit.ok(),
        "conservation violated under attack (seed {seed:#x}, strategy {}): {audit:?}",
        kind.name()
    );
    let quarantined = policy.market().guard().quarantined_accounts().len();
    let mut rows = vec![("quarantined", quarantined as f64)];
    rows.extend(honest_rows(&r, cfg.users, volatility));
    rows
}

/// One baseline cell: the identical honest + cohort stream through a
/// guard-less policy tier.
fn baseline_cell(
    policy: &'static str,
    kind: AttackKind,
    seed: u64,
    cfg: &ChaosConfig,
) -> Vec<(&'static str, f64)> {
    let mut boxed: Box<dyn AllocationPolicy + Send> = match policy {
        "vcg" => Box::new(gm_optimal::VcgSlaPolicy::new(seed)),
        "fifo" => Box::new(FifoPolicy::default()),
        "share" => Box::new(SharePolicy::new(Placement::LeastLoaded)),
        "gcommerce" => Box::new(GCommerceMarket::default().policy()),
        "wta" => Box::new(WinnerTakesAllMarket::default().policy()),
        other => unreachable!("unknown attack policy {other}"),
    };
    let hosts: Vec<HostSpec> =
        gridmarket::scenario::jittered_hosts(seed, cfg.hosts, cfg.heterogeneity);
    let mut jobs = job_stream(cfg);
    jobs.extend(hostile_stream(kind, seed, cfg));
    let r = PolicyDriver::new(hosts, 10.0)
        .horizon(SimTime::ZERO + SimDuration::from_hours(cfg.horizon_hours))
        .faults(FaultPlan::generate(seed, cfg.fault_gen()))
        .run(boxed.as_mut(), &jobs)
        .expect("valid attack job stream");
    let prices: Vec<f64> = r.price_history.iter().map(|(_, p)| *p).collect();
    let volatility = abs_sigma(&prices).unwrap_or(0.0);
    honest_rows(&r, cfg.users, volatility)
}

/// One *(policy × strategy)* cell for one seed.
fn attack_cell(
    policy: &'static str,
    kind: AttackKind,
    seed: u64,
    cfg: &ChaosConfig,
) -> Vec<(&'static str, f64)> {
    match policy {
        "tycoon" => tycoon_cell(kind, GuardConfig::default(), seed, cfg),
        "tycoon_open" => tycoon_cell(kind, GuardConfig::disabled(), seed, cfg),
        other => baseline_cell(other, kind, seed, cfg),
    }
}

/// One cell of the finished matrix: a Student-t report over the seeds.
#[derive(Clone, Debug)]
pub struct AttackCell {
    /// Policy row (`tycoon`, `tycoon_open`, the baselines).
    pub policy: &'static str,
    /// Strategy column (see [`AttackKind`]).
    pub strategy: &'static str,
    /// Report over the completed seeds.
    pub report: McReport,
    /// Quarantined Monte-Carlo failures (seed, panic, replay hint).
    pub failures: Vec<ScenarioFailure>,
}

/// The finished attack matrix.
#[derive(Clone, Debug)]
pub struct AttackMatrix {
    /// All cells, policy-major in roster order.
    pub cells: Vec<AttackCell>,
    /// Rendered report.
    pub rendered: String,
}

impl AttackMatrix {
    /// Look up one cell.
    pub fn cell(&self, policy: &str, strategy: &str) -> Option<&AttackCell> {
        self.cells
            .iter()
            .find(|c| c.policy == policy && c.strategy == strategy)
    }

    /// A cell's mean for `metric`.
    pub fn mean(&self, policy: &str, strategy: &str, metric: &str) -> Option<f64> {
        self.cell(policy, strategy)
            .and_then(|c| c.report.metric(metric))
            .map(|s| s.mean)
    }

    /// Total quarantined Monte-Carlo runs (panics) across all cells.
    pub fn total_quarantined(&self) -> usize {
        self.cells.iter().map(|c| c.failures.len()).sum()
    }

    /// Attack strategies where the guard layer *measurably* helps: the
    /// defended tycoon shows strictly lower published-price volatility
    /// **and** strictly smaller honest-fairness degradation (relative to
    /// each market's own honest baseline) than the open market.
    pub fn defense_wins(&self) -> Vec<&'static str> {
        let base_def = self.mean("tycoon", "honest", "fairness").unwrap_or(1.0);
        let base_open = self.mean("tycoon_open", "honest", "fairness").unwrap_or(1.0);
        AttackKind::ALL
            .iter()
            .filter(|k| **k != AttackKind::Honest)
            .filter(|k| {
                let s = k.name();
                let (Some(vol_def), Some(vol_open)) = (
                    self.mean("tycoon", s, "volatility"),
                    self.mean("tycoon_open", s, "volatility"),
                ) else {
                    return false;
                };
                let (Some(fair_def), Some(fair_open)) = (
                    self.mean("tycoon", s, "fairness"),
                    self.mean("tycoon_open", s, "fairness"),
                ) else {
                    return false;
                };
                vol_def < vol_open && (base_def - fair_def) < (base_open - fair_open)
            })
            .map(|k| k.name())
            .collect()
    }
}

/// Run a sub-matrix: `policies × strategies`, all cells through one flat
/// tagged Monte-Carlo fan-out, regrouped per cell afterwards.
pub fn matrix_with(
    args: McArgs,
    policies: &[&'static str],
    strategies: &[AttackKind],
) -> AttackMatrix {
    let cfg = attack_cfg();
    let seeds = seed_stream(args.base_seed, args.seeds);
    let mc = chaos_runner(args.threads).confidence(args.confidence);

    let tags: Vec<(&'static str, AttackKind)> = policies
        .iter()
        .flat_map(|&p| strategies.iter().map(move |&k| (p, k)))
        .collect();
    let items: Vec<(u64, (&'static str, AttackKind))> = seeds
        .iter()
        .flat_map(|&s| tags.iter().map(move |&t| (s, t)))
        .collect();
    let batch = {
        let cfg = cfg.clone();
        mc.run_tagged(&items, move |seed, &(policy, kind)| {
            attack_cell(policy, kind, seed, &cfg)
        })
    };

    type CellRows = Vec<(&'static str, f64)>;
    let n = tags.len();
    let confidence = batch.confidence();
    let mut grouped: Vec<Vec<McOutcome<CellRows>>> = (0..n).map(|_| Vec::new()).collect();
    for o in batch.outcomes {
        let cell = o.index % n;
        let seed_index = o.index / n;
        grouped[cell].push(McOutcome {
            seed: o.seed,
            index: seed_index,
            result: o.result.map_err(|mut f| {
                f.index = seed_index;
                f
            }),
        });
    }
    // Regroup policy-major: cells of one policy stay adjacent in the
    // report regardless of the fan-out interleaving.
    let cells: Vec<AttackCell> = grouped
        .into_iter()
        .zip(tags)
        .map(|(outcomes, (policy, kind))| {
            let b = McBatch::from_outcomes(outcomes, confidence);
            AttackCell {
                policy,
                strategy: kind.name(),
                report: b.report(Clone::clone),
                failures: b.failures().cloned().collect(),
            }
        })
        .collect();

    let mut rendered = format!(
        "Adversarial attack matrix: {} seeds (base {:#x}), {} threads\n\
         world: {} hosts, {} honest users x {} credits, aggression {}x, 2 cohort arrivals/run\n\
         tycoon = default guard (DESIGN.md \u{a7}16), tycoon_open = defenses disabled\n\n",
        args.seeds, args.base_seed, args.threads, cfg.hosts, cfg.users, cfg.funding, AGGRESSION
    );
    rendered.push_str(&format!(
        "{:<14} {:<18} {:>9} {:>11} {:>9} {:>10} {:>9}\n",
        "policy", "strategy", "fairness", "welfare", "miss", "volatility", "advnodes"
    ));
    for c in &cells {
        let m = |name: &str| c.report.metric(name).map(|s| s.mean).unwrap_or(f64::NAN);
        rendered.push_str(&format!(
            "{:<14} {:<18} {:>9.3} {:>11.2} {:>9.3} {:>10.4} {:>9.3}\n",
            c.policy,
            c.strategy,
            m("fairness"),
            m("honest_welfare"),
            m("honest_miss_rate"),
            m("volatility"),
            m("adversary_nodes"),
        ));
        for f in &c.failures {
            rendered.push_str(&format!("  QUARANTINED {f}\n"));
        }
    }
    AttackMatrix { cells, rendered }
}

/// The full attack matrix: every policy row against every strategy
/// column (`just attack-matrix`).
pub fn matrix(args: McArgs) -> AttackMatrix {
    matrix_with(args, &ATTACK_POLICIES, &AttackKind::ALL)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> McArgs {
        McArgs {
            seeds: 3,
            base_seed: 0xA77AC,
            threads: 4,
            confidence: 0.95,
        }
    }

    /// The tycoon-only duel behind the acceptance criterion, small
    /// enough for the test suite.
    fn duel(strategies: &[AttackKind]) -> AttackMatrix {
        let mut with_honest = vec![AttackKind::Honest];
        with_honest.extend_from_slice(strategies);
        matrix_with(tiny(), &["tycoon", "tycoon_open"], &with_honest)
    }

    #[test]
    fn defenses_reduce_volatility_and_fairness_degradation_under_attack() {
        let m = duel(&[AttackKind::BudgetHoard, AttackKind::ShillPair]);
        assert_eq!(m.total_quarantined(), 0, "{}", m.rendered);
        let wins = m.defense_wins();
        assert!(
            wins.contains(&"budget_hoard") && wins.contains(&"shill_pair"),
            "defenses must win on both attack strategies, got {wins:?}\n{}",
            m.rendered
        );
        // The attacks actually fire: the defended market quarantines the
        // hoarder and the shill while the open market lets them through,
        // and the welfare/deadline damage lands only on the open market.
        for s in ["budget_hoard", "shill_pair"] {
            assert!(
                m.mean("tycoon", s, "quarantined").unwrap_or(0.0) > 0.0,
                "guard must quarantine under {s}\n{}",
                m.rendered
            );
            assert_eq!(
                m.mean("tycoon_open", s, "quarantined"),
                Some(0.0),
                "open market never quarantines"
            );
            let welfare_def = m.mean("tycoon", s, "honest_welfare").unwrap_or(0.0);
            let welfare_open = m.mean("tycoon_open", s, "honest_welfare").unwrap_or(0.0);
            assert!(
                welfare_def > welfare_open,
                "defenses must preserve honest welfare under {s}: \
                 {welfare_def} vs {welfare_open}\n{}",
                m.rendered
            );
            let miss_def = m.mean("tycoon", s, "honest_miss_rate").unwrap_or(1.0);
            let miss_open = m.mean("tycoon_open", s, "honest_miss_rate").unwrap_or(0.0);
            assert!(
                miss_def < miss_open,
                "defenses must cut honest deadline misses under {s}: \
                 {miss_def} vs {miss_open}\n{}",
                m.rendered
            );
        }
    }

    #[test]
    fn honest_cohort_runs_identically_with_defenses_on_and_off() {
        // False-positive gate: with only honest bidders (including the
        // honest-baseline cohort), the guard's thresholds are never
        // reached and the defended market's metrics match the open
        // market's bit for bit.
        let m = duel(&[]);
        assert_eq!(m.total_quarantined(), 0, "{}", m.rendered);
        let def = m.cell("tycoon", "honest").expect("defended honest cell");
        let open = m.cell("tycoon_open", "honest").expect("open honest cell");
        for name in [
            "fairness",
            "honest_welfare",
            "honest_miss_rate",
            "adversary_nodes",
            "volatility",
            "revenue",
        ] {
            let d = def.report.metric(name).expect(name);
            let o = open.report.metric(name).expect(name);
            assert_eq!(d.mean.to_bits(), o.mean.to_bits(), "metric {name} drifted");
            assert_eq!(d.max.to_bits(), o.max.to_bits(), "metric {name} drifted");
        }
        assert_eq!(m.mean("tycoon", "honest", "quarantined"), Some(0.0));
    }

    #[test]
    fn matrix_is_deterministic_across_thread_counts() {
        let strategies = [AttackKind::Honest, AttackKind::ZeroIntelligence];
        let a = matrix_with(McArgs { threads: 1, ..tiny() }, &["tycoon", "fifo"], &strategies);
        let b = matrix_with(McArgs { threads: 4, ..tiny() }, &["tycoon", "fifo"], &strategies);
        let strip = |s: &str| s.split_once('\n').map(|(_, rest)| rest.to_owned()).unwrap_or_default();
        assert_eq!(strip(&a.rendered), strip(&b.rendered));
    }

    #[test]
    fn every_policy_survives_every_strategy() {
        // One seed across the full roster: no policy may crash or leak
        // money when the hostile stream hits it.
        let args = McArgs { seeds: 1, ..tiny() };
        let m = matrix(args);
        assert_eq!(m.total_quarantined(), 0, "{}", m.rendered);
        assert_eq!(m.cells.len(), ATTACK_POLICIES.len() * AttackKind::ALL.len());
        for c in &m.cells {
            assert_eq!(c.report.completed, 1, "cell {}/{}", c.policy, c.strategy);
            assert!(c.report.metric("fairness").is_some());
        }
    }
}
