//! Monte-Carlo robustness experiments (DESIGN.md §13).
//!
//! Two entry points, both built on [`gridmarket::sched::MonteCarlo`]:
//!
//! * [`chaos`] — the 1000-seed chaos sweep behind `just mc-chaos`: every
//!   seed deterministically generates a random [`FaultPlan`] world and
//!   runs the *same* job stream through every allocation policy (Tycoon
//!   market, the VCG optimization tier and the four baselines) via the
//!   shared `PolicyDriver`, then reports per-policy Student-t confidence
//!   intervals plus the quarantined failing seeds with replay hints. The
//!   whole sweep is one flat *(seed × policy)* fan-out over the worker
//!   pool ([`MonteCarlo::run_tagged`](gridmarket::sched::MonteCarlo)) —
//!   a slow policy on one seed no longer serializes the other five —
//!   regrouped per policy afterwards, byte-identical at any thread
//!   count.
//! * [`report`] — `just mc-report`: re-expresses the paper's figure
//!   experiments (Fig. 3–7, the funding sweep, the volatility
//!   comparison) as seeded Monte-Carlo batches, so each headline scalar
//!   ships with an interval instead of a single-seed point estimate.

use gm_baselines::{FifoPolicy, GCommerceMarket, Placement, SharePolicy, WinnerTakesAllMarket};
use gm_bio::workload::BioWorkload;
use gm_des::{FaultPlan, SimDuration, SimTime};
use gm_tycoon::{HostSpec, UserId};
use gridmarket::sched::{
    seed_stream, AllocationPolicy, JobRequest, McBatch, McOutcome, McReport, PolicyDriver,
    RunResult, ScenarioFailure,
};
use gridmarket::{chaos_runner, chaos_scenario, ChaosConfig};

use crate::Scale;

/// Parameters of one Monte-Carlo sweep.
#[derive(Clone, Copy, Debug)]
pub struct McArgs {
    /// Number of scenario seeds.
    pub seeds: usize,
    /// Base seed the per-scenario seed stream is derived from.
    pub base_seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Confidence level of the reported intervals.
    pub confidence: f64,
}

impl Default for McArgs {
    fn default() -> McArgs {
        McArgs {
            seeds: 64,
            base_seed: 0xC4A05,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            confidence: 0.95,
        }
    }
}

/// One policy's slice of the chaos sweep.
#[derive(Clone, Debug)]
pub struct PolicyChaos {
    /// Policy name (driver-registered).
    pub policy: &'static str,
    /// Student-t report over the completed seeds.
    pub report: McReport,
    /// Quarantined failures (seed, panic, replay hint).
    pub failures: Vec<ScenarioFailure>,
}

/// Structured result of the per-policy chaos sweep.
#[derive(Clone, Debug)]
pub struct McChaos {
    /// Per-policy reports, Tycoon first.
    pub policies: Vec<PolicyChaos>,
    /// Rendered report.
    pub rendered: String,
}

impl McChaos {
    /// Total quarantined scenarios across all policies.
    pub fn total_quarantined(&self) -> usize {
        self.policies.iter().map(|p| p.failures.len()).sum()
    }

    /// A policy's conservation-residual column max (banked policies —
    /// `tycoon` and `vcg` — only; the invariant says exactly 0).
    pub fn conservation_max(&self, policy: &str) -> Option<f64> {
        self.policies
            .iter()
            .find(|p| p.policy == policy)
            .and_then(|p| p.report.metric("conservation_residual"))
            .map(|s| s.max)
    }

    /// The Tycoon conservation residual column (the invariant: max 0).
    pub fn tycoon_conservation_max(&self) -> Option<f64> {
        self.conservation_max("tycoon")
    }
}

/// The job stream every baseline runs under — byte-for-byte the stream
/// [`ChaosConfig::scenario`] builds internally (same stagger, work,
/// budgets), so the only experimental variable is the policy.
pub(crate) fn job_stream(cfg: &ChaosConfig) -> Vec<JobRequest> {
    let workload = BioWorkload {
        subjobs: cfg.subjobs,
        chunk_minutes: cfg.chunk_minutes,
        deadline_minutes: cfg.deadline_minutes,
    };
    (0..cfg.users)
        .map(|i| JobRequest {
            id: i,
            user: UserId(i + 1),
            subjobs: cfg.subjobs,
            work_per_subjob: workload.work_mhz_secs_per_subjob(),
            arrival: SimTime::ZERO + SimDuration::from_secs(30 * (u64::from(i) + 1)),
            budget: cfg.funding,
            deadline_secs: cfg.deadline_minutes as f64 * 60.0,
        })
        .collect()
}

/// Run one baseline policy under the seed's generated fault plan, on the
/// seed's jittered hardware — the *identical* world the Tycoon scenario
/// sees, policy being the only variable. (Capacity-oblivious baselines
/// ignore the delivered fault events by design; the heterogeneity still
/// gives every seed a distinct world.)
fn baseline_run(policy: &mut dyn AllocationPolicy, seed: u64, cfg: &ChaosConfig) -> RunResult {
    let hosts: Vec<HostSpec> =
        gridmarket::scenario::jittered_hosts(seed, cfg.hosts, cfg.heterogeneity);
    let jobs = job_stream(cfg);
    PolicyDriver::new(hosts, 10.0)
        .horizon(SimTime::ZERO + SimDuration::from_hours(cfg.horizon_hours))
        .faults(FaultPlan::generate(seed, cfg.fault_gen()))
        .run(policy, &jobs)
        .expect("valid chaos job stream")
}

/// The metric row shared by every bankless policy (no conservation
/// column; the names must be identical across seeds, not across
/// policies). Welfare and revenue come from the shared value model
/// ([`gm_core::workload::on_time_value`]), so the columns compare
/// directly across every policy in the sweep.
fn baseline_rows(r: &RunResult) -> Vec<(&'static str, f64)> {
    let nodes: Vec<f64> = r.outcomes.iter().map(|o| o.avg_nodes).collect();
    let missed = r.outcomes.iter().filter(|o| o.finished_at.is_none()).count();
    vec![
        ("fairness", gridmarket::sched::jain_fairness(&nodes)),
        ("volatility", r.price_volatility().unwrap_or(0.0)),
        (
            "deadline_miss_rate",
            missed as f64 / r.outcomes.len().max(1) as f64,
        ),
        ("makespan_hours", r.batch_makespan_secs() / 3600.0),
        ("welfare", r.welfare()),
        ("revenue", r.revenue()),
    ]
}

/// Run the VCG optimization tier under the seed's chaos world and score
/// it. Like [`chaos_scenario`], a conservation violation **panics** —
/// the VCG bank settles through the same journaled [`gm_tycoon::Bank`]
/// machinery, so the sweep holds it to the identical exactly-zero
/// residual invariant.
fn vcg_chaos_run(seed: u64, cfg: &ChaosConfig) -> Vec<(&'static str, f64)> {
    let mut policy = gm_optimal::VcgSlaPolicy::new(seed);
    let r = baseline_run(&mut policy, seed, cfg);
    let residual = policy.conservation_residual();
    assert!(
        residual == 0.0,
        "money not conserved under VCG (seed {seed:#x}): residual {residual}"
    );
    let mut rows = vec![("conservation_residual", residual)];
    rows.extend(baseline_rows(&r));
    rows
}

/// The policy roster of the chaos sweep, in report order.
pub const CHAOS_POLICIES: [&str; 6] = ["tycoon", "vcg", "fifo", "share", "gcommerce", "wta"];

/// One (seed × policy) cell of the sweep: the named metric row.
fn chaos_cell(policy: &'static str, seed: u64, cfg: &ChaosConfig) -> Vec<(&'static str, f64)> {
    let mut baseline: Box<dyn AllocationPolicy + Send> = match policy {
        "tycoon" => return chaos_scenario(seed, cfg).rows(),
        "vcg" => return vcg_chaos_run(seed, cfg),
        "fifo" => Box::new(FifoPolicy::default()),
        "share" => Box::new(SharePolicy::new(Placement::LeastLoaded)),
        "gcommerce" => Box::new(GCommerceMarket::default().policy()),
        "wta" => Box::new(WinnerTakesAllMarket::default().policy()),
        other => unreachable!("unknown chaos policy {other}"),
    };
    baseline_rows(&baseline_run(baseline.as_mut(), seed, cfg))
}

/// The chaos sweep: every seed generates a random fault world; every
/// policy runs the identical job stream through it. All
/// `seeds × policies` cells go through the pool as one flat tagged
/// fan-out, then regroup into per-policy batches (indices rewritten
/// back to seed positions, so replay hints and failure indices read the
/// same as a plain per-policy run).
pub fn chaos(args: McArgs) -> McChaos {
    let cfg = ChaosConfig::default();
    let seeds = seed_stream(args.base_seed, args.seeds);
    let mc = chaos_runner(args.threads).confidence(args.confidence);

    let n = CHAOS_POLICIES.len();
    let items: Vec<(u64, &'static str)> = seeds
        .iter()
        .flat_map(|&s| CHAOS_POLICIES.iter().map(move |&p| (s, p)))
        .collect();
    let batch = {
        let cfg = cfg.clone();
        mc.run_tagged(&items, move |seed, policy| chaos_cell(policy, seed, &cfg))
    };

    type PolicyRows = Vec<(&'static str, f64)>;
    let confidence = batch.confidence();
    let mut grouped: Vec<Vec<McOutcome<PolicyRows>>> = (0..n).map(|_| Vec::new()).collect();
    for o in batch.outcomes {
        let policy = o.index % n;
        let seed_index = o.index / n;
        grouped[policy].push(McOutcome {
            seed: o.seed,
            index: seed_index,
            result: o.result.map_err(|mut f| {
                f.index = seed_index;
                f
            }),
        });
    }
    let policies: Vec<PolicyChaos> = grouped
        .into_iter()
        .zip(CHAOS_POLICIES)
        .map(|(outcomes, policy)| {
            let b = McBatch::from_outcomes(outcomes, confidence);
            PolicyChaos {
                policy,
                report: b.report(Clone::clone),
                failures: b.failures().cloned().collect(),
            }
        })
        .collect();

    let mut rendered = format!(
        "Monte-Carlo chaos sweep: {} seeds (base {:#x}), {} threads\n\
         world: {} hosts, {} users x {} credits, random faults per seed\n\n",
        args.seeds, args.base_seed, args.threads, cfg.hosts, cfg.users, cfg.funding
    );
    for p in &policies {
        rendered.push_str(&format!("== policy: {} ==\n{}", p.policy, p.report.render()));
        for f in &p.failures {
            rendered.push_str(&format!("  QUARANTINED {f}\n"));
        }
        rendered.push('\n');
    }
    McChaos { policies, rendered }
}

/// One figure's Monte-Carlo report.
#[derive(Clone, Debug)]
pub struct FigMc {
    /// Experiment name (`fig3` … `volatility`).
    pub name: &'static str,
    /// Student-t report over the headline scalars.
    pub report: McReport,
}

/// Structured result of the figure sweep.
#[derive(Clone, Debug)]
pub struct McFigs {
    /// Per-figure reports.
    pub figs: Vec<FigMc>,
    /// Rendered report.
    pub rendered: String,
}

/// Re-run every figure experiment over a seed stream and report each
/// headline scalar with a confidence interval. This is the paper's whole
/// evaluation as a population instead of an anecdote: the same
/// `run_seeded` entry points the single-seed binaries call, just many
/// seeds through the Monte-Carlo runner.
#[allow(clippy::too_many_lines)]
pub fn report(scale: Scale, args: McArgs) -> McFigs {
    let seeds = seed_stream(args.base_seed, args.seeds);
    let mc = chaos_runner(args.threads).confidence(args.confidence);
    let mut figs: Vec<FigMc> = Vec::new();
    {
        let batch = mc.run(&seeds, move |s| crate::fig3::run_seeded(scale, s));
        figs.push(FigMc {
            name: "fig3",
            report: batch.report(|f| {
                let mid = f.budgets_per_day.len() / 2;
                vec![
                    ("price_mean", f.price_mean),
                    ("price_std", f.price_std),
                    ("cap90_mid_budget_mhz", f.curves[1].1[mid].capacity_mhz),
                ]
            }),
        });
    }
    {
        let batch = mc.run(&seeds, move |s| crate::fig4::run_seeded(scale, s));
        figs.push(FigMc {
            name: "fig4",
            report: batch.report(|f| {
                vec![
                    ("eps_ar", f.eps_ar),
                    ("eps_naive", f.eps_naive),
                    ("ar_edge", f.eps_naive - f.eps_ar),
                ]
            }),
        });
    }
    {
        let batch = mc.run(&seeds, move |s| crate::fig5::run_seeded(scale, s));
        figs.push(FigMc {
            name: "fig5",
            report: batch.report(|f| {
                vec![
                    ("std_risk_free", f.std_risk_free),
                    ("std_equal", f.std_equal),
                    ("std_reduction", 1.0 - f.std_risk_free / f.std_equal),
                ]
            }),
        });
    }
    {
        let batch = mc.run(&seeds, move |s| crate::fig6::run_seeded(scale, s));
        figs.push(FigMc {
            name: "fig6",
            report: batch.report(|f| {
                vec![
                    ("skew_short_window", f.windows[0].skewness),
                    ("skew_long_window", f.windows[2].skewness),
                ]
            }),
        });
    }
    {
        let batch = mc.run(&seeds, move |s| crate::fig7::run_seeded(scale, s));
        figs.push(FigMc {
            name: "fig7",
            report: batch.report(|f| {
                let max_tv = f.dists.iter().map(|d| d.tv_distance).fold(0.0, f64::max);
                let mean_tv = f.dists.iter().map(|d| d.tv_distance).sum::<f64>()
                    / f.dists.len().max(1) as f64;
                vec![("max_tv_distance", max_tv), ("mean_tv_distance", mean_tv)]
            }),
        });
    }
    {
        let batch = mc.run(&seeds, move |s| crate::ext_sweep::run_seeded(scale, s));
        figs.push(FigMc {
            name: "sweep",
            report: batch.report(|f| {
                let lo = &f.points.first().expect("sweep points").report;
                let hi = &f.points.last().expect("sweep points").report;
                let done = f
                    .points
                    .iter()
                    .filter(|p| p.report.completed_subjobs == p.report.subjobs)
                    .count() as f64;
                vec![
                    (
                        "funding_nodes_ratio",
                        if lo.avg_nodes > 0.0 { hi.avg_nodes / lo.avg_nodes } else { 0.0 },
                    ),
                    ("done_rate", done / f.points.len().max(1) as f64),
                ]
            }),
        });
    }
    {
        let batch = mc.run(&seeds, move |s| crate::ext_volatility::run_seeded(scale, s));
        figs.push(FigMc {
            name: "volatility",
            report: batch.report(|f| {
                vec![
                    ("tycoon_cov", f.tycoon_cov),
                    ("gcommerce_cov", f.gcommerce_cov),
                    ("posted_edge", f.tycoon_step_err - f.gcommerce_step_err),
                ]
            }),
        });
    }

    let mut rendered = format!(
        "Monte-Carlo figure report: {} seeds per figure (base {:#x}), {} threads\n\n",
        args.seeds, args.base_seed, args.threads
    );
    for f in &figs {
        rendered.push_str(&format!("== {} ==\n{}\n", f.name, f.report.render()));
    }
    McFigs { figs, rendered }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> McArgs {
        McArgs {
            seeds: 4,
            base_seed: 0xABCD,
            threads: 2,
            confidence: 0.95,
        }
    }

    #[test]
    fn chaos_sweep_covers_all_policies_with_zero_quarantines() {
        let c = chaos(tiny());
        let names: Vec<&str> = c.policies.iter().map(|p| p.policy).collect();
        assert_eq!(names, CHAOS_POLICIES);
        assert_eq!(c.total_quarantined(), 0, "{}", c.rendered);
        assert_eq!(c.tycoon_conservation_max(), Some(0.0), "money leak");
        assert_eq!(c.conservation_max("vcg"), Some(0.0), "VCG money leak");
        for p in &c.policies {
            assert_eq!(p.report.completed, 4, "policy {}", p.policy);
            assert!(p.report.metric("fairness").is_some());
            assert!(
                p.report.metric("welfare").is_some() && p.report.metric("revenue").is_some(),
                "policy {} must report the shared welfare/revenue columns",
                p.policy
            );
        }
        assert!(c.rendered.contains("== policy: tycoon =="));
        assert!(c.rendered.contains("== policy: vcg =="));
    }

    #[test]
    fn chaos_sweep_is_deterministic_across_thread_counts() {
        let a = chaos(McArgs { threads: 1, ..tiny() });
        let b = chaos(McArgs { threads: 4, ..tiny() });
        // Thread count appears in the header; everything below it must
        // be byte-identical.
        let strip = |s: &str| s.split_once('\n').map(|(_, rest)| rest.to_owned()).unwrap_or_default();
        assert_eq!(strip(&a.rendered), strip(&b.rendered));
    }

    #[test]
    fn figure_report_renders_every_figure() {
        let args = McArgs { seeds: 2, ..tiny() };
        let r = report(Scale::Quick, args);
        let names: Vec<&str> = r.figs.iter().map(|f| f.name).collect();
        assert_eq!(
            names,
            ["fig3", "fig4", "fig5", "fig6", "fig7", "sweep", "volatility"]
        );
        for f in &r.figs {
            assert_eq!(f.report.completed, 2, "figure {}", f.name);
        }
        assert!(r.rendered.contains("== fig4 =="));
    }
}
