//! Extension experiment: the optimization tier vs the market and queue
//! tiers on one SLA workload.
//!
//! Every allocator in the suite — the VCG welfare-LP policy
//! ([`gm_optimal::VcgSlaPolicy`]), the Tycoon proportional-share market,
//! and the four baselines — runs the *identical* seeded job stream on
//! the identical hosts through the one shared `PolicyDriver`, and every
//! run is scored with the same three columns: realized welfare (the
//! shared on-time value model, DESIGN.md §14), provider revenue, and
//! Jain fairness over average node allocations.
//!
//! The workload is built to expose the structural difference between
//! *optimizing* and *reacting* allocators under overload:
//!
//! * two cheap jobs arrive first (FIFO burns prime capacity on them),
//! * four high-value jobs arrive next (2× more demand than on-time
//!   capacity overall, so somebody must lose),
//! * one oversized job that cannot possibly meet its deadline carries a
//!   front-loaded [`gm_optimal::SlaCurve`]: its first third is worth
//!   most of its budget. All-or-nothing allocators either waste
//!   capacity on it (it bids high) or earn nothing from it; the LP
//!   prices its front segment against everyone else's marginal value
//!   and delivers exactly the part that pays.

use gm_baselines::{FifoPolicy, GCommerceMarket, Placement, SharePolicy, WinnerTakesAllMarket};
use gm_des::{SimDuration, SimTime};
use gm_grid::{AgentConfig, JobManager, VmConfig};
use gm_optimal::{SlaCurve, VcgSlaPolicy};
use gm_tycoon::{HostSpec, Market, UserId};
use gridmarket::sched::{jain_fairness, AllocationPolicy, JobRequest, PolicyDriver, RunResult};
use gridmarket::TycoonPolicy;

use crate::Scale;

/// One policy's scorecard on the shared SLA workload.
#[derive(Clone, Debug)]
pub struct PolicyWelfare {
    /// Policy name (driver-registered).
    pub policy: &'static str,
    /// Realized welfare (Σ per-job on-time value).
    pub welfare: f64,
    /// Provider revenue (Σ per-job cost).
    pub revenue: f64,
    /// Jain fairness over average node allocations.
    pub fairness: f64,
    /// Jobs finished within the horizon.
    pub finished: usize,
}

/// Structured result of the comparison.
#[derive(Clone, Debug)]
pub struct VcgComparison {
    /// Per-policy scorecards, VCG first.
    pub rows: Vec<PolicyWelfare>,
    /// Rendered report.
    pub rendered: String,
}

impl VcgComparison {
    /// Look up one policy's row.
    pub fn row(&self, policy: &str) -> Option<&PolicyWelfare> {
        self.rows.iter().find(|r| r.policy == policy)
    }
}

/// The id of the oversized front-loaded job (the one with a registered
/// SLA curve).
const SWEEP_JOB: u32 = 6;

/// The shared SLA job stream: cheap-first arrivals, 2× overload, one
/// impossible-deadline job with front-loaded value.
fn sla_stream(hosts: u32) -> Vec<JobRequest> {
    // Scale demand with the host count so Quick and Paper scale see the
    // same ~2× overload shape.
    let unit = f64::from(hosts) / 4.0;
    let mut jobs: Vec<JobRequest> = (0..6)
        .map(|i| JobRequest {
            id: i,
            user: UserId(i + 1),
            subjobs: 4,
            work_per_subjob: 2.0e6 * unit,
            arrival: SimTime::ZERO + SimDuration::from_secs(30 * u64::from(i)),
            budget: if i < 2 { 10.0 } else { 200.0 },
            deadline_secs: 1800.0,
        })
        .collect();
    jobs.push(JobRequest {
        id: SWEEP_JOB,
        user: UserId(SWEEP_JOB + 1),
        subjobs: 8,
        work_per_subjob: 7.5e6 * unit,
        arrival: SimTime::ZERO + SimDuration::from_secs(180),
        budget: 300.0,
        deadline_secs: 1800.0,
    });
    jobs
}

/// The curve of the oversized job: its first third carries 80 % of the
/// value (a sweep whose early results are the science).
fn sweep_curve(jobs: &[JobRequest]) -> SlaCurve {
    let big = &jobs[SWEEP_JOB as usize];
    SlaCurve::front_loaded(big.total_work(), big.budget, 1.0 / 3.0, 0.8)
}

fn score(policy: &'static str, r: &RunResult) -> PolicyWelfare {
    let nodes: Vec<f64> = r.outcomes.iter().map(|o| o.avg_nodes).collect();
    PolicyWelfare {
        policy,
        welfare: r.welfare(),
        revenue: r.revenue(),
        fairness: jain_fairness(&nodes),
        finished: r.outcomes.iter().filter(|o| o.finished_at.is_some()).count(),
    }
}

/// Run the comparison at the historical seed.
pub fn run(scale: Scale) -> VcgComparison {
    run_seeded(scale, 0x5C6)
}

/// [`run`] with an explicit seed (Monte-Carlo entry point). The seed
/// keys the Tycoon market and the VCG settlement bank; the job stream
/// is fixed, so the experimental variable stays the policy.
pub fn run_seeded(scale: Scale, seed: u64) -> VcgComparison {
    let n_hosts = match scale {
        Scale::Paper => 8,
        Scale::Quick => 4,
    };
    let hosts: Vec<HostSpec> = (0..n_hosts).map(HostSpec::testbed).collect();
    let jobs = sla_stream(n_hosts);
    let horizon = SimTime::ZERO + SimDuration::from_secs(3 * 3600);
    let drive = |policy: &mut dyn AllocationPolicy| -> RunResult {
        PolicyDriver::new(hosts.clone(), 10.0)
            .horizon(horizon)
            .run(policy, &jobs)
            .expect("valid SLA job stream")
    };

    let mut rows = Vec::new();
    {
        let mut vcg = VcgSlaPolicy::new(seed).with_curve(SWEEP_JOB, sweep_curve(&jobs));
        rows.push(score("vcg", &drive(&mut vcg)));
    }
    {
        let mut market = Market::new(&seed.to_be_bytes());
        market.set_interval_secs(10.0);
        for h in &hosts {
            market.add_host(h.clone());
        }
        let jm = JobManager::new(&mut market, AgentConfig::default(), VmConfig::default());
        let mut ty = TycoonPolicy::new(market, jm);
        rows.push(score("tycoon", &drive(&mut ty)));
    }
    rows.push(score("fifo", &drive(&mut FifoPolicy::default())));
    rows.push(score("share", &drive(&mut SharePolicy::new(Placement::LeastLoaded))));
    rows.push(score("gcommerce", &drive(&mut GCommerceMarket::default().policy())));
    rows.push(score("wta", &drive(&mut WinnerTakesAllMarket::default().policy())));

    let mut rendered = String::from(
        "Extension: optimization tier (VCG welfare LP) vs market and queue tiers\n\
         identical SLA workload: 2x overload, cheap-first arrivals, one front-loaded sweep job\n",
    );
    rendered.push_str(&format!(
        "{:<12} {:>10} {:>10} {:>10} {:>9}\n",
        "policy", "welfare", "revenue", "fairness", "finished"
    ));
    for r in &rows {
        rendered.push_str(&format!(
            "{:<12} {:>10.2} {:>10.2} {:>10.3} {:>9}\n",
            r.policy, r.welfare, r.revenue, r.fairness, r.finished
        ));
    }
    rendered.push_str(
        "(welfare = shared on-time value model; the LP earns partial credit on the\n \
         sweep job's front segment, all-or-nothing allocators cannot)\n",
    );
    VcgComparison { rows, rendered }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vcg_welfare_dominates_every_other_policy() {
        let c = run(Scale::Quick);
        let vcg = c.row("vcg").expect("vcg row").welfare;
        for r in &c.rows {
            assert!(
                vcg >= r.welfare - 1e-9,
                "vcg welfare {vcg:.2} below {} welfare {:.2}\n{}",
                r.policy,
                r.welfare,
                c.rendered
            );
        }
        assert!(vcg > 0.0, "vcg must realize positive welfare\n{}", c.rendered);
    }

    #[test]
    fn comparison_covers_all_six_policies_and_is_seeded() {
        let c = run(Scale::Quick);
        let names: Vec<&str> = c.rows.iter().map(|r| r.policy).collect();
        assert_eq!(names, ["vcg", "tycoon", "fifo", "share", "gcommerce", "wta"]);
        let again = run(Scale::Quick);
        for (a, b) in c.rows.iter().zip(&again.rows) {
            assert_eq!(a.welfare.to_bits(), b.welfare.to_bits(), "{}", a.policy);
            assert_eq!(a.revenue.to_bits(), b.revenue.to_bits(), "{}", a.policy);
        }
    }
}
