//! Long-horizon price-trace generation.
//!
//! The prediction experiments (§5.4) need hours-to-days of spot-price
//! history with the characteristic shape of a batch market: prices ramp
//! while jobs compete and drop sharply when batches complete. We generate
//! such traces by actually running the grid market under a stochastic
//! arrival process (Poisson arrivals, uniformly drawn funding, chunk
//! sizes and widths) — the same end-to-end stack as Tables 1–2, not a
//! synthetic price formula.

use gm_des::{Pcg32, Rng64, SimDuration, SimTime, Trace};
use gm_grid::{AgentConfig, GridIdentity, JobManager, JobSpec, TransferToken, VmConfig};
use gm_tycoon::{AccountId, Credits, HostSpec, Market};

/// Configuration of the arrival-driven price generator.
#[derive(Clone, Debug)]
pub struct PriceGenConfig {
    /// Number of testbed hosts.
    pub hosts: u32,
    /// Trace length in hours.
    pub hours: f64,
    /// Deterministic seed.
    pub seed: u64,
    /// Market reallocation interval in seconds (coarser than 10 s keeps
    /// week-long traces cheap).
    pub interval_secs: f64,
    /// Mean job arrivals per hour.
    pub arrivals_per_hour: f64,
    /// Uniform range of chunk lengths (minutes at full vCPU).
    pub chunk_minutes: (f64, f64),
    /// Uniform range of token funding (credits).
    pub funding: (f64, f64),
    /// Uniform range of sub-job counts.
    pub subjobs: (u32, u32),
}

impl PriceGenConfig {
    /// Defaults sized for the Fig. 4 trace (10 hosts, busy market).
    pub fn new(hours: f64, seed: u64) -> PriceGenConfig {
        PriceGenConfig {
            hosts: 10,
            hours,
            seed,
            interval_secs: 30.0,
            arrivals_per_hour: 6.0,
            chunk_minutes: (10.0, 60.0),
            funding: (20.0, 300.0),
            subjobs: (2, 8),
        }
    }
}

/// Generate the spot-price trace of every host under the configured
/// arrival process.
pub fn generate(cfg: &PriceGenConfig) -> Trace {
    let mut market = Market::new(&cfg.seed.to_be_bytes());
    market.set_interval_secs(cfg.interval_secs);
    for i in 0..cfg.hosts {
        market.add_host(HostSpec::testbed(i));
    }
    let mut jm = JobManager::new(&mut market, AgentConfig::default(), VmConfig::default());

    // A pool of rotating grid users with deep pockets.
    let n_users = 8usize;
    let users: Vec<(GridIdentity, AccountId)> = (0..n_users)
        .map(|i| {
            let id = GridIdentity::swegrid_user(i as u32 + 1);
            let acct = market
                .bank_mut()
                .open_account(id.public_key(), &format!("pricegen-user{i}"));
            market
                .bank_mut()
                .mint(acct, Credits::from_whole(10_000_000))
                .expect("endowment");
            (id, acct)
        })
        .collect();

    let mut rng = Pcg32::new(cfg.seed, 0x9e47);
    // Pre-draw exponential inter-arrival times.
    let mut arrivals = Vec::new();
    let mut t = 0.0f64;
    let horizon_secs = cfg.hours * 3600.0;
    let mean_gap = 3600.0 / cfg.arrivals_per_hour;
    loop {
        t += -rng.next_f64_open().ln() * mean_gap;
        if t >= horizon_secs {
            break;
        }
        arrivals.push(t);
    }

    let dt = SimDuration::from_secs_f64(cfg.interval_secs);
    let mut now = SimTime::ZERO;
    let mut next_arrival = 0usize;
    let mut user_rr = 0usize;
    while now.as_secs_f64() < horizon_secs {
        while next_arrival < arrivals.len() && arrivals[next_arrival] <= now.as_secs_f64() {
            let (identity, acct) = &users[user_rr % n_users];
            user_rr += 1;
            next_arrival += 1;

            let chunk_min = rng.next_range_f64(cfg.chunk_minutes.0, cfg.chunk_minutes.1);
            let funding = rng.next_range_f64(cfg.funding.0, cfg.funding.1);
            let subjobs = cfg.subjobs.0
                + rng.next_bounded((cfg.subjobs.1 - cfg.subjobs.0 + 1) as u64) as u32;
            let deadline_min = (chunk_min * 2.0).ceil() as u64 + 10;

            let receipt = match market.bank_mut().transfer(
                *acct,
                jm.broker_account(),
                Credits::from_f64(funding),
            ) {
                Ok(r) => r,
                Err(_) => continue,
            };
            let token = TransferToken::create(identity, receipt, identity.dn());
            let text = format!(
                "&(executable=\"scan.sh\")(jobName=\"arrival{next_arrival}\")(count={subjobs})(cpuTime=\"{deadline_min} minutes\")(transferToken=\"{}\")",
                token.to_hex()
            );
            let work = chunk_min * 60.0 * 2910.0;
            if let Ok(spec) = JobSpec::parse(&text, work) {
                let _ = jm.submit(&mut market, now, &spec);
            }
        }
        jm.step(&mut market, now);
        now += dt;
    }
    market.price_trace().clone()
}

/// Convenience: the price series of host 0 as a plain vector.
pub fn host0_prices(cfg: &PriceGenConfig) -> Vec<f64> {
    let trace = generate(cfg);
    trace
        .get("host000")
        .map(|s| s.values().to_vec())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_has_expected_length_and_activity() {
        let cfg = PriceGenConfig {
            hours: 2.0,
            ..PriceGenConfig::new(2.0, 7)
        };
        let prices = host0_prices(&cfg);
        // 2 h at 30 s interval = 240 samples.
        assert_eq!(prices.len(), 240);
        // The market must actually move: some price above the reserve.
        assert!(prices.iter().any(|&p| p > 1e-4), "market never active");
        // Prices must vary (batch completions → drops).
        let max = prices.iter().cloned().fold(0.0, f64::max);
        let min = prices.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max > min * 2.0, "no price dynamics: {min}..{max}");
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = PriceGenConfig::new(1.0, 11);
        assert_eq!(host0_prices(&cfg), host0_prices(&cfg));
        let other = PriceGenConfig::new(1.0, 12);
        assert_ne!(host0_prices(&cfg), host0_prices(&other));
    }

    #[test]
    fn all_hosts_have_series() {
        let cfg = PriceGenConfig::new(1.0, 3);
        let trace = generate(&cfg);
        assert_eq!(trace.len(), 10);
    }
}
