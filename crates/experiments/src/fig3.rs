//! Fig. 3 — Normal-distribution prediction with different guarantee
//! levels (§5.4).
//!
//! "Depending on what guarantee of average performance the user wants,
//! different curves may be followed to decide on how much to spend." The
//! figure plots guaranteed CPU capacity (MHz) against budget ($/day) for
//! 80 %, 90 % and 99 % guarantees, based on a one-day price window.

use gm_predict::normal::{guarantee_curve, GuaranteeCurvePoint, NormalPriceModel};
use gm_tycoon::HostId;

use crate::pricegen::{host0_prices, PriceGenConfig};
use crate::Scale;

/// Structured result of the Fig. 3 experiment.
#[derive(Clone, Debug)]
pub struct Fig3 {
    /// Budgets swept (credits/day).
    pub budgets_per_day: Vec<f64>,
    /// One curve per guarantee level: `(p, points)`.
    pub curves: Vec<(f64, Vec<GuaranteeCurvePoint>)>,
    /// Price-model inputs (μ, σ of the day window).
    pub price_mean: f64,
    /// Price standard deviation of the window.
    pub price_std: f64,
    /// Rendered report.
    pub rendered: String,
}

/// The guarantee levels of the paper's figure.
pub const GUARANTEES: [f64; 3] = [0.80, 0.90, 0.99];

/// Run the experiment: derive the host price model from a generated
/// market trace, then sweep budgets at each guarantee level.
pub fn run(scale: Scale) -> Fig3 {
    run_seeded(scale, 0xF163)
}

/// [`run`] with an explicit market seed — the Monte-Carlo entry point:
/// each seed generates a different price trace through the same market,
/// turning the figure's single curve into a population of curves.
pub fn run_seeded(scale: Scale, seed: u64) -> Fig3 {
    let (hours, n_budgets) = match scale {
        Scale::Paper => (24.0, 40),
        Scale::Quick => (3.0, 15),
    };
    let cfg = PriceGenConfig::new(hours, seed);
    let prices = host0_prices(&cfg);
    assert!(!prices.is_empty());
    let model = NormalPriceModel::from_prices(HostId(0), &prices, 2910.0);

    // Sweep budgets up to the point where even the 99 % curve saturates.
    let max_per_day = (model.mean + 3.0 * model.std_dev).max(1e-6) * 86_400.0 * 20.0;
    let budgets_per_day: Vec<f64> = (1..=n_budgets)
        .map(|i| max_per_day * i as f64 / n_budgets as f64)
        .collect();

    let curves: Vec<(f64, Vec<GuaranteeCurvePoint>)> = GUARANTEES
        .iter()
        .map(|&p| (p, guarantee_curve(&[model], &budgets_per_day, p)))
        .collect();

    let mut rendered = String::from(
        "Fig 3. Normal distribution prediction with different guarantee levels\n",
    );
    rendered.push_str(&format!(
        "host price window: mean {:.6} cr/s, std {:.6} cr/s\n",
        model.mean, model.std_dev
    ));
    rendered.push_str("budget(cr/day)  cap@80%(MHz)  cap@90%(MHz)  cap@99%(MHz)\n");
    for (i, b) in budgets_per_day.iter().enumerate() {
        rendered.push_str(&format!(
            "{:>13.2} {:>13.1} {:>13.1} {:>13.1}\n",
            b, curves[0].1[i].capacity_mhz, curves[1].1[i].capacity_mhz, curves[2].1[i].capacity_mhz
        ));
    }

    Fig3 {
        budgets_per_day,
        curves,
        price_mean: model.mean,
        price_std: model.std_dev,
        rendered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_have_fig3_shape() {
        let f = run(Scale::Quick);
        assert_eq!(f.curves.len(), 3);
        for (p, curve) in &f.curves {
            // Monotone increasing in budget.
            for w in curve.windows(2) {
                assert!(
                    w[1].capacity_mhz >= w[0].capacity_mhz - 1e-9,
                    "p={p}: capacity decreased"
                );
            }
            // Saturates below the host capacity.
            assert!(curve.last().unwrap().capacity_mhz <= 2910.0);
        }
        // Ordering: higher guarantee ⇒ lower capacity at the same budget.
        let last = f.budgets_per_day.len() / 2;
        let c80 = f.curves[0].1[last].capacity_mhz;
        let c90 = f.curves[1].1[last].capacity_mhz;
        let c99 = f.curves[2].1[last].capacity_mhz;
        assert!(c80 >= c90 && c90 >= c99, "{c80} {c90} {c99}");
    }

    #[test]
    fn curves_flatten_out() {
        // "There is a certain point where the curves flatten out."
        let f = run(Scale::Quick);
        let curve = &f.curves[1].1;
        let n = curve.len();
        let first_gain = curve[1].capacity_mhz - curve[0].capacity_mhz;
        let last_gain = curve[n - 1].capacity_mhz - curve[n - 2].capacity_mhz;
        assert!(
            first_gain > last_gain,
            "no diminishing returns: {first_gain} vs {last_gain}"
        );
    }

    #[test]
    fn rendered_contains_all_levels() {
        let f = run(Scale::Quick);
        assert!(f.rendered.contains("80%"));
        assert!(f.rendered.contains("99%"));
    }
}
