//! Fig. 4 — AR(6) prediction with a one-hour forecast and smoothing (§5.4).
//!
//! The paper: 40 hours of price history from the grid-job runs; the first
//! 20 hours fit the model, the last 20 validate it. A cubic smoothing
//! spline is applied first because of "sharp price drops when batch jobs
//! completed". Reported: ε(AR(6), 1 h forecast) = 8.96 % vs ε(naive
//! "price stays") = 9.44 % — the AR model wins by a modest margin.

use gm_predict::ar::{epsilon, naive_epsilon, walk_forward, ArModel, MeanMode};

use crate::pricegen::{host0_prices, PriceGenConfig};
use crate::Scale;

/// Structured result of the Fig. 4 experiment.
#[derive(Clone, Debug)]
pub struct Fig4 {
    /// ε of the AR(6)+smoothing model.
    pub eps_ar: f64,
    /// ε of the naive benchmark.
    pub eps_naive: f64,
    /// Forecast horizon in samples.
    pub horizon: usize,
    /// A slice of (predicted, measured) pairs for plotting.
    pub sample: Vec<(f64, f64)>,
    /// Rendered report.
    pub rendered: String,
}

/// Run the experiment.
pub fn run(scale: Scale) -> Fig4 {
    run_seeded(scale, 0xF164)
}

/// [`run`] with an explicit market seed (Monte-Carlo entry point).
pub fn run_seeded(scale: Scale, seed: u64) -> Fig4 {
    let (hours, interval_secs, horizon) = match scale {
        // 40 h at 60 s samples; 1 h forecast = 60 steps.
        Scale::Paper => (40.0, 60.0, 60usize),
        // 6 h at 60 s samples; 10 min forecast.
        Scale::Quick => (6.0, 60.0, 10usize),
    };
    let mut cfg = PriceGenConfig::new(hours, seed);
    cfg.interval_secs = interval_secs;
    let prices = host0_prices(&cfg);
    assert!(prices.len() > 4 * horizon, "trace too short");

    let split = prices.len() / 2;
    let (train, validate) = prices.split_at(split);

    // Smoothing penalty sized to the forecast horizon (the paper's cubic
    // smoothing spline; we use the Whittaker discrete equivalent).
    let lambda = gm_numeric::spline::lambda_for_window(horizon / 2 + 2);
    // Local-mean anchoring (see `MeanMode::Local`): live market prices are
    // non-stationary, so forecasts revert to the recent level rather than
    // the 20-hour-old training mean.
    let model = ArModel::fit(train, 6, lambda)
        .expect("non-degenerate price series")
        .with_mean_mode(MeanMode::Local(3 * horizon));

    let (preds, meas) = walk_forward(&model, train, validate, horizon);
    let eps_ar = epsilon(&preds, &meas);
    let eps_naive = naive_epsilon(validate, horizon);

    let sample: Vec<(f64, f64)> = preds
        .iter()
        .zip(&meas)
        .step_by((preds.len() / 50).max(1))
        .map(|(&p, &m)| (p, m))
        .collect();

    let mut rendered = String::from("Fig 4. AR(6) prediction, 1-hour forecast, with smoothing\n");
    rendered.push_str(&format!(
        "samples: {} train / {} validate, horizon {} steps\n",
        train.len(),
        validate.len(),
        horizon
    ));
    rendered.push_str(&format!(
        "epsilon AR(6)+smoothing: {:.2}%   epsilon naive: {:.2}%   (paper: 8.96% vs 9.44%)\n",
        eps_ar * 100.0,
        eps_naive * 100.0
    ));
    rendered.push_str("sample forecasts (predicted, measured):\n");
    for (p, m) in sample.iter().take(10) {
        rendered.push_str(&format!("  {p:.6}  {m:.6}\n"));
    }

    Fig4 {
        eps_ar,
        eps_naive,
        horizon,
        sample,
        rendered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ar_model_is_competitive_with_naive() {
        // The paper's margin is small (8.96 vs 9.44 %); we assert the AR
        // model does not lose badly and both are in a sane range.
        let f = run(Scale::Quick);
        assert!(f.eps_ar.is_finite() && f.eps_naive.is_finite());
        assert!(f.eps_ar > 0.0 && f.eps_naive > 0.0);
        assert!(
            f.eps_ar <= f.eps_naive * 1.15,
            "AR ε {:.4} much worse than naive {:.4}",
            f.eps_ar,
            f.eps_naive
        );
    }

    #[test]
    fn rendered_reports_both_epsilons() {
        let f = run(Scale::Quick);
        assert!(f.rendered.contains("epsilon AR(6)"));
        assert!(f.rendered.contains("naive"));
        assert!(!f.sample.is_empty());
    }
}
