//! Extension experiment: price predictability, Tycoon vs G-commerce.
//!
//! §6 recounts G-commerce's claim that commodity (posted-price) markets
//! "achieve better price predictability than auctions", and the paper's
//! rebuttal that the auctions simulated there were winner-takes-all, not
//! proportional share. This experiment measures it on our
//! implementations: the coefficient of variation of (a) Tycoon spot
//! prices, (b) a G-commerce posted price, and (c) winner-takes-all
//! clearing prices — all three markets running the *identical* job
//! stream through the one shared `PolicyDriver`, so the only difference
//! is the pricing mechanism itself.

use gm_baselines::{GCommerceMarket, JobRequest, WinnerTakesAllMarket};
use gm_des::SimTime;
use gm_grid::{AgentConfig, JobManager, VmConfig};
use gm_numeric::stats::Moments;
use gm_tycoon::{HostSpec, Market, UserId};
use gridmarket::{PolicyDriver, TycoonPolicy};

use crate::Scale;

/// Structured result.
#[derive(Clone, Debug)]
pub struct Volatility {
    /// CoV of Tycoon spot prices (host 0).
    pub tycoon_cov: f64,
    /// CoV of the G-commerce posted price.
    pub gcommerce_cov: f64,
    /// CoV of winner-takes-all clearing prices.
    pub wta_cov: Option<f64>,
    /// Mean one-step relative prediction error ("predictability"): Tycoon.
    pub tycoon_step_err: f64,
    /// Mean one-step relative prediction error: G-commerce posted price.
    pub gcommerce_step_err: f64,
    /// Rendered report.
    pub rendered: String,
}

fn cov(xs: &[f64]) -> Option<f64> {
    let m = Moments::of(xs)?;
    if m.mean.abs() < 1e-300 {
        return None;
    }
    Some(m.std_dev / m.mean)
}

/// Mean |x(t+1) − x(t)| / x(t): how wrong the naive "price stays" forecast
/// is one step out — the operational meaning of "price predictability".
fn step_error(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let mut acc = 0.0;
    let mut n = 0usize;
    for w in xs.windows(2) {
        if w[0].abs() > 1e-300 {
            acc += (w[1] - w[0]).abs() / w[0];
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        acc / n as f64
    }
}

/// Run the comparison.
pub fn run(scale: Scale) -> Volatility {
    run_seeded(scale, 0xA11)
}

/// [`run`] with an explicit market seed (Monte-Carlo entry point). Only
/// the Tycoon market takes a key seed; the posted-price and WTA baselines
/// are deterministic given the (fixed) job stream.
pub fn run_seeded(scale: Scale, seed: u64) -> Volatility {
    let hours = match scale {
        Scale::Paper => 24.0,
        Scale::Quick => 3.0,
    };

    // The shared inventory and arrival stream every market runs under.
    let hosts: Vec<HostSpec> = (0..10).map(HostSpec::testbed).collect();
    let jobs: Vec<JobRequest> = (0..12)
        .map(|i| JobRequest {
            id: i,
            user: UserId(i % 4 + 1),
            subjobs: 4,
            work_per_subjob: 30.0 * 60.0 * 2910.0,
            arrival: SimTime::from_secs(i as u64 * 600),
            budget: 150.0 + 50.0 * (i % 3) as f64,
            deadline_secs: 3600.0,
        })
        .collect();
    let horizon = SimTime::from_secs((hours * 3600.0) as u64);

    // (a) Tycoon spot prices (host 0) through the shared driver.
    let mut market = Market::new(&seed.to_be_bytes());
    market.set_interval_secs(10.0);
    for h in &hosts {
        market.add_host(h.clone());
    }
    let jm = JobManager::new(&mut market, AgentConfig::default(), VmConfig::default());
    let mut ty = TycoonPolicy::new(market, jm);
    PolicyDriver::new(hosts.clone(), 10.0)
        .horizon(horizon)
        .run(&mut ty, &jobs)
        .expect("tycoon run");
    let tycoon_prices: Vec<f64> = ty
        .market()
        .price_trace()
        .get("host000")
        .map(|s| s.values().to_vec())
        .unwrap_or_default();
    let tycoon_cov = cov(&tycoon_prices).unwrap_or(f64::NAN);

    let gc = GCommerceMarket::default().run(&hosts, &jobs, horizon);
    let gc_prices: Vec<f64> = gc.price_history.iter().map(|(_, p)| *p).collect();
    let gcommerce_cov = cov(&gc_prices).unwrap_or(f64::NAN);

    let wta = WinnerTakesAllMarket::default().run(&hosts, &jobs, horizon);
    let wta_prices: Vec<f64> = wta.price_history.iter().map(|(_, p)| *p).collect();
    let wta_cov = cov(&wta_prices);

    let tycoon_step_err = step_error(&tycoon_prices);
    let gcommerce_step_err = step_error(&gc_prices);

    let mut rendered = String::from("Extension: price predictability\n");
    rendered.push_str("                                  CoV (spread)   1-step err (forecastability)\n");
    rendered.push_str(&format!(
        "tycoon spot (proportional share): {tycoon_cov:>12.3} {tycoon_step_err:>16.4}\n"
    ));
    rendered.push_str(&format!(
        "g-commerce posted price:          {gcommerce_cov:>12.3} {gcommerce_step_err:>16.4}\n"
    ));
    match wta_cov {
        Some(c) => rendered.push_str(&format!("winner-takes-all clearing:        {c:>12.3}\n")),
        None => rendered.push_str("winner-takes-all clearing:        (no contested intervals)\n"),
    }
    rendered.push_str(
        "(G-commerce's predictability advantage is the bounded per-step movement —\n the 1-step error column — not lower long-run spread.)\n",
    );
    Volatility {
        tycoon_cov,
        gcommerce_cov,
        wta_cov,
        tycoon_step_err,
        gcommerce_step_err,
        rendered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_markets_produce_finite_covs() {
        let v = run(Scale::Quick);
        assert!(v.tycoon_cov.is_finite() && v.tycoon_cov > 0.0);
        assert!(v.gcommerce_cov.is_finite() && v.gcommerce_cov >= 0.0);
        assert!(v.rendered.contains("tycoon"));
    }

    #[test]
    fn posted_prices_are_more_forecastable_than_spot() {
        // The G-commerce predictability claim, measured operationally:
        // posted prices move ≤ ±5 % per interval by construction, while
        // spot prices jump when bids arrive/exit.
        let v = run(Scale::Quick);
        assert!(
            v.gcommerce_step_err <= 0.05 + 1e-9,
            "posted per-step movement must be bounded: {}",
            v.gcommerce_step_err
        );
        assert!(
            v.gcommerce_step_err < v.tycoon_step_err,
            "posted {:.4} should be more forecastable than spot {:.4}",
            v.gcommerce_step_err,
            v.tycoon_step_err
        );
    }
}
