//! Fig. 5 — Risk-free portfolio performance vs equal-share portfolio
//! (§5.4).
//!
//! "We ran simulations where 10 hosts are picked either using the
//! calculated risk free portfolio or equal shares. The aggregate
//! performance over time is then measured. Individual mean host
//! performance, performance variance, and variance of performance
//! variances were all randomly generated with a normal distribution. The
//! results … show that downside risk could be improved by using the risk
//! free portfolio."

use gm_des::Pcg32;
use gm_numeric::samplers::{Normal, Sampler};
use gm_predict::portfolio::{equal_share, min_variance_portfolio, ReturnStats};

use crate::Scale;

/// Structured result of the Fig. 5 experiment.
#[derive(Clone, Debug)]
pub struct Fig5 {
    /// Aggregate performance over time with the risk-free portfolio.
    pub risk_free: Vec<f64>,
    /// Aggregate performance over time with equal shares.
    pub equal: Vec<f64>,
    /// Std deviation of the risk-free aggregate.
    pub std_risk_free: f64,
    /// Std deviation of the equal-share aggregate.
    pub std_equal: f64,
    /// 5th-percentile (downside) of each aggregate: (risk-free, equal).
    pub downside: (f64, f64),
    /// The portfolio weights used.
    pub weights: Vec<f64>,
    /// Rendered report.
    pub rendered: String,
}

/// Per-host return parameters: mean performance, performance variance and
/// variance of the variance — "all randomly generated with a normal
/// distribution" (§5.4).
struct HostParams {
    mean: f64,
    variance: f64,
    var_of_var: f64,
}

fn draw_hosts(n_hosts: usize, rng: &mut Pcg32) -> Vec<HostParams> {
    let mean_dist = Normal::new(5.0, 0.6);
    let var_dist = Normal::new(0.5, 0.3);
    let varvar_dist = Normal::new(0.1, 0.05);
    (0..n_hosts)
        .map(|_| HostParams {
            mean: mean_dist.sample(rng),
            variance: var_dist.sample(rng).abs().max(1e-3),
            var_of_var: varvar_dist.sample(rng).abs(),
        })
        .collect()
}

/// Draw a return series of length `t` from fixed host parameters.
fn host_returns(hosts: &[HostParams], t: usize, rng: &mut Pcg32) -> Vec<Vec<f64>> {
    hosts
        .iter()
        .map(|h| {
            let inst_var = Normal::new(h.variance, h.var_of_var.sqrt());
            (0..t)
                .map(|_| {
                    let var_t = inst_var.sample(rng).abs().max(1e-4);
                    Normal::new(h.mean, var_t.sqrt()).sample(rng)
                })
                .collect()
        })
        .collect()
}

/// Run the experiment.
pub fn run(scale: Scale) -> Fig5 {
    run_seeded(scale, 0xF165)
}

/// [`run`] with an explicit sampling seed (Monte-Carlo entry point).
pub fn run_seeded(scale: Scale, seed: u64) -> Fig5 {
    let (t_train, t_eval) = match scale {
        Scale::Paper => (2000usize, 1000usize),
        Scale::Quick => (500, 200),
    };
    let n_hosts = 10;
    let mut rng = Pcg32::new(seed, 5);

    // Fixed host population; training sample → portfolio weights.
    let hosts = draw_hosts(n_hosts, &mut rng);
    let train = host_returns(&hosts, t_train, &mut rng);
    let stats = ReturnStats::estimate(&train);
    let weights = min_variance_portfolio(&stats).expect("non-singular covariance");
    let eq = equal_share(n_hosts);

    // Fresh evaluation draws from the *same* hosts.
    let eval = host_returns(&hosts, t_eval, &mut rng);
    let aggregate = |w: &[f64]| -> Vec<f64> {
        (0..t_eval)
            .map(|t| (0..n_hosts).map(|h| w[h] * eval[h][t]).sum())
            .collect()
    };
    let risk_free = aggregate(&weights);
    let equal = aggregate(&eq);

    let stddev = |xs: &[f64]| {
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
    };
    let p5 = |xs: &[f64]| gm_numeric::stats::percentile(xs, 0.05).expect("nonempty");

    let std_risk_free = stddev(&risk_free);
    let std_equal = stddev(&equal);
    let downside = (p5(&risk_free), p5(&equal));

    let mut rendered =
        String::from("Fig 5. Risk free portfolio performance vs. equal share portfolio\n");
    rendered.push_str(&format!(
        "aggregate std: risk-free {std_risk_free:.4}, equal {std_equal:.4}\n"
    ));
    rendered.push_str(&format!(
        "downside (5th pct): risk-free {:.4}, equal {:.4}\n",
        downside.0, downside.1
    ));
    rendered.push_str(&format!("weights: {:?}\n", weights.iter().map(|w| (w * 1000.0).round() / 1000.0).collect::<Vec<_>>()));
    rendered.push_str("t, risk_free, equal\n");
    for (i, (rf, eq)) in risk_free.iter().zip(&equal).enumerate().step_by(t_eval / 25) {
        rendered.push_str(&format!("{i}, {rf:.4}, {eq:.4}\n"));
    }

    Fig5 {
        risk_free,
        equal,
        std_risk_free,
        std_equal,
        downside,
        weights,
        rendered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn risk_free_portfolio_reduces_variance() {
        let f = run(Scale::Quick);
        assert!(
            f.std_risk_free < f.std_equal,
            "risk-free std {:.4} should beat equal {:.4}",
            f.std_risk_free,
            f.std_equal
        );
    }

    #[test]
    fn downside_risk_is_improved() {
        // The paper: "downside risk could be improved by using the risk
        // free portfolio" — the 5th percentile is higher relative to the
        // mean spread. We compare coefficient-of-variation-adjusted
        // downside: (mean − p5)/std must not be wildly worse, and the raw
        // spread must shrink.
        let f = run(Scale::Quick);
        let mean_rf = f.risk_free.iter().sum::<f64>() / f.risk_free.len() as f64;
        let mean_eq = f.equal.iter().sum::<f64>() / f.equal.len() as f64;
        let gap_rf = mean_rf - f.downside.0;
        let gap_eq = mean_eq - f.downside.1;
        assert!(
            gap_rf < gap_eq,
            "risk-free downside gap {gap_rf:.4} should be smaller than equal {gap_eq:.4}"
        );
    }

    #[test]
    fn weights_sum_to_one() {
        let f = run(Scale::Quick);
        assert!((f.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(f.weights.len(), 10);
    }

    #[test]
    fn series_have_equal_length() {
        let f = run(Scale::Quick);
        assert_eq!(f.risk_free.len(), f.equal.len());
        assert!(!f.risk_free.is_empty());
    }
}
