//! Table 1 — Equal Distribution of Funds (§5.3).
//!
//! Five users run the same bioinformatics task with identical funding,
//! submitted in sequence with a slight stagger. The paper's observation:
//! users 3–5 "received a much lower quality of service … because the best
//! response algorithm found it too expensive to fund more than a very low
//! number of hosts" — later users land on fewer nodes with worse latency
//! at a similar hourly cost.

use gridmarket::report::{group_rows, render_table, render_users};
use gridmarket::scenario::{Scenario, UserSetup};
use gridmarket::GroupRow;

use crate::Scale;

/// Structured result of the Table 1 experiment.
#[derive(Clone, Debug)]
pub struct Table1 {
    /// Group rows: `[users 1–2, users 3–5]`.
    pub groups: Vec<GroupRow>,
    /// Per-user reports.
    pub users: Vec<gridmarket::UserReport>,
    /// Rendered report.
    pub rendered: String,
}

/// Scenario shared by Tables 1 and 2 (only the funding differs).
pub fn scenario(scale: Scale) -> Scenario {
    match scale {
        Scale::Paper => Scenario::builder()
            .seed(2006)
            .hosts(30)
            .chunk_minutes(212.0)
            .deadline_minutes(330)
            .horizon_hours(48),
        Scale::Quick => Scenario::builder()
            .seed(2006)
            .hosts(8)
            .chunk_minutes(8.0)
            .deadline_minutes(60)
            .horizon_hours(8),
    }
}

/// Sub-jobs per user at each scale.
pub fn subjobs(scale: Scale) -> u32 {
    match scale {
        Scale::Paper => 15,
        Scale::Quick => 4,
    }
}

/// Run the experiment.
pub fn run(scale: Scale) -> Table1 {
    let mut s = scenario(scale);
    for i in 0..5 {
        s = s.user(
            UserSetup::new(100.0)
                .subjobs(subjobs(scale))
                .label(&format!("user{}", i + 1)),
        );
    }
    let result = s.run().expect("table1 scenario");
    let groups = group_rows(&result.users, &[(0, 1, "1-2"), (2, 4, "3-5")]);
    let mut rendered = render_table("Table 1. Equal Distribution of Funds", &groups);
    rendered.push('\n');
    rendered.push_str(&render_users(&result.users));
    Table1 {
        groups,
        users: result.users,
        rendered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_matches_paper_shape() {
        let t = run(Scale::Quick);
        assert_eq!(t.groups.len(), 2);
        let early = &t.groups[0];
        let late = &t.groups[1];
        // Paper shape: later users get fewer (or equal) nodes…
        assert!(
            late.nodes <= early.nodes + 0.26,
            "late nodes {} vs early {}",
            late.nodes,
            early.nodes
        );
        // …and no better latency.
        assert!(
            late.latency_min_per_job >= early.latency_min_per_job * 0.9,
            "late latency {} vs early {}",
            late.latency_min_per_job,
            early.latency_min_per_job
        );
        // Cost rates are in the same ballpark (equal funding).
        assert!(late.cost_per_hour < early.cost_per_hour * 3.0);
        assert!(early.cost_per_hour < late.cost_per_hour * 3.0);
        // All jobs completed.
        for u in &t.users {
            assert_eq!(u.completed_subjobs, u.subjobs, "{:?}", u);
        }
    }

    #[test]
    fn rendered_table_has_both_groups() {
        let t = run(Scale::Quick);
        assert!(t.rendered.contains("1-2"));
        assert!(t.rendered.contains("3-5"));
        assert!(t.rendered.contains("Equal Distribution"));
    }
}
