//! Fig. 7 — Window approximation of Normal, Exponential and Beta
//! distributions (§5.4).
//!
//! "To measure how accurate our window approximation is we ran a
//! simulation of different distributions. Normal, Exponential and Beta
//! Distributions were given a time lag of half the window size. At this
//! point there is a maximum influence, or noise, from non-window data. The
//! noise was generated using a uniform random distribution." The paper
//! notes tight normals (σ < 20 % of mean) can shift slightly; otherwise
//! the approximations follow the actual distributions closely.

use gm_des::Pcg32;
use gm_numeric::samplers::{Beta, Exponential, Normal, Sampler, Uniform};
use gm_numeric::Histogram;
use gm_predict::window::DualWindowDistribution;

use crate::Scale;

/// One distribution's approximation-vs-measured comparison.
#[derive(Clone, Debug)]
pub struct DistReport {
    /// Label, e.g. "Norm(0.5,0.15)".
    pub label: &'static str,
    /// The dual-window approximation's proportions.
    pub approx: Vec<f64>,
    /// The measured (exact) proportions over the same brackets.
    pub measured: Vec<f64>,
    /// Total-variation distance between them.
    pub tv_distance: f64,
}

/// Structured result of the Fig. 7 experiment.
#[derive(Clone, Debug)]
pub struct Fig7 {
    /// Per-distribution reports.
    pub dists: Vec<DistReport>,
    /// Rendered report.
    pub rendered: String,
}

/// A boxed sampler drawing one value from a price distribution.
type BoxedSampler = Box<dyn Fn(&mut Pcg32) -> f64>;

/// Run the experiment.
pub fn run(scale: Scale) -> Fig7 {
    run_seeded(scale, 0xF167)
}

/// [`run`] with an explicit sampling seed (Monte-Carlo entry point).
pub fn run_seeded(scale: Scale, seed: u64) -> Fig7 {
    let (window, slots) = match scale {
        Scale::Paper => (2_000u64, 20usize),
        Scale::Quick => (400, 16),
    };
    let mut rng = Pcg32::new(seed, 7);

    let cases: Vec<(&'static str, BoxedSampler)> = vec![
        ("Norm(0.5,0.15)", {
            let d = Normal::new(0.5, 0.15);
            Box::new(move |r: &mut Pcg32| d.sample(r).max(0.0))
        }),
        ("Exp(2)", {
            let d = Exponential::new(2.0);
            Box::new(move |r: &mut Pcg32| d.sample(r))
        }),
        ("Beta(5,1)", {
            let d = Beta::new(5.0, 1.0);
            Box::new(move |r: &mut Pcg32| d.sample(r))
        }),
    ];

    let noise = Uniform::new(0.0, 1.0);
    let mut dists = Vec::new();
    for (label, sampler) in cases {
        let mut dw = DualWindowDistribution::new(window, slots, 1.0);
        // Half-window lag of pure uniform noise: maximum foreign influence.
        for _ in 0..(window / 2) {
            dw.add(noise.sample(&mut rng));
        }
        // The window's real samples.
        let mut real = Vec::with_capacity(window as usize);
        for _ in 0..window {
            let x = sampler(&mut rng);
            real.push(x);
            dw.add(x);
        }
        let approx = dw.proportions();
        let range = dw.slot_edges().last().expect("slots").1;
        let measured = Histogram::from_samples(0.0, range, slots, &real).proportions();
        let tv = 0.5
            * approx
                .iter()
                .zip(&measured)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>();
        dists.push(DistReport {
            label,
            approx,
            measured,
            tv_distance: tv,
        });
    }

    let mut rendered =
        String::from("Fig 7. Window approximation of Normal, Exponential and Beta distributions\n");
    for d in &dists {
        rendered.push_str(&format!("{:<16} TV distance {:.3}\n", d.label, d.tv_distance));
        rendered.push_str("  approx:   ");
        for p in &d.approx {
            rendered.push_str(&format!("{p:.3} "));
        }
        rendered.push_str("\n  measured: ");
        for p in &d.measured {
            rendered.push_str(&format!("{p:.3} "));
        }
        rendered.push('\n');
    }

    Fig7 { dists, rendered }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approximations_follow_actual_distributions() {
        let f = run(Scale::Quick);
        assert_eq!(f.dists.len(), 3);
        for d in &f.dists {
            assert!(
                d.tv_distance < 0.30,
                "{}: approximation too far (TV {:.3})",
                d.label,
                d.tv_distance
            );
            let sa: f64 = d.approx.iter().sum();
            let sm: f64 = d.measured.iter().sum();
            assert!((sa - 1.0).abs() < 1e-6 && (sm - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn beta51_is_right_heavy() {
        // Beta(5,1) mass concentrates near 1.
        let f = run(Scale::Quick);
        let beta = f.dists.iter().find(|d| d.label == "Beta(5,1)").unwrap();
        let n = beta.measured.len();
        let top_half: f64 = beta.measured[n / 2..].iter().sum();
        assert!(top_half > 0.8, "Beta(5,1) not right-heavy: {top_half}");
        let approx_top: f64 = beta.approx[n / 2..].iter().sum();
        assert!(approx_top > 0.5, "approximation lost the shape");
    }

    #[test]
    fn exp_is_left_heavy() {
        let f = run(Scale::Quick);
        let exp = f.dists.iter().find(|d| d.label == "Exp(2)").unwrap();
        let n = exp.measured.len();
        let bottom: f64 = exp.measured[..n / 2].iter().sum();
        assert!(bottom > 0.6, "Exp(2) not left-heavy: {bottom}");
    }
}
