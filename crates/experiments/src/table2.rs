//! Table 2 — Two-Point Distribution of Funds (§5.3).
//!
//! Users fund their jobs with 100, 100, 500, 500, 500 credits and a 5.5 h
//! deadline. The paper: "the jobs with a budget of 500 dollars caused the
//! earlier jobs to decrease their shares … this time the performance level
//! (latency) is better. We also see that these users pay a higher price
//! for their resource usage, as expected."

use gridmarket::report::{group_rows, render_table, render_users};
use gridmarket::scenario::UserSetup;
use gridmarket::GroupRow;

use crate::table1::{scenario, subjobs};
use crate::Scale;

/// Structured result of the Table 2 experiment.
#[derive(Clone, Debug)]
pub struct Table2 {
    /// Group rows: `[users 1–2 (100), users 3–5 (500)]`.
    pub groups: Vec<GroupRow>,
    /// Per-user reports.
    pub users: Vec<gridmarket::UserReport>,
    /// Rendered report.
    pub rendered: String,
}

/// Run the experiment.
pub fn run(scale: Scale) -> Table2 {
    let mut s = scenario(scale);
    let fundings = [100.0, 100.0, 500.0, 500.0, 500.0];
    for (i, &funding) in fundings.iter().enumerate() {
        s = s.user(
            UserSetup::new(funding)
                .subjobs(subjobs(scale))
                .label(&format!("user{}", i + 1)),
        );
    }
    let result = s.run().expect("table2 scenario");
    let groups = group_rows(&result.users, &[(0, 1, "1-2"), (2, 4, "3-5")]);
    let mut rendered = render_table("Table 2. Two-Point Distribution of Funds", &groups);
    rendered.push('\n');
    rendered.push_str(&render_users(&result.users));
    Table2 {
        groups,
        users: result.users,
        rendered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_funding_buys_better_latency_at_higher_cost() {
        let t = run(Scale::Quick);
        let low = &t.groups[0]; // users 1–2, 100 credits
        let high = &t.groups[1]; // users 3–5, 500 credits
        // The paper's headline: the well-funded late group completes
        // faster…
        assert!(
            high.time_hours <= low.time_hours,
            "500-credit group slower: {} vs {}",
            high.time_hours,
            low.time_hours
        );
        // …with better latency…
        assert!(
            high.latency_min_per_job <= low.latency_min_per_job,
            "500-credit group has worse latency"
        );
        // …and pays a higher hourly rate.
        assert!(
            high.cost_per_hour > low.cost_per_hour,
            "500-credit group should pay more per hour: {} vs {}",
            high.cost_per_hour,
            low.cost_per_hour
        );
        for u in &t.users {
            assert_eq!(u.completed_subjobs, u.subjobs);
        }
    }

    #[test]
    fn funding_contrast_vs_table1() {
        // Against Table 1 (all-equal), the rich group's latency must
        // improve.
        let t1 = crate::table1::run(Scale::Quick);
        let t2 = run(Scale::Quick);
        let late_equal = &t1.groups[1];
        let late_rich = &t2.groups[1];
        assert!(
            late_rich.latency_min_per_job <= late_equal.latency_min_per_job,
            "funding did not improve the late group: {} vs {}",
            late_rich.latency_min_per_job,
            late_equal.latency_min_per_job
        );
    }
}
