//! Schnorr signatures over `GF(2¹²⁷ − 1)` with deterministic nonces.
//!
//! Scheme (see the crate-level simulation-grade caveat):
//!
//! * keygen: secret `x ∈ Z_{p−1}`, public `y = g^x`.
//! * sign(m): `k = HMAC(x, m) mod (p−1)` (RFC 6979-flavoured), `r = g^k`,
//!   `e = H(r ‖ y ‖ m) mod (p−1)`, `s = k − e·x mod (p−1)`; signature `(e, s)`.
//! * verify: `r' = g^s·y^e`, accept iff `H(r' ‖ y ‖ m) ≡ e`.
//!
//! Binding the public key into the challenge hash prevents trivial
//! cross-key signature replay, which matters for transfer tokens
//! (`gm-grid::token`).

use crate::field;
use crate::hmac::hmac_sha256;
use crate::sha256::{sha256, Sha256};

/// A secret signing key.
#[derive(Clone, PartialEq, Eq)]
pub struct SecretKey {
    x: u128,
}

/// A public verification key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PublicKey {
    y: u128,
}

/// A signing/verification key pair.
#[derive(Clone)]
pub struct Keypair {
    /// The secret half.
    pub secret: SecretKey,
    /// The public half.
    pub public: PublicKey,
}

/// A Schnorr signature `(e, s)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Signature {
    e: u128,
    s: u128,
}

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SecretKey(<redacted>)")
    }
}

fn hash_to_scalar(parts: &[&[u8]]) -> u128 {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    let digest = h.finalize();
    let mut b = [0u8; 16];
    b.copy_from_slice(&digest[..16]);
    u128::from_be_bytes(b) % field::GROUP_ORDER
}

impl Keypair {
    /// Derive a key pair deterministically from 32 bytes of seed material.
    pub fn from_seed(seed: &[u8]) -> Keypair {
        let digest = sha256(seed);
        let mut b = [0u8; 16];
        b.copy_from_slice(&digest[..16]);
        // Ensure a non-trivial secret.
        let x = (u128::from_be_bytes(b) % (field::GROUP_ORDER - 2)) + 1;
        let y = field::pow(field::G, x);
        Keypair {
            secret: SecretKey { x },
            public: PublicKey { y },
        }
    }

    /// Sign a message with this key pair's secret key.
    pub fn sign(&self, message: &[u8]) -> Signature {
        self.secret.sign(message, &self.public)
    }
}

impl SecretKey {
    /// Sign `message`. `public` must be the matching public key (it is
    /// bound into the challenge).
    pub fn sign(&self, message: &[u8], public: &PublicKey) -> Signature {
        // Deterministic nonce from the secret key and message.
        let k_mac = hmac_sha256(&self.x.to_be_bytes(), message);
        let mut kb = [0u8; 16];
        kb.copy_from_slice(&k_mac[..16]);
        let k = (u128::from_be_bytes(kb) % (field::GROUP_ORDER - 2)) + 1;

        let r = field::pow(field::G, k);
        let e = hash_to_scalar(&[&r.to_be_bytes(), &public.y.to_be_bytes(), message]);
        let s = field::scalar_sub(k, field::scalar_mul(e, self.x));
        Signature { e, s }
    }
}

impl PublicKey {
    /// Verify `sig` over `message` against this public key.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        if sig.e >= field::GROUP_ORDER || sig.s >= field::GROUP_ORDER {
            return false;
        }
        let r = field::mul(field::pow(field::G, sig.s), field::pow(self.y, sig.e));
        let e = hash_to_scalar(&[&r.to_be_bytes(), &self.y.to_be_bytes(), message]);
        e == sig.e
    }

    /// Serialize as 16 big-endian bytes.
    pub fn to_bytes(&self) -> [u8; 16] {
        self.y.to_be_bytes()
    }

    /// Deserialize from 16 big-endian bytes. Rejects non-canonical values.
    pub fn from_bytes(b: &[u8; 16]) -> Option<PublicKey> {
        let y = u128::from_be_bytes(*b);
        if y == 0 || y >= field::P {
            return None;
        }
        Some(PublicKey { y })
    }

    /// A short hex fingerprint (first 8 bytes of SHA-256 of the key).
    pub fn fingerprint(&self) -> String {
        let d = sha256(&self.to_bytes());
        crate::sha256::hex(&d[..8])
    }
}

impl Signature {
    /// Serialize as 32 bytes (`e ‖ s`, big-endian).
    pub fn to_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        out[..16].copy_from_slice(&self.e.to_be_bytes());
        out[16..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Deserialize from 32 bytes. Rejects out-of-range scalars.
    pub fn from_bytes(b: &[u8; 32]) -> Option<Signature> {
        let mut eb = [0u8; 16];
        let mut sb = [0u8; 16];
        eb.copy_from_slice(&b[..16]);
        sb.copy_from_slice(&b[16..]);
        let e = u128::from_be_bytes(eb);
        let s = u128::from_be_bytes(sb);
        if e >= field::GROUP_ORDER || s >= field::GROUP_ORDER {
            return None;
        }
        Some(Signature { e, s })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kp(seed: &[u8]) -> Keypair {
        Keypair::from_seed(seed)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let keys = kp(b"user-alpha");
        let sig = keys.sign(b"transfer 100 credits to broker");
        assert!(keys.public.verify(b"transfer 100 credits to broker", &sig));
    }

    #[test]
    fn tampered_message_rejected() {
        let keys = kp(b"user-beta");
        let sig = keys.sign(b"amount=100");
        assert!(!keys.public.verify(b"amount=999", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let a = kp(b"alice");
        let b = kp(b"bob");
        let sig = a.sign(b"hello");
        assert!(!b.public.verify(b"hello", &sig));
    }

    #[test]
    fn signature_is_deterministic() {
        let keys = kp(b"carol");
        let s1 = keys.sign(b"msg");
        let s2 = keys.sign(b"msg");
        assert_eq!(s1, s2);
        assert_ne!(s1, keys.sign(b"other"));
    }

    #[test]
    fn keygen_is_deterministic_and_seed_sensitive() {
        assert_eq!(kp(b"x").public, kp(b"x").public);
        assert_ne!(kp(b"x").public, kp(b"y").public);
    }

    #[test]
    fn signature_bytes_roundtrip() {
        let keys = kp(b"dave");
        let sig = keys.sign(b"data");
        let back = Signature::from_bytes(&sig.to_bytes()).unwrap();
        assert_eq!(sig, back);
        assert!(keys.public.verify(b"data", &back));
    }

    #[test]
    fn public_key_bytes_roundtrip() {
        let keys = kp(b"erin");
        let back = PublicKey::from_bytes(&keys.public.to_bytes()).unwrap();
        assert_eq!(keys.public, back);
    }

    #[test]
    fn public_key_rejects_invalid_encoding() {
        assert!(PublicKey::from_bytes(&[0u8; 16]).is_none());
        assert!(PublicKey::from_bytes(&[0xffu8; 16]).is_none());
    }

    #[test]
    fn signature_rejects_out_of_range_scalars() {
        let mut b = [0xffu8; 32];
        assert!(Signature::from_bytes(&b).is_none());
        b = [0u8; 32];
        assert!(Signature::from_bytes(&b).is_some());
    }

    #[test]
    fn corrupted_signature_rejected() {
        let keys = kp(b"frank");
        let sig = keys.sign(b"payload");
        let mut bytes = sig.to_bytes();
        bytes[20] ^= 0x01;
        if let Some(bad) = Signature::from_bytes(&bytes) {
            assert!(!keys.public.verify(b"payload", &bad));
        }
    }

    #[test]
    fn cross_key_replay_fails() {
        // The same (e,s) pair must not verify under a different public key,
        // because the public key is bound into the challenge.
        let a = kp(b"payer-a");
        let b = kp(b"payer-b");
        let msg = b"token #42: 500 credits";
        let sig = a.sign(msg);
        assert!(a.public.verify(msg, &sig));
        assert!(!b.public.verify(msg, &sig));
    }

    #[test]
    fn fingerprint_is_stable_and_short() {
        let f = kp(b"grace").public.fingerprint();
        assert_eq!(f.len(), 16);
        assert_eq!(f, kp(b"grace").public.fingerprint());
    }

    #[test]
    fn empty_message_signs() {
        let keys = kp(b"henry");
        let sig = keys.sign(b"");
        assert!(keys.public.verify(b"", &sig));
        assert!(!keys.public.verify(b"x", &sig));
    }

    #[test]
    fn debug_does_not_leak_secret() {
        let keys = kp(b"ivy");
        let dbg = format!("{:?}", keys.secret);
        assert!(dbg.contains("redacted"));
    }
}
