//! HMAC-SHA256 (RFC 2104), validated against the RFC 4231 test vectors.

use crate::sha256::{sha256, Sha256};

const BLOCK: usize = 64;

/// Compute `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    // Keys longer than the block size are hashed first.
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        k[..32].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0u8; BLOCK];
    let mut opad = [0u8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] = k[i] ^ 0x36;
        opad[i] = k[i] ^ 0x5c;
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time-ish comparison of two MACs. (Best effort; good enough for
/// the simulator, see the crate-level caveat.)
pub fn verify_mac(expected: &[u8; 32], actual: &[u8; 32]) -> bool {
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(actual) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::hex;

    /// RFC 4231, Test Case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    /// RFC 4231, Test Case 2 (short key).
    #[test]
    fn rfc4231_case2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    /// RFC 4231, Test Case 3 (0xaa key, 0xdd data).
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    /// RFC 4231, Test Case 6 (key longer than block size).
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let mac = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_mac_accepts_equal_rejects_diff() {
        let a = hmac_sha256(b"k", b"m");
        let mut b = a;
        assert!(verify_mac(&a, &b));
        b[31] ^= 1;
        assert!(!verify_mac(&a, &b));
    }

    #[test]
    fn key_sensitivity() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }
}
