//! # gm-crypto — hashes, MACs and simulation-grade signatures
//!
//! The paper's security model (§3.1) needs three primitives: a collision-
//! resistant hash (receipt ids, token fingerprints), a MAC (bank-internal
//! integrity), and a public-key signature scheme (Grid identities signing
//! `receipt ‖ DN` bindings, bank-signed transfer receipts).
//!
//! * [`sha256()`] / [`Sha256`] — a from-scratch FIPS 180-4 SHA-256 with the
//!   standard test vectors.
//! * [`hmac_sha256`] — RFC 2104 HMAC over it, checked against RFC 4231.
//! * [`sig`] — a Schnorr signature over the multiplicative group of the
//!   Mersenne field `GF(2¹²⁷ − 1)` with deterministic (RFC 6979-flavoured)
//!   nonces.
//!
//! ## ⚠ Simulation-grade, not production crypto
//!
//! The paper's deployment used Grid PKI (X.509 / GSI). Reimplementing
//! production-hardened crypto is out of scope for a scheduling-systems
//! reproduction; what matters here is that the *protocol* — sign, verify,
//! reject double-spends, bind capabilities to identities — is executed
//! end-to-end with real (if small) keys. The Schnorr group is ~126 bits
//! and the implementation is not constant-time. Do not reuse outside this
//! simulator. (Documented in `DESIGN.md` §2.)

pub mod field;
pub mod hmac;
pub mod sha256;
pub mod sig;

pub use hmac::hmac_sha256;
pub use sha256::{sha256, Sha256};
pub use sig::{Keypair, PublicKey, SecretKey, Signature};
