//! Arithmetic in the Mersenne prime field `GF(p)`, `p = 2¹²⁷ − 1`, and in
//! the exponent ring `Z_{p−1}`.
//!
//! `p = 2¹²⁷ − 1` is the Mersenne prime M127, which makes modular reduction
//! a fold: `2¹²⁷ ≡ 1 (mod p)`, so a 254-bit product reduces with two shifts
//! and adds. Elements are `u128` values in `[0, p)`.

/// The field modulus `p = 2¹²⁷ − 1` (Mersenne prime M127).
pub const P: u128 = (1u128 << 127) - 1;

/// Order of the full multiplicative group, `p − 1`.
pub const GROUP_ORDER: u128 = P - 1;

/// Generator used by the signature scheme. Schnorr verification holds for
/// any group element (exponent arithmetic is done mod `p − 1`, a multiple
/// of the element's order), so we simply pick a small non-trivial element.
pub const G: u128 = 7;

const MASK: u128 = P; // low 127 bits

/// Fold a value into `[0, p)` using `2¹²⁷ ≡ 1 (mod p)`.
#[inline]
fn fold(mut x: u128) -> u128 {
    // At most two folds are needed for inputs below 2^128.
    x = (x >> 127) + (x & MASK);
    x = (x >> 127) + (x & MASK);
    if x >= P {
        x - P
    } else {
        x
    }
}

/// Addition mod `p`.
#[inline]
pub fn add(a: u128, b: u128) -> u128 {
    debug_assert!(a < P && b < P);
    // a + b < 2^128: a single fold suffices.
    fold(a.wrapping_add(b))
}

/// Subtraction mod `p`.
#[inline]
pub fn sub(a: u128, b: u128) -> u128 {
    debug_assert!(a < P && b < P);
    if a >= b {
        a - b
    } else {
        a + P - b
    }
}

/// Multiplication mod `p` via 64-bit limb products and Mersenne folding.
pub fn mul(a: u128, b: u128) -> u128 {
    debug_assert!(a < P && b < P);
    let (a1, a0) = ((a >> 64) as u64, a as u64);
    let (b1, b0) = ((b >> 64) as u64, b as u64);

    let p00 = (a0 as u128) * (b0 as u128); // < 2^128
    let p01 = (a0 as u128) * (b1 as u128); // < 2^127
    let p10 = (a1 as u128) * (b0 as u128); // < 2^127
    let p11 = (a1 as u128) * (b1 as u128); // < 2^126

    // cross = p01 + p10 < 2^128 — no overflow.
    let cross = p01 + p10;

    // total = p11·2^128 + cross·2^64 + p00.
    // Using 2^127 ≡ 1: 2^128 ≡ 2, and cross·2^64 splits into
    // (cross >> 63)·2^127 + (cross & (2^63−1))·2^64
    //   ≡ (cross >> 63) + (cross_low63 << 64).
    let term_hi = fold(p11) << 1; // p11·2 < 2^127: safe
    let cross_hi = cross >> 63; // ≤ 2^65
    let cross_lo = (cross & ((1u128 << 63) - 1)) << 64; // < 2^127
    // Sum pairwise through `add` — a direct 4-term sum of <2^127 values
    // could overflow u128.
    add(add(fold(term_hi + cross_hi), fold(cross_lo)), fold(p00))
}

/// Exponentiation `base^exp mod p` by square-and-multiply.
pub fn pow(mut base: u128, mut exp: u128) -> u128 {
    debug_assert!(base < P);
    let mut acc: u128 = 1;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul(acc, base);
        }
        base = mul(base, base);
        exp >>= 1;
    }
    acc
}

/// Multiplication in the exponent ring `Z_{p−1}` (arbitrary modulus, so we
/// use shift-and-add; only used at signing time).
pub fn scalar_mul(a: u128, b: u128) -> u128 {
    let m = GROUP_ORDER;
    let (mut a, mut b) = (a % m, b % m);
    let mut acc: u128 = 0;
    while b > 0 {
        if b & 1 == 1 {
            acc = addmod(acc, a, m);
        }
        a = addmod(a, a, m);
        b >>= 1;
    }
    acc
}

/// Addition in `Z_{p−1}`.
pub fn scalar_add(a: u128, b: u128) -> u128 {
    addmod(a % GROUP_ORDER, b % GROUP_ORDER, GROUP_ORDER)
}

/// Subtraction in `Z_{p−1}`.
pub fn scalar_sub(a: u128, b: u128) -> u128 {
    let (a, b) = (a % GROUP_ORDER, b % GROUP_ORDER);
    if a >= b {
        a - b
    } else {
        a + GROUP_ORDER - b
    }
}

#[inline]
fn addmod(a: u128, b: u128, m: u128) -> u128 {
    debug_assert!(a < m && b < m);
    // m < 2^127 so a + b < 2^128: no overflow.
    let s = a + b;
    if s >= m {
        s - m
    } else {
        s
    }
}

/// Interpret 16 big-endian bytes as a field element (reduced mod p).
pub fn from_bytes(bytes: &[u8; 16]) -> u128 {
    fold(u128::from_be_bytes(*bytes))
}

/// Serialize a field element as 16 big-endian bytes.
pub fn to_bytes(x: u128) -> [u8; 16] {
    debug_assert!(x < P || x < u128::MAX); // elements and scalars both fit
    x.to_be_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_reduces_correctly() {
        assert_eq!(fold(P), 0);
        assert_eq!(fold(P + 1), 1);
        assert_eq!(fold(0), 0);
        assert_eq!(fold(u128::MAX), u128::MAX - 2 * P); // 2^128−1 = 2p+1 → 1
        assert_eq!(fold(u128::MAX), 1);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = P - 5;
        let b = 123456789u128;
        let s = add(a, b);
        assert_eq!(sub(s, b), a);
        assert_eq!(sub(s, a), b);
        assert_eq!(add(P - 1, 1), 0);
    }

    #[test]
    fn mul_small_values() {
        assert_eq!(mul(3, 4), 12);
        assert_eq!(mul(0, 99), 0);
        assert_eq!(mul(1, P - 1), P - 1);
    }

    #[test]
    fn mul_wraparound_identities() {
        // (p−1)² ≡ 1 (mod p) since p−1 ≡ −1.
        assert_eq!(mul(P - 1, P - 1), 1);
        // (p−2)·2 = 2p−4 ≡ p−4.
        assert_eq!(mul(P - 2, 2), P - 4);
    }

    #[test]
    fn mul_matches_naive_for_64bit_inputs() {
        // For inputs < 2^63 the product fits u128 and we can check directly.
        let cases = [
            (0x1234_5678_9abc_def0u128, 0x0fed_cba9_8765_4321u128),
            ((1u128 << 62) + 12345, (1u128 << 62) + 67890),
            (999_999_999_999u128, 888_888_888_888u128),
        ];
        for (a, b) in cases {
            assert_eq!(mul(a, b), (a * b) % P, "a={a:#x} b={b:#x}");
        }
    }

    #[test]
    fn mul_is_commutative_and_associative_spotcheck() {
        let xs = [
            P - 1,
            P / 2,
            0xdead_beef_dead_beef_dead_beef_dead_beefu128 % P,
            12345,
            (1u128 << 126) + 999,
        ];
        for &a in &xs {
            for &b in &xs {
                assert_eq!(mul(a, b), mul(b, a));
                for &c in &xs {
                    assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn distributive_law_spotcheck() {
        let a = P - 12345;
        let b = (1u128 << 100) + 77;
        let c = (1u128 << 120) + 3;
        assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
    }

    #[test]
    fn pow_basics() {
        assert_eq!(pow(2, 10), 1024);
        assert_eq!(pow(5, 0), 1);
        assert_eq!(pow(0, 5), 0);
        assert_eq!(pow(1, u128::MAX >> 1), 1);
    }

    #[test]
    fn fermat_little_theorem() {
        // a^(p−1) ≡ 1 for a ≠ 0.
        for a in [2u128, 3, 7, 1234567, P - 2] {
            assert_eq!(pow(a, GROUP_ORDER), 1, "a={a}");
        }
    }

    #[test]
    fn pow_adds_exponents() {
        let a = 987654321u128;
        let x = 0xabcdefu128;
        let y = 0x123456u128;
        assert_eq!(mul(pow(a, x), pow(a, y)), pow(a, x + y));
    }

    #[test]
    fn scalar_ring_ops() {
        assert_eq!(scalar_add(GROUP_ORDER - 1, 2), 1);
        assert_eq!(scalar_sub(1, 2), GROUP_ORDER - 1);
        assert_eq!(scalar_mul(3, 5), 15);
        // (m−1)² mod m = 1
        assert_eq!(scalar_mul(GROUP_ORDER - 1, GROUP_ORDER - 1), 1);
    }

    #[test]
    fn schnorr_core_identity() {
        // g^s·y^e == g^k where s = k − e·x (mod p−1), y = g^x.
        let x = 0x1111_2222_3333_4444_5555u128;
        let k = 0x9999_8888_7777_6666u128;
        let e = 0xabcd_ef01_2345u128;
        let y = pow(G, x);
        let s = scalar_sub(k, scalar_mul(e, x));
        let lhs = mul(pow(G, s), pow(y, e));
        let rhs = pow(G, k);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn bytes_roundtrip() {
        let x = (1u128 << 126) + 424242;
        assert_eq!(from_bytes(&to_bytes(x)), x);
        // Values ≥ p wrap on decode.
        assert_eq!(from_bytes(&to_bytes(P)), 0);
    }
}
