//! Autocorrelation and the Levinson-Durbin solver for Yule-Walker systems.
//!
//! The paper's AR(k) price model (§4.3) is fit in three steps: compute the
//! unbiased sample autocorrelation `R(k)`, assemble the Yule-Walker
//! equations `L·α = r` with the Toeplitz matrix `L[i][j] = R(i−j)`, and
//! solve by the Levinson reformulation — exactly what
//! [`levinson_durbin`]/[`yule_walker`] implement.

/// Unbiased sample autocovariance of `x` at lag `k`, computed on deviations
/// from the sample mean:
///
/// `R(k) = 1/(N−k) · Σ_{n=0}^{N−k−1} (x[n+k]−μ)(x[n]−μ)`
///
/// # Panics
/// Panics if `k >= x.len()`.
pub fn autocorrelation(x: &[f64], k: usize) -> f64 {
    assert!(k < x.len(), "lag {k} >= series length {}", x.len());
    let n = x.len();
    let mu = x.iter().sum::<f64>() / n as f64;
    let mut acc = 0.0;
    for i in 0..(n - k) {
        acc += (x[i + k] - mu) * (x[i] - mu);
    }
    acc / (n - k) as f64
}

/// All autocovariances `R(0)..=R(max_lag)` in one pass over the mean,
/// using the paper's *unbiased* `1/(N−k)` normalization.
pub fn autocorrelations(x: &[f64], max_lag: usize) -> Vec<f64> {
    autocovariance_impl(x, max_lag, false)
}

/// Biased (`1/N`) autocovariances. Unlike the unbiased estimator, this
/// sequence is always positive semi-definite, so Levinson-Durbin yields a
/// *stationary* AR model (all reflection coefficients in (−1, 1)) — which
/// is why [`yule_walker`] fits on it.
pub fn autocorrelations_biased(x: &[f64], max_lag: usize) -> Vec<f64> {
    autocovariance_impl(x, max_lag, true)
}

fn autocovariance_impl(x: &[f64], max_lag: usize, biased: bool) -> Vec<f64> {
    assert!(max_lag < x.len(), "max_lag >= series length");
    let n = x.len();
    let mu = x.iter().sum::<f64>() / n as f64;
    let dev: Vec<f64> = x.iter().map(|v| v - mu).collect();
    (0..=max_lag)
        .map(|k| {
            let mut acc = 0.0;
            for i in 0..(n - k) {
                acc += dev[i + k] * dev[i];
            }
            acc / if biased { n as f64 } else { (n - k) as f64 }
        })
        .collect()
}

/// Solve the Yule-Walker equations for AR coefficients given autocovariances
/// `r[0..=k]` (so `r.len() = order + 1`). Returns `(coefficients, final
/// prediction error variance)`, or `None` when the recursion breaks down
/// (`r[0] ≈ 0` or a prediction error hits zero — a perfectly predictable or
/// constant series).
///
/// The forecast convention matches the paper:
/// `x̂[t] = μ + Σ_{j=1..k} α[j−1]·(x[t−j] − μ)`.
pub fn levinson_durbin(r: &[f64]) -> Option<(Vec<f64>, f64)> {
    assert!(r.len() >= 2, "need at least r[0], r[1]");
    let order = r.len() - 1;
    if r[0].abs() < 1e-300 {
        return None;
    }
    let mut a = vec![0.0f64; order];
    let mut e = r[0];

    for m in 1..=order {
        let mut acc = r[m];
        for j in 1..m {
            acc -= a[j - 1] * r[m - j];
        }
        // Clamp the reflection coefficient for numerical safety; with a
        // PSD autocovariance |κ| < 1 holds mathematically, but round-off
        // (or a caller passing unbiased estimates) can nudge it out.
        let kappa = (acc / e).clamp(-0.9999, 0.9999);
        // Update coefficients: a'_j = a_j − κ·a_{m−j}
        let prev = a.clone();
        a[m - 1] = kappa;
        for j in 1..m {
            a[j - 1] = prev[j - 1] - kappa * prev[m - j - 1];
        }
        e *= 1.0 - kappa * kappa;
        if e <= 0.0 {
            // Perfectly predictable at order m: the recursion cannot
            // continue, but the coefficients found so far form a valid
            // (truncated) model — remaining lags stay zero.
            return Some((a, 0.0));
        }
    }
    Some((a, e))
}

/// Fit an AR(`order`) model to `x` by Yule-Walker / Levinson-Durbin.
/// Returns `(coefficients, noise variance, series mean)`.
///
/// # Panics
/// Panics unless `order >= 1` and `x.len() > order`.
pub fn yule_walker(x: &[f64], order: usize) -> Option<(Vec<f64>, f64, f64)> {
    assert!(order >= 1, "AR order must be >= 1");
    assert!(x.len() > order, "series shorter than AR order");
    let r = autocorrelations_biased(x, order);
    let mu = x.iter().sum::<f64>() / x.len() as f64;
    levinson_durbin(&r).map(|(a, e)| (a, e, mu))
}

/// One-step-ahead AR forecast given the model `(coeffs, mean)` and the most
/// recent history (oldest first). Uses as many coefficients as history allows.
pub fn ar_forecast(coeffs: &[f64], mean: f64, history: &[f64]) -> f64 {
    let mut acc = mean;
    for (j, &a) in coeffs.iter().enumerate() {
        // coefficient j applies to x[t-(j+1)]
        if j + 1 > history.len() {
            break;
        }
        let x = history[history.len() - 1 - j];
        acc += a * (x - mean);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_des::{Pcg32, Rng64};

    #[test]
    fn autocovariance_of_constant_is_zero() {
        let x = vec![3.0; 50];
        assert_eq!(autocorrelation(&x, 0), 0.0);
        assert_eq!(autocorrelation(&x, 5), 0.0);
    }

    #[test]
    fn lag_zero_is_variance() {
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let mu = 3.0;
        let var: f64 = x.iter().map(|v| (v - mu) * (v - mu)).sum::<f64>() / 5.0;
        assert!((autocorrelation(&x, 0) - var).abs() < 1e-12);
    }

    #[test]
    fn autocorrelations_match_single_calls() {
        let x: Vec<f64> = (0..100).map(|i| ((i * 7) % 13) as f64).collect();
        let all = autocorrelations(&x, 6);
        for (k, a) in all.iter().enumerate() {
            assert!((a - autocorrelation(&x, k)).abs() < 1e-12);
        }
    }

    /// Generate an AR(2) process with known coefficients and check recovery.
    #[test]
    fn recovers_ar2_coefficients() {
        let (a1, a2) = (0.6, -0.3);
        let mut rng = Pcg32::seed_from_u64(77);
        let n = 50_000;
        let mut x = vec![0.0f64; n];
        for i in 2..n {
            let noise = {
                // Box-Muller-free: sum of uniforms is close enough to normal
                // for coefficient recovery; use 12-sum method.
                let s: f64 = (0..12).map(|_| rng.next_f64()).sum();
                s - 6.0
            };
            x[i] = a1 * x[i - 1] + a2 * x[i - 2] + noise;
        }
        let (coeffs, e, mu) = yule_walker(&x, 2).unwrap();
        assert!((coeffs[0] - a1).abs() < 0.02, "a1 {}", coeffs[0]);
        assert!((coeffs[1] - a2).abs() < 0.02, "a2 {}", coeffs[1]);
        assert!(e > 0.0);
        assert!(mu.abs() < 0.2);
    }

    #[test]
    fn ar1_of_white_noise_is_near_zero() {
        let mut rng = Pcg32::seed_from_u64(5);
        let x: Vec<f64> = (0..20_000).map(|_| rng.next_f64()).collect();
        let (coeffs, _, _) = yule_walker(&x, 1).unwrap();
        assert!(coeffs[0].abs() < 0.03, "white noise a1 = {}", coeffs[0]);
    }

    #[test]
    fn constant_series_returns_none() {
        let x = vec![2.5; 100];
        assert!(yule_walker(&x, 3).is_none());
    }

    #[test]
    fn forecast_uses_coefficients() {
        // Pure AR(1) with a1 = 0.5, mean 10: x̂ = 10 + 0.5(x_last − 10)
        let f = ar_forecast(&[0.5], 10.0, &[8.0, 12.0]);
        assert!((f - 11.0).abs() < 1e-12);
    }

    #[test]
    fn forecast_with_short_history_degrades_gracefully() {
        let f = ar_forecast(&[0.5, 0.2, 0.1], 0.0, &[4.0]);
        assert!((f - 2.0).abs() < 1e-12); // only the lag-1 term applies
    }

    #[test]
    fn forecast_of_mean_reverting_series() {
        // History exactly at mean ⇒ forecast is mean.
        let f = ar_forecast(&[0.9, -0.2], 5.0, &[5.0, 5.0, 5.0]);
        assert_eq!(f, 5.0);
    }

    #[test]
    fn levinson_agrees_with_direct_solve() {
        // Small SPD Toeplitz system solved both ways.
        let r = vec![4.0, 2.0, 1.0, 0.5];
        let (a, _e) = levinson_durbin(&r).unwrap();
        // Direct check: L·a = r[1..] with L[i][j] = r[|i−j|]
        let k = 3;
        for i in 0..k {
            let mut acc = 0.0;
            for j in 0..k {
                acc += r[(i as isize - j as isize).unsigned_abs()] * a[j];
            }
            assert!((acc - r[i + 1]).abs() < 1e-10, "row {i}: {acc} vs {}", r[i + 1]);
        }
    }

    #[test]
    #[should_panic(expected = "AR order must be >= 1")]
    fn order_zero_rejected() {
        yule_walker(&[1.0, 2.0, 3.0], 0);
    }
}
