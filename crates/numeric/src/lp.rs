//! Linear programming: a dense two-phase simplex solver and an auction
//! algorithm for assignment structure.
//!
//! This is the numerical substrate of the optimization-based allocation
//! tier (DESIGN.md §14): the welfare-maximizing allocator compiles SLA
//! value curves and capacity constraints into an [`Lp`], and VCG pricing
//! re-solves it once per leave-one-out economy. Like the rest of
//! `gm-numeric` the solver is implemented from scratch against published
//! algorithms — no external dependency — and is **deterministic**: the
//! same program yields the bit-identical solution on every run, thread
//! count, and platform with IEEE-754 doubles, because every pivot choice
//! is made by Bland's anti-cycling rule (lowest eligible index) over a
//! fixed iteration order.
//!
//! * [`Lp`] — problem builder: maximize `c·x` subject to `≤`/`=`/`≥`
//!   rows and `x ≥ 0`.
//! * [`Lp::solve`] — two-phase primal simplex on a dense tableau.
//!   Phase 1 drives artificial variables out (detecting infeasibility);
//!   phase 2 optimizes. Bland's rule guarantees termination on
//!   degenerate programs; an iteration cap converts a hypothetical
//!   stall into [`LpOutcome::IterationLimit`] instead of a hang.
//! * [`Solution::duals`] — the dual vector `y` read off the final
//!   tableau, so callers (and the property suite) can check weak and
//!   strong duality: `c·x* = y*·b` at optimality.
//! * [`assignment_auction`] — Bertsekas' auction algorithm with
//!   ε-scaling for pure assignment structure (each person gets exactly
//!   one object): O(n²·m) in practice and exact to `n·ε` — the
//!   specialized path when the allocation problem degenerates to a
//!   matching, cross-validated against the simplex in the test suite.

/// Comparison sense of one constraint row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `a·x ≤ b`
    Le,
    /// `a·x = b`
    Eq,
    /// `a·x ≥ b`
    Ge,
}

/// One constraint row in sparse builder form.
type Row = (Vec<(usize, f64)>, Cmp, f64);

/// A linear program in builder form: maximize `c·x` s.t. rows, `x ≥ 0`.
#[derive(Clone, Debug)]
pub struct Lp {
    vars: usize,
    objective: Vec<f64>,
    rows: Vec<Row>,
}

/// Solver outcome: the three terminal LP statuses plus the anti-hang cap.
#[derive(Clone, Debug)]
pub enum LpOutcome {
    /// An optimal basic solution was found.
    Optimal(Solution),
    /// No point satisfies the constraints.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
    /// The pivot cap was hit (practically unreachable under Bland's
    /// rule; returned instead of looping so callers never hang).
    IterationLimit,
}

impl LpOutcome {
    /// The solution, if optimal.
    pub fn optimal(self) -> Option<Solution> {
        match self {
            LpOutcome::Optimal(s) => Some(s),
            _ => None,
        }
    }
}

/// An optimal basic solution with its dual certificate.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Optimal objective value `c·x*`.
    pub objective: f64,
    /// Primal solution, one value per declared variable.
    pub x: Vec<f64>,
    /// Dual values, one per constraint row, signed so that strong
    /// duality reads `objective == Σ duals[i]·b[i]`. For a maximization
    /// with `≤` rows the duals are ≥ 0, with `≥` rows ≤ 0; equality
    /// rows are unrestricted.
    pub duals: Vec<f64>,
}

impl Lp {
    /// A program over `vars` non-negative variables (objective all 0).
    pub fn new(vars: usize) -> Lp {
        Lp {
            vars,
            objective: vec![0.0; vars],
            rows: Vec::new(),
        }
    }

    /// Number of declared variables.
    pub fn vars(&self) -> usize {
        self.vars
    }

    /// Number of constraint rows.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Set one objective coefficient (maximization).
    ///
    /// # Panics
    /// Panics if `var` is out of range or `c` is not finite.
    pub fn maximize(&mut self, var: usize, c: f64) -> &mut Self {
        assert!(var < self.vars, "objective var {var} out of range");
        assert!(c.is_finite(), "objective coefficient must be finite");
        self.objective[var] = c;
        self
    }

    /// Add a constraint `Σ coeffs·x  cmp  rhs`. Sparse coefficients:
    /// `(var, coefficient)` pairs; repeated vars accumulate.
    ///
    /// # Panics
    /// Panics on out-of-range vars or non-finite coefficients/rhs.
    pub fn constrain(&mut self, coeffs: &[(usize, f64)], cmp: Cmp, rhs: f64) -> &mut Self {
        assert!(rhs.is_finite(), "constraint rhs must be finite");
        for &(v, c) in coeffs {
            assert!(v < self.vars, "constraint var {v} out of range");
            assert!(c.is_finite(), "constraint coefficient must be finite");
        }
        self.rows.push((coeffs.to_vec(), cmp, rhs));
        self
    }

    /// Solve with the two-phase dense simplex (Bland's rule throughout).
    pub fn solve(&self) -> LpOutcome {
        Tableau::build(self).solve()
    }
}

/// Feasibility/optimality tolerance: pivots smaller than this are
/// treated as zero, reduced costs within it as optimal.
const EPS: f64 = 1e-9;

/// Dense simplex tableau. Column layout: `[structural | slack/surplus |
/// artificial | rhs]`; row `m` is the objective (phase-dependent).
struct Tableau {
    /// Rows × (cols + 1) coefficients, row-major; last entry per row is
    /// the rhs.
    a: Vec<f64>,
    /// Constraint rows.
    m: usize,
    /// Total columns excluding rhs.
    cols: usize,
    /// Structural (caller-declared) variable count.
    n: usize,
    /// First artificial column (columns ≥ this are phase-1-only).
    art0: usize,
    /// Basic variable (column) of each row.
    basis: Vec<usize>,
    /// Phase-2 objective row (maximization, full column width + rhs).
    cost: Vec<f64>,
    /// Constraint sense of each row, for dual sign recovery.
    senses: Vec<Cmp>,
    /// Column of each row's slack/surplus/artificial "reader" used to
    /// extract the dual value for that row.
    dual_col: Vec<usize>,
    /// Sign to apply to the reduced cost at `dual_col` to get the dual.
    dual_sign: Vec<f64>,
}

impl Tableau {
    /// Assemble the phase-1 tableau: rhs made non-negative by row
    /// negation, slack/surplus columns for inequality rows, artificial
    /// columns for `=`/`≥` rows (and for `≤` rows whose slack starts
    /// negative after negation — handled by the negation itself turning
    /// them into `≥`).
    fn build(lp: &Lp) -> Tableau {
        let m = lp.rows.len();
        let n = lp.vars;
        // After normalizing rhs ≥ 0, count slack and artificial columns.
        let mut norm: Vec<Row> = Vec::with_capacity(m);
        for (coeffs, cmp, rhs) in &lp.rows {
            if *rhs < 0.0 {
                let flipped: Vec<(usize, f64)> = coeffs.iter().map(|&(v, c)| (v, -c)).collect();
                let cmp = match cmp {
                    Cmp::Le => Cmp::Ge,
                    Cmp::Ge => Cmp::Le,
                    Cmp::Eq => Cmp::Eq,
                };
                norm.push((flipped, cmp, -rhs));
            } else {
                norm.push((coeffs.clone(), *cmp, *rhs));
            }
        }
        let slacks = norm.iter().filter(|(_, c, _)| *c != Cmp::Eq).count();
        let arts = norm.iter().filter(|(_, c, _)| *c != Cmp::Le).count();
        let art0 = n + slacks;
        let cols = art0 + arts;
        let stride = cols + 1;
        let mut a = vec![0.0; m * stride];
        let mut basis = vec![0usize; m];
        let mut senses = vec![Cmp::Le; m];
        let mut dual_col = vec![0usize; m];
        let mut dual_sign = vec![1.0; m];
        let mut next_slack = n;
        let mut next_art = art0;
        for (i, (coeffs, cmp, rhs)) in norm.iter().enumerate() {
            let row = &mut a[i * stride..(i + 1) * stride];
            for &(v, c) in coeffs {
                row[v] += c;
            }
            row[cols] = *rhs;
            senses[i] = *cmp;
            match cmp {
                Cmp::Le => {
                    row[next_slack] = 1.0;
                    basis[i] = next_slack;
                    dual_col[i] = next_slack;
                    dual_sign[i] = 1.0;
                    next_slack += 1;
                }
                Cmp::Ge => {
                    row[next_slack] = -1.0;
                    dual_col[i] = next_slack;
                    dual_sign[i] = -1.0;
                    next_slack += 1;
                    row[next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
                Cmp::Eq => {
                    row[next_art] = 1.0;
                    basis[i] = next_art;
                    // The dual of an equality row is read from its
                    // artificial column's reduced cost in phase 2.
                    dual_col[i] = next_art;
                    dual_sign[i] = 1.0;
                    next_art += 1;
                }
            }
        }
        let mut cost = vec![0.0; stride];
        cost[..n].copy_from_slice(&lp.objective);
        Tableau {
            a,
            m,
            cols,
            n,
            art0,
            basis,
            cost,
            senses,
            dual_col,
            dual_sign,
        }
    }

    #[inline]
    fn row(&self, i: usize) -> &[f64] {
        &self.a[i * (self.cols + 1)..(i + 1) * (self.cols + 1)]
    }

    /// Pivot on `(r, c)`: scale row `r` so column `c` becomes 1, then
    /// eliminate column `c` from every other row and from `z`.
    fn pivot(&mut self, r: usize, c: usize, z: &mut [f64]) {
        let stride = self.cols + 1;
        let piv = self.a[r * stride + c];
        debug_assert!(piv.abs() > EPS, "pivot too small");
        let inv = 1.0 / piv;
        for j in 0..stride {
            self.a[r * stride + j] *= inv;
        }
        // Borrow-split: copy the pivot row once, then eliminate.
        let prow: Vec<f64> = self.a[r * stride..(r + 1) * stride].to_vec();
        for i in 0..self.m {
            if i == r {
                continue;
            }
            let f = self.a[i * stride + c];
            if f == 0.0 {
                continue;
            }
            for (j, &p) in prow.iter().enumerate() {
                self.a[i * stride + j] -= f * p;
            }
            // Re-zero the pivot column exactly: the arithmetic above
            // leaves an O(ulp) residue that Bland's rule would otherwise
            // have to tolerate.
            self.a[i * stride + c] = 0.0;
        }
        let f = z[c];
        if f != 0.0 {
            for (zj, &p) in z.iter_mut().zip(&prow) {
                *zj -= f * p;
            }
            z[c] = 0.0;
        }
        self.basis[r] = c;
    }

    /// One simplex phase: maximize `-z` (i.e. minimize the reduced-cost
    /// row `z`) with Bland's rule. `allow` bounds the eligible entering
    /// columns. Returns `None` on success (optimal), or `Some(column)`
    /// of an unbounded direction.
    fn optimize(&mut self, z: &mut [f64], allow: usize, cap: &mut usize) -> Result<(), Phase> {
        let stride = self.cols + 1;
        loop {
            if *cap == 0 {
                return Err(Phase::IterationLimit);
            }
            *cap -= 1;
            // Bland: entering column = lowest index with z_j < -EPS
            // (improves the maximization).
            let Some(c) = (0..allow).find(|&j| z[j] < -EPS) else {
                return Ok(());
            };
            // Ratio test; ties broken by lowest basis variable index
            // (the other half of Bland's rule).
            let mut best: Option<(f64, usize, usize)> = None; // (ratio, basis var, row)
            for i in 0..self.m {
                let aic = self.a[i * stride + c];
                if aic > EPS {
                    let ratio = self.a[i * stride + self.cols] / aic;
                    let key = (ratio, self.basis[i]);
                    if best.is_none_or(|(br, bb, _)| key < (br, bb)) {
                        best = Some((ratio, self.basis[i], i));
                    }
                }
            }
            let Some((_, _, r)) = best else {
                return Err(Phase::Unbounded);
            };
            self.pivot(r, c, z);
        }
    }

    fn solve(mut self) -> LpOutcome {
        let stride = self.cols + 1;
        // Generous anti-hang budget shared by both phases: Bland's rule
        // terminates finitely, this is purely a hard ceiling.
        let mut cap = 200 * (self.m + self.cols) + 20_000;

        // Phase 1: minimize Σ artificials. Reduced-cost row starts as
        // -(Σ of artificial-basic rows) so basic columns read zero.
        if self.art0 < self.cols {
            let mut z = vec![0.0; stride];
            z[self.art0..self.cols].fill(1.0);
            for i in 0..self.m {
                if self.basis[i] >= self.art0 {
                    let row = self.row(i).to_vec();
                    for (zj, &rj) in z.iter_mut().zip(&row) {
                        *zj -= rj;
                    }
                }
            }
            match self.optimize(&mut z, self.cols, &mut cap) {
                Ok(()) => {}
                Err(Phase::IterationLimit) => return LpOutcome::IterationLimit,
                // Phase 1 is bounded below by 0; unbounded cannot happen.
                Err(Phase::Unbounded) => unreachable!("phase 1 is bounded"),
            }
            // Infeasible iff artificials retain positive mass.
            if -z[self.cols] > 1e-7 {
                return LpOutcome::Infeasible;
            }
            // Drive any residual basic artificial out on a nonzero
            // structural/slack pivot; a fully zero row is redundant and
            // its artificial can stay basic at level 0.
            for r in 0..self.m {
                if self.basis[r] >= self.art0 {
                    let row_off = r * stride;
                    if let Some(c) =
                        (0..self.art0).find(|&j| self.a[row_off + j].abs() > EPS)
                    {
                        self.pivot(r, c, &mut z);
                    }
                }
            }
        }

        // Phase 2: maximize c·x ⇔ minimize the reduced-cost row -c,
        // priced out over the current basis. Artificial columns stay
        // frozen (ineligible to enter).
        let mut z = vec![0.0; stride];
        for (zj, &cj) in z.iter_mut().zip(&self.cost).take(self.cols) {
            *zj = -cj;
        }
        for i in 0..self.m {
            let cb = self.cost[self.basis[i]];
            if cb != 0.0 {
                let row = self.row(i).to_vec();
                for (zj, &rj) in z.iter_mut().zip(&row) {
                    *zj += cb * rj;
                }
            }
        }
        for i in 0..self.m {
            z[self.basis[i]] = 0.0;
        }
        match self.optimize(&mut z, self.art0, &mut cap) {
            Ok(()) => {}
            Err(Phase::IterationLimit) => return LpOutcome::IterationLimit,
            Err(Phase::Unbounded) => return LpOutcome::Unbounded,
        }

        // Extract primal x, objective, and row duals. The dual of row i
        // is the final reduced cost at its slack (sign-adjusted) or
        // artificial column: y = c_B·B⁻¹ e_i.
        let mut x = vec![0.0; self.n];
        for i in 0..self.m {
            if self.basis[i] < self.n {
                x[self.basis[i]] = self.a[i * stride + self.cols];
            }
        }
        let objective = (0..self.n).map(|j| self.cost[j] * x[j]).sum();
        let duals = (0..self.m)
            .map(|i| self.dual_sign[i] * z[self.dual_col[i]] * dual_row_sense(self.senses[i]))
            .collect();
        LpOutcome::Optimal(Solution { objective, x, duals })
    }
}

/// Internal phase failure modes.
enum Phase {
    Unbounded,
    IterationLimit,
}

/// Sense factor folded into the dual so `objective == Σ y_i b_i` holds
/// with the *caller's* (pre-normalization) right-hand sides.
fn dual_row_sense(_s: Cmp) -> f64 {
    // Row normalization (rhs < 0 flips) happens before column creation,
    // so the slack/artificial columns already reflect the normalized
    // row; the recorded sense needs no extra factor. Kept as a function
    // to document the invariant (and as the single place to adjust if
    // the normalization ever changes).
    1.0
}

/// Result of [`assignment_auction`]: a maximum-weight assignment.
#[derive(Clone, Debug)]
pub struct Assignment {
    /// `object[i]` = object assigned to person `i`.
    pub object: Vec<usize>,
    /// Final object prices (an ε-complementary-slackness certificate).
    pub prices: Vec<f64>,
    /// Total assigned weight `Σ w[i][object[i]]`.
    pub total: f64,
}

/// Bertsekas' auction algorithm for the assignment problem: maximize
/// `Σ_i w[i][σ(i)]` over injections `σ` of `n` persons into `m ≥ n`
/// objects. `w` is row-major `n × m`. The returned assignment is within
/// `n·eps_final` of optimal where `eps_final = tol / (n + 1)`; with
/// `tol` below the smallest weight gap the result is exactly optimal.
///
/// Deterministic: unassigned persons bid in index order, ties in the
/// best-object scan resolve to the lowest object index.
///
/// # Panics
/// Panics if `w` is not `n × m` with `m ≥ n ≥ 1`, or on non-finite
/// weights.
pub fn assignment_auction(w: &[Vec<f64>], tol: f64) -> Assignment {
    let n = w.len();
    assert!(n >= 1, "need at least one person");
    let m = w[0].len();
    assert!(m >= n, "need at least as many objects as persons");
    for row in w {
        assert_eq!(row.len(), m, "ragged weight matrix");
        assert!(row.iter().all(|x| x.is_finite()), "weights must be finite");
    }
    let span = w
        .iter()
        .flatten()
        .fold(0.0f64, |acc, &x| acc.max(x.abs()))
        .max(1.0);
    // The forward auction's n·ε optimality bound is a symmetric-problem
    // theorem; rectangular instances are padded with zero-weight dummy
    // persons (which cannot change the optimum over the real rows).
    let padded: Vec<Vec<f64>>;
    let w = if m > n {
        padded = w
            .iter()
            .cloned()
            .chain(std::iter::repeat_n(vec![0.0; m], m - n))
            .collect();
        &padded[..]
    } else {
        w
    };
    let rows = w.len();
    let eps_final = (tol / (rows as f64 + 1.0)).max(f64::MIN_POSITIVE);
    let mut eps = span / 2.0;
    let mut prices = vec![0.0f64; m];
    let mut object = vec![usize::MAX; rows];
    let mut owner: Vec<usize> = vec![usize::MAX; m];
    loop {
        eps = eps.max(eps_final);
        // Reset the matching for this ε-scale (prices carry over — the
        // standard scaling schedule).
        object.iter_mut().for_each(|o| *o = usize::MAX);
        owner.iter_mut().for_each(|o| *o = usize::MAX);
        let mut queue: std::collections::VecDeque<usize> = (0..rows).collect();
        while let Some(i) = queue.pop_front() {
            // Best and second-best net value for person i.
            let mut best_j = 0usize;
            let mut best = f64::NEG_INFINITY;
            let mut second = f64::NEG_INFINITY;
            for (j, &pj) in prices.iter().enumerate() {
                let v = w[i][j] - pj;
                if v > best {
                    second = best;
                    best = v;
                    best_j = j;
                } else if v > second {
                    second = v;
                }
            }
            // Bid: raise the price by the bid increment (value margin
            // plus ε) and take the object, evicting any current owner.
            let increment = if second.is_finite() { best - second } else { 0.0 };
            prices[best_j] += increment + eps;
            if owner[best_j] != usize::MAX {
                let evicted = owner[best_j];
                object[evicted] = usize::MAX;
                queue.push_back(evicted);
            }
            owner[best_j] = i;
            object[i] = best_j;
        }
        if eps <= eps_final {
            break;
        }
        eps /= 4.0;
    }
    object.truncate(n);
    let total = object.iter().enumerate().map(|(i, &j)| w[i][j]).sum();
    Assignment {
        object,
        prices,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve_opt(lp: &Lp) -> Solution {
        lp.solve().optimal().expect("expected optimal")
    }

    #[test]
    fn textbook_two_var_max() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), 36.
        let mut lp = Lp::new(2);
        lp.maximize(0, 3.0).maximize(1, 5.0);
        lp.constrain(&[(0, 1.0)], Cmp::Le, 4.0);
        lp.constrain(&[(1, 2.0)], Cmp::Le, 12.0);
        lp.constrain(&[(0, 3.0), (1, 2.0)], Cmp::Le, 18.0);
        let s = solve_opt(&lp);
        assert!((s.objective - 36.0).abs() < 1e-9);
        assert!((s.x[0] - 2.0).abs() < 1e-9);
        assert!((s.x[1] - 6.0).abs() < 1e-9);
        // Strong duality: y·b == objective.
        let yb = s.duals[0] * 4.0 + s.duals[1] * 12.0 + s.duals[2] * 18.0;
        assert!((yb - 36.0).abs() < 1e-7, "duality gap: {yb}");
    }

    #[test]
    fn equality_and_ge_rows() {
        // max x + y s.t. x + y = 10, x ≥ 2, y ≤ 6 → 10 with x ∈ [4, 8].
        let mut lp = Lp::new(2);
        lp.maximize(0, 1.0).maximize(1, 1.0);
        lp.constrain(&[(0, 1.0), (1, 1.0)], Cmp::Eq, 10.0);
        lp.constrain(&[(0, 1.0)], Cmp::Ge, 2.0);
        lp.constrain(&[(1, 1.0)], Cmp::Le, 6.0);
        let s = solve_opt(&lp);
        assert!((s.objective - 10.0).abs() < 1e-9);
        assert!((s.x[0] + s.x[1] - 10.0).abs() < 1e-9);
        assert!(s.x[0] >= 2.0 - 1e-9 && s.x[1] <= 6.0 + 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = Lp::new(1);
        lp.maximize(0, 1.0);
        lp.constrain(&[(0, 1.0)], Cmp::Ge, 5.0);
        lp.constrain(&[(0, 1.0)], Cmp::Le, 3.0);
        assert!(matches!(lp.solve(), LpOutcome::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = Lp::new(2);
        lp.maximize(0, 1.0);
        lp.constrain(&[(1, 1.0)], Cmp::Le, 1.0);
        assert!(matches!(lp.solve(), LpOutcome::Unbounded));
    }

    #[test]
    fn degenerate_program_terminates() {
        // Classic cycling-prone degeneracy (Beale-like): Bland must
        // terminate and find the optimum.
        let mut lp = Lp::new(4);
        lp.maximize(0, 0.75)
            .maximize(1, -150.0)
            .maximize(2, 0.02)
            .maximize(3, -6.0);
        lp.constrain(&[(0, 0.25), (1, -60.0), (2, -1.0 / 25.0), (3, 9.0)], Cmp::Le, 0.0);
        lp.constrain(&[(0, 0.5), (1, -90.0), (2, -1.0 / 50.0), (3, 3.0)], Cmp::Le, 0.0);
        lp.constrain(&[(2, 1.0)], Cmp::Le, 1.0);
        let s = solve_opt(&lp);
        assert!((s.objective - 0.05).abs() < 1e-9, "got {}", s.objective);
    }

    #[test]
    fn zero_rhs_and_duplicate_rows_are_fine() {
        let mut lp = Lp::new(2);
        lp.maximize(0, 1.0).maximize(1, 2.0);
        lp.constrain(&[(0, 1.0), (1, 1.0)], Cmp::Le, 4.0);
        lp.constrain(&[(0, 1.0), (1, 1.0)], Cmp::Le, 4.0);
        lp.constrain(&[(0, 1.0), (1, -1.0)], Cmp::Le, 0.0);
        let s = solve_opt(&lp);
        assert!((s.objective - 8.0).abs() < 1e-9);
    }

    #[test]
    fn negative_rhs_rows_normalize() {
        // x ≥ 1 written as -x ≤ -1.
        let mut lp = Lp::new(1);
        lp.maximize(0, -1.0);
        lp.constrain(&[(0, -1.0)], Cmp::Le, -1.0);
        let s = solve_opt(&lp);
        assert!((s.x[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn determinism_bitwise() {
        let mut lp = Lp::new(6);
        for v in 0..6 {
            lp.maximize(v, 1.0 + v as f64 * 0.37);
        }
        for r in 0..5 {
            let coeffs: Vec<(usize, f64)> =
                (0..6).map(|v| (v, ((r * 7 + v * 3) % 5) as f64 * 0.5 + 0.1)).collect();
            lp.constrain(&coeffs, Cmp::Le, 10.0 + r as f64);
        }
        let a = solve_opt(&lp);
        let b = solve_opt(&lp);
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
        assert_eq!(
            a.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn auction_matches_brute_force() {
        let w = vec![
            vec![4.0, 2.0, 8.0],
            vec![4.0, 3.0, 7.0],
            vec![3.0, 1.0, 6.0],
        ];
        let a = assignment_auction(&w, 1e-6);
        // Brute force over 3! permutations: best is 2+?.. enumerate.
        let mut best = f64::NEG_INFINITY;
        let perms = [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        for p in perms {
            best = best.max(w[0][p[0]] + w[1][p[1]] + w[2][p[2]]);
        }
        assert!((a.total - best).abs() < 1e-6, "auction {} vs brute {best}", a.total);
        // It is a valid injection.
        let mut seen = a.object.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn auction_rectangular() {
        let w = vec![vec![1.0, 9.0, 2.0, 3.0], vec![9.0, 1.0, 2.0, 3.0]];
        let a = assignment_auction(&w, 1e-6);
        assert_eq!(a.object, vec![1, 0]);
        assert!((a.total - 18.0).abs() < 1e-6);
    }
}
