//! Running, windowed and descriptive statistics.
//!
//! Three flavours, each matching a use in the paper:
//!
//! * [`RunningStats`] — numerically stable online mean/variance/skewness/
//!   kurtosis (Welford / Pébay update formulas). This is the "stateless"
//!   representation of §4.2: only running sums are kept, no data points.
//! * [`SmoothedMoments`] — the paper's §4.5 moving-window moments:
//!   exponentially smoothed raw moments `µ_{i,p} = α·µ_{i−1,p} + (1−α)·x_i^p`
//!   with `α = 1 − 1/n` for window size `n`, and the skewness/kurtosis
//!   formulas given in the paper.
//! * [`Moments`] — one-shot descriptive statistics of a slice.

/// Numerically stable online statistics (count, mean, variance, skewness,
/// excess kurtosis, min, max) with O(1) state.
#[derive(Clone, Debug, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            m4: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation (Pébay's one-pass update).
    pub fn push(&mut self, x: f64) {
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;

        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (denominator `n`).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Unbiased sample variance (denominator `n − 1`).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Sample skewness `m3 / m2^{3/2}` (0 for degenerate inputs).
    pub fn skewness(&self) -> f64 {
        if self.n == 0 || self.m2 <= 0.0 {
            return 0.0;
        }
        let n = self.n as f64;
        n.sqrt() * self.m3 / self.m2.powf(1.5)
    }

    /// Excess kurtosis `m4·n/m2² − 3` (0 for degenerate inputs).
    pub fn kurtosis(&self) -> f64 {
        if self.n == 0 || self.m2 <= 0.0 {
            return 0.0;
        }
        let n = self.n as f64;
        n * self.m4 / (self.m2 * self.m2) - 3.0
    }

    /// Minimum seen (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum seen (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        let d2 = delta * delta;
        let d3 = d2 * delta;
        let d4 = d2 * d2;

        let m2 = self.m2 + other.m2 + d2 * na * nb / n;
        let m3 = self.m3
            + other.m3
            + d3 * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        let m4 = self.m4
            + other.m4
            + d4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * d2 * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n;

        self.mean = (na * self.mean + nb * other.mean) / n;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The paper's §4.5 moving-window smoothed moments.
///
/// Keeps the first four *raw* moments about zero under exponential smoothing
/// with `α = 1 − 1/n` (`n` = window size in snapshots) and derives mean,
/// standard deviation, skewness γ₁ and kurtosis γ₂ exactly per the formulas
/// in the paper. Window size 1 ignores history, as the paper notes.
#[derive(Clone, Debug)]
pub struct SmoothedMoments {
    window: usize,
    alpha: f64,
    /// Raw moments µ_p = E[x^p], p = 1..=4. `None` until the first sample.
    m: Option<[f64; 4]>,
    samples: u64,
}

impl SmoothedMoments {
    /// New smoother for a window of `n` snapshots.
    ///
    /// # Panics
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window >= 1, "window must be >= 1");
        SmoothedMoments {
            window,
            alpha: 1.0 - 1.0 / window as f64,
            m: None,
            samples: 0,
        }
    }

    /// Window size in snapshots.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of samples pushed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Push a price snapshot.
    pub fn push(&mut self, x: f64) {
        self.samples += 1;
        let powers = [x, x * x, x * x * x, x * x * x * x];
        match &mut self.m {
            // µ_{0,p} = x_0^p
            None => self.m = Some(powers),
            Some(m) => {
                for p in 0..4 {
                    m[p] = self.alpha * m[p] + (1.0 - self.alpha) * powers[p];
                }
            }
        }
    }

    /// Smoothed mean (`None` before any sample).
    pub fn mean(&self) -> Option<f64> {
        self.m.map(|m| m[0])
    }

    /// Smoothed standard deviation `σ = sqrt(µ₂ − µ₁²)`.
    pub fn std_dev(&self) -> Option<f64> {
        self.m.map(|m| (m[1] - m[0] * m[0]).max(0.0).sqrt())
    }

    /// Smoothed skewness `γ₁ = (µ₃ − 3µ₁µ₂ + 2µ₁³)/σ³` (`None` before any
    /// sample; 0 for a degenerate σ).
    pub fn skewness(&self) -> Option<f64> {
        self.m.map(|m| {
            let sigma = (m[1] - m[0] * m[0]).max(0.0).sqrt();
            if sigma <= 1e-300 {
                0.0
            } else {
                (m[2] - 3.0 * m[0] * m[1] + 2.0 * m[0] * m[0] * m[0]) / (sigma * sigma * sigma)
            }
        })
    }

    /// Smoothed excess kurtosis
    /// `γ₂ = (µ₄ − 4µ₃µ₁ + 6µ₂µ₁² − 3µ₁⁴)/σ⁴ − 3`.
    pub fn kurtosis(&self) -> Option<f64> {
        self.m.map(|m| {
            let var = (m[1] - m[0] * m[0]).max(0.0);
            if var <= 1e-300 {
                0.0
            } else {
                (m[3] - 4.0 * m[2] * m[0] + 6.0 * m[1] * m[0] * m[0]
                    - 3.0 * m[0] * m[0] * m[0] * m[0])
                    / (var * var)
                    - 3.0
            }
        })
    }
}

/// One-shot descriptive statistics over a slice.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Moments {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance.
    pub variance: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Sample skewness.
    pub skewness: f64,
    /// Excess kurtosis.
    pub kurtosis: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl Moments {
    /// Compute descriptive statistics of `xs`. Returns `None` when empty.
    pub fn of(xs: &[f64]) -> Option<Moments> {
        if xs.is_empty() {
            return None;
        }
        let mut rs = RunningStats::new();
        for &x in xs {
            rs.push(x);
        }
        Some(Moments {
            count: xs.len(),
            mean: rs.mean(),
            variance: rs.variance(),
            std_dev: rs.std_dev(),
            skewness: rs.skewness(),
            kurtosis: rs.kurtosis(),
            min: rs.min(),
            max: rs.max(),
        })
    }
}

/// Linearly interpolated percentile (`q` in `[0, 1]`) of unsorted data.
/// Returns `None` when empty.
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&q), "percentile q out of [0,1]");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_matches_direct_for_simple_input() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert_eq!(rs.count(), 8);
        assert!((rs.mean() - 5.0).abs() < 1e-12);
        assert!((rs.variance() - 4.0).abs() < 1e-12);
        assert!((rs.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(rs.min(), 2.0);
        assert_eq!(rs.max(), 9.0);
    }

    #[test]
    fn skewness_sign_and_symmetry() {
        let mut sym = RunningStats::new();
        for x in [-2.0, -1.0, 0.0, 1.0, 2.0] {
            sym.push(x);
        }
        assert!(sym.skewness().abs() < 1e-12);

        let mut right = RunningStats::new();
        for x in [1.0, 1.0, 1.0, 1.0, 10.0] {
            right.push(x);
        }
        assert!(right.skewness() > 1.0, "right-skewed data must be positive");
    }

    #[test]
    fn kurtosis_of_uniformish_is_negative() {
        let mut rs = RunningStats::new();
        for i in 0..1000 {
            rs.push(i as f64);
        }
        // Discrete uniform has excess kurtosis ≈ −1.2
        assert!((rs.kurtosis() + 1.2).abs() < 0.01, "{}", rs.kurtosis());
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| ((i * 31) % 17) as f64).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert!((a.skewness() - whole.skewness()).abs() < 1e-9);
        assert!((a.kurtosis() - whole.kurtosis()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a.clone();
        a.merge(&RunningStats::new());
        assert_eq!(a.mean(), before.mean());
        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty.mean(), before.mean());
        assert_eq!(empty.count(), 2);
    }

    #[test]
    fn smoothed_window1_tracks_last_sample() {
        // α = 0: previous moments ignored, as the paper notes.
        let mut sm = SmoothedMoments::new(1);
        sm.push(10.0);
        sm.push(3.0);
        assert_eq!(sm.mean(), Some(3.0));
        assert_eq!(sm.std_dev(), Some(0.0));
    }

    #[test]
    fn smoothed_constant_stream() {
        let mut sm = SmoothedMoments::new(20);
        for _ in 0..100 {
            sm.push(5.0);
        }
        assert!((sm.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!(sm.std_dev().unwrap() < 1e-9);
        assert_eq!(sm.skewness(), Some(0.0));
        assert_eq!(sm.kurtosis(), Some(0.0));
    }

    #[test]
    fn smoothed_mean_converges_to_stream_mean() {
        // Alternate 0/10: long-run smoothed mean ≈ 5.
        let mut sm = SmoothedMoments::new(50);
        for i in 0..5_000 {
            sm.push(if i % 2 == 0 { 0.0 } else { 10.0 });
        }
        assert!((sm.mean().unwrap() - 5.0).abs() < 0.3, "{:?}", sm.mean());
        assert!((sm.std_dev().unwrap() - 5.0).abs() < 0.3);
    }

    #[test]
    fn smoothed_reacts_faster_with_small_windows() {
        let mut fast = SmoothedMoments::new(5);
        let mut slow = SmoothedMoments::new(500);
        for _ in 0..100 {
            fast.push(1.0);
            slow.push(1.0);
        }
        for _ in 0..20 {
            fast.push(10.0);
            slow.push(10.0);
        }
        assert!(fast.mean().unwrap() > slow.mean().unwrap());
    }

    #[test]
    fn smoothed_skew_detects_spikes() {
        // Mostly-low with occasional large spikes → positive (right) skew.
        let mut sm = SmoothedMoments::new(100);
        for i in 0..1_000 {
            sm.push(if i % 25 == 0 { 50.0 } else { 1.0 });
        }
        assert!(sm.skewness().unwrap() > 1.0);
        assert!(sm.kurtosis().unwrap() > 1.0, "spiky data is leptokurtic");
    }

    #[test]
    fn moments_of_slice() {
        let m = Moments::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.count, 4);
        assert!((m.mean - 2.5).abs() < 1e-12);
        assert!((m.variance - 1.25).abs() < 1e-12);
        assert_eq!(m.min, 1.0);
        assert_eq!(m.max, 4.0);
        assert!(Moments::of(&[]).is_none());
    }

    #[test]
    fn percentiles() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 1.0), Some(5.0));
        assert_eq!(percentile(&xs, 0.5), Some(3.0));
        assert_eq!(percentile(&xs, 0.25), Some(2.0));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    #[should_panic(expected = "window must be >= 1")]
    fn zero_window_rejected() {
        SmoothedMoments::new(0);
    }
}
