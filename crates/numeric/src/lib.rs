//! # gm-numeric — numerical substrate
//!
//! Self-contained numerical routines backing the paper's prediction suite
//! (Section 4) and the experiment harness:
//!
//! * [`linalg`] — dense matrices, LU decomposition with partial pivoting,
//!   linear solves and inverses (used by Markowitz portfolio selection).
//! * [`lp`] — linear programming: a dense two-phase simplex solver
//!   (Bland's rule, dual extraction) plus Bertsekas' auction algorithm
//!   for assignment structure; the substrate of the optimization-based
//!   allocation tier (DESIGN.md §14).
//! * [`toeplitz`] — sample autocorrelation and the Levinson-Durbin solver
//!   for the Yule-Walker equations of the AR(k) price model (§4.3).
//! * [`spline`] — Reinsch cubic smoothing spline, the smoothing function
//!   the paper applies before fitting the AR model (§5.4, Fig. 4).
//! * [`probit`] — the standard normal CDF Φ and quantile Φ⁻¹ used by the
//!   stateless price prediction model (§4.2, Eq. 4–5).
//! * [`stats`] — running and exponentially-smoothed windowed moments
//!   (mean, std, skewness, kurtosis; §4.5).
//! * [`student`] — Student's t distribution (ln-gamma, incomplete beta,
//!   CDF/quantile) and [`Summary`](student::Summary): the
//!   confidence-interval math behind the Monte-Carlo robustness reports
//!   (DESIGN.md §13).
//! * [`samplers`] — normal / exponential / gamma / beta / lognormal
//!   samplers over any [`gm_des::Rng64`] (used by Fig. 5 and Fig. 7).
//! * [`histogram`] — fixed-range histograms for measured distributions.
//!
//! Everything is implemented from scratch against published algorithms; no
//! external numerics dependency.

pub mod histogram;
pub mod linalg;
pub mod lp;
pub mod probit;
pub mod samplers;
pub mod spline;
pub mod stats;
pub mod student;
pub mod toeplitz;

pub use histogram::Histogram;
pub use linalg::{Lu, Matrix};
pub use lp::{assignment_auction, Assignment, Cmp, Lp, LpOutcome, Solution};
pub use probit::{norm_cdf, norm_pdf, norm_quantile};
pub use samplers::{Beta, Exponential, LogNormal, Normal, Sampler, Uniform};
pub use spline::smoothing_spline;
pub use stats::{Moments, RunningStats, SmoothedMoments};
pub use student::{mean_confidence_interval, t_cdf, t_quantile, Summary};
pub use toeplitz::{autocorrelation, levinson_durbin, yule_walker};
