//! Standard normal CDF, PDF and quantile (probit) function.
//!
//! The paper's stateless prediction model (§4.2) maps a desired probability
//! guarantee `p` to a price bound `y ≤ μ + σ·Φ⁻¹(p)` (Eq. 5). `Φ⁻¹` is
//! computed with Peter Acklam's rational approximation refined by one step
//! of Halley's method, giving ~1e-15 relative accuracy; `Φ` uses the
//! complementary-error-function expansion of Abramowitz & Stegun 26.2.17
//! level accuracy via a high-precision `erfc` (W. J. Cody style rational
//! fits are overkill here; we use the A&S 7.1.26-style fit with a
//! correction, accurate to ~1.2e-7, then refine the quantile numerically).

/// Standard normal probability density function.
#[inline]
pub fn norm_pdf(x: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Standard normal cumulative distribution function Φ(x).
///
/// Implemented via `erfc` with the rational approximation from Numerical
/// Recipes (`erfc(x) ≈ t·exp(-x² + P(t))`), accurate to ~1.2e-7 everywhere
/// and considerably better near the center.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * erfc(-x * std::f64::consts::FRAC_1_SQRT_2)
}

/// Complementary error function, fractional error below 1.2e-7.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    // Numerical Recipes in C, §6.2.
    let ans = t * (-z * z
        - 1.265_512_23
        + t * (1.000_023_68
            + t * (0.374_091_96
                + t * (0.096_784_18
                    + t * (-0.186_288_06
                        + t * (0.278_868_07
                            + t * (-1.135_203_98
                                + t * (1.488_515_87
                                    + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
    .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Inverse of the standard normal CDF (the probit function Φ⁻¹).
///
/// Acklam's rational approximation with one Halley refinement step.
///
/// # Panics
/// Panics if `p` is outside the open interval `(0, 1)`.
pub fn norm_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "norm_quantile requires p in (0,1), got {p}"
    );

    // Coefficients for Acklam's approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One step of Halley's method to polish.
    let e = norm_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_known_values() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((norm_cdf(1.0) - 0.841_344_746).abs() < 1e-6);
        assert!((norm_cdf(-1.0) - 0.158_655_254).abs() < 1e-6);
        assert!((norm_cdf(1.959_963_985) - 0.975).abs() < 1e-6);
        assert!((norm_cdf(3.0) - 0.998_650_102).abs() < 1e-6);
    }

    #[test]
    fn quantile_known_values() {
        assert!((norm_quantile(0.5)).abs() < 1e-7);
        assert!((norm_quantile(0.975) - 1.959_963_985).abs() < 1e-6);
        assert!((norm_quantile(0.8) - 0.841_621_234).abs() < 1e-6);
        assert!((norm_quantile(0.9) - 1.281_551_566).abs() < 1e-6);
        assert!((norm_quantile(0.99) - 2.326_347_874).abs() < 1e-6);
        assert!((norm_quantile(0.001) + 3.090_232_306).abs() < 1e-5);
    }

    #[test]
    fn quantile_is_inverse_of_cdf() {
        for i in 1..200 {
            let p = i as f64 / 200.0;
            let x = norm_quantile(p);
            assert!(
                (norm_cdf(x) - p).abs() < 1e-7,
                "p={p}: cdf(q(p))={}",
                norm_cdf(x)
            );
        }
    }

    #[test]
    fn symmetry() {
        for p in [0.01, 0.1, 0.25, 0.4] {
            let lo = norm_quantile(p);
            let hi = norm_quantile(1.0 - p);
            assert!((lo + hi).abs() < 1e-8, "asymmetry at {p}: {lo} {hi}");
        }
    }

    #[test]
    fn pdf_properties() {
        assert!((norm_pdf(0.0) - 0.398_942_280).abs() < 1e-8);
        assert_eq!(norm_pdf(2.0), norm_pdf(-2.0));
        // integral over [-6,6] via trapezoid ≈ 1
        let n = 10_000;
        let h = 12.0 / n as f64;
        let integral: f64 = (0..=n)
            .map(|i| {
                let x = -6.0 + i as f64 * h;
                let w = if i == 0 || i == n { 0.5 } else { 1.0 };
                w * norm_pdf(x)
            })
            .sum::<f64>()
            * h;
        assert!((integral - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "requires p in (0,1)")]
    fn quantile_rejects_zero() {
        norm_quantile(0.0);
    }

    #[test]
    #[should_panic(expected = "requires p in (0,1)")]
    fn quantile_rejects_one() {
        norm_quantile(1.0);
    }

    #[test]
    fn erfc_endpoints() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!(erfc(5.0) < 2e-11);
        assert!((erfc(-5.0) - 2.0).abs() < 2e-11);
    }
}
