//! Student's t distribution and confidence-interval summaries.
//!
//! The Monte-Carlo harness (DESIGN.md §13) reports every robustness
//! metric as `mean ± t·s/√n`: with scenario counts anywhere from a CI
//! smoke batch (n = 64) to an overnight sweep (n = 10⁴), the normal
//! approximation is wrong exactly where it matters — small quarantine
//! re-runs — so the interval uses the t quantile with `n − 1` degrees of
//! freedom. Everything here is from-scratch std-only numerics:
//!
//! * [`ln_gamma`] — Lanczos approximation (g = 7, n = 9), ~1e-13 relative.
//! * [`betai`] — regularized incomplete beta `I_x(a, b)` via the
//!   Numerical-Recipes continued fraction (Lentz's method).
//! * [`t_cdf`] / [`t_quantile`] — CDF through `betai`, quantile by
//!   bracketed bisection + Newton polish (robust for ν = 1 where the
//!   tails are Cauchy-fat).
//! * [`Summary`] — one metric's descriptive statistics plus the
//!   Student-t confidence interval for its mean.

/// Natural log of the gamma function (Lanczos, g = 7).
///
/// # Panics
/// Panics if `x <= 0` (reflection is not needed for distribution work).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection for completeness on (0, 0.5).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Continued-fraction evaluation (Numerical Recipes §6.4, modified
/// Lentz), with the symmetry transform applied so the fraction always
/// converges fast.
///
/// # Panics
/// Panics if `a <= 0`, `b <= 0`, or `x` is outside `[0, 1]`.
pub fn betai(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "betai requires a, b > 0");
    assert!((0.0..=1.0).contains(&x), "betai requires x in [0,1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// The continued fraction for [`betai`] (modified Lentz's method).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Student's t probability density with `df` degrees of freedom.
///
/// # Panics
/// Panics if `df <= 0`.
pub fn t_pdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "t_pdf requires df > 0");
    let ln = ln_gamma((df + 1.0) / 2.0)
        - ln_gamma(df / 2.0)
        - 0.5 * (df * std::f64::consts::PI).ln()
        - (df + 1.0) / 2.0 * (1.0 + t * t / df).ln();
    ln.exp()
}

/// Student's t cumulative distribution with `df` degrees of freedom.
///
/// # Panics
/// Panics if `df <= 0`.
pub fn t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "t_cdf requires df > 0");
    if t == 0.0 {
        return 0.5;
    }
    let x = df / (df + t * t);
    let tail = 0.5 * betai(df / 2.0, 0.5, x);
    if t > 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

/// Quantile of Student's t distribution (inverse CDF).
///
/// Bracketed bisection seeded from the normal quantile, finished with
/// Newton steps — robust even at ν = 1 (Cauchy), where the 99.95 %
/// quantile is ≈ 636.
///
/// # Panics
/// Panics if `p` is outside the open interval `(0, 1)` or `df <= 0`.
pub fn t_quantile(p: f64, df: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "t_quantile requires p in (0,1), got {p}");
    assert!(df > 0.0, "t_quantile requires df > 0");
    if (p - 0.5).abs() < 1e-16 {
        return 0.0;
    }
    // Symmetry: solve in the upper tail.
    if p < 0.5 {
        return -t_quantile(1.0 - p, df);
    }
    // Bracket [lo, hi] with t_cdf(hi) >= p, expanding geometrically from
    // the normal seed (fat tails need room at small df).
    let mut lo = 0.0;
    let mut hi = crate::probit::norm_quantile(p).max(1.0);
    while t_cdf(hi, df) < p {
        lo = hi;
        hi *= 2.0;
        if hi > 1e12 {
            break;
        }
    }
    // Bisection to ~1e-12 of the bracket, then Newton polish.
    let mut t = 0.5 * (lo + hi);
    for _ in 0..200 {
        if t_cdf(t, df) < p {
            lo = t;
        } else {
            hi = t;
        }
        t = 0.5 * (lo + hi);
        if hi - lo < 1e-12 * (1.0 + t.abs()) {
            break;
        }
    }
    for _ in 0..3 {
        let f = t_cdf(t, df) - p;
        let d = t_pdf(t, df);
        if d <= 0.0 {
            break;
        }
        let step = f / d;
        if !step.is_finite() {
            break;
        }
        t -= step;
    }
    t
}

/// Two-sided Student-t confidence interval for the mean of a sample with
/// the given `mean`, sample standard deviation `sd` (denominator n − 1)
/// and size `n`. Returns `(lo, hi)`.
///
/// For `n < 2` the interval degenerates to the point `(mean, mean)` —
/// one observation carries no spread information.
///
/// # Panics
/// Panics if `confidence` is outside the open interval `(0, 1)`.
pub fn mean_confidence_interval(mean: f64, sd: f64, n: usize, confidence: f64) -> (f64, f64) {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence in (0,1), got {confidence}"
    );
    if n < 2 || sd <= 0.0 {
        return (mean, mean);
    }
    let df = (n - 1) as f64;
    let t = t_quantile(0.5 + confidence / 2.0, df);
    let half = t * sd / (n as f64).sqrt();
    (mean - half, mean + half)
}

/// Descriptive statistics of one Monte-Carlo metric: moments, order
/// statistics, and the Student-t confidence interval for the mean.
///
/// Built once per metric per report by [`Summary::of`]; all fields are
/// deterministic functions of the sample *values in index order* (the
/// percentiles sort a copy), so two reports over the same per-seed
/// results render byte-identically regardless of worker scheduling.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample variance (denominator n − 1; 0 for n < 2).
    pub variance: f64,
    /// Sample standard deviation `√variance`.
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
    /// Median (linearly interpolated).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Confidence level of `ci_lo..ci_hi` (e.g. 0.95).
    pub confidence: f64,
    /// Lower bound of the Student-t interval for the mean.
    pub ci_lo: f64,
    /// Upper bound of the Student-t interval for the mean.
    pub ci_hi: f64,
}

impl Summary {
    /// Summarise `xs` at the given confidence level. `None` when empty.
    ///
    /// # Panics
    /// Panics if `confidence` is outside `(0, 1)` or `xs` contains NaN.
    pub fn of(xs: &[f64], confidence: f64) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let mut rs = crate::stats::RunningStats::new();
        for &x in xs {
            assert!(!x.is_nan(), "Summary::of requires NaN-free input");
            rs.push(x);
        }
        let mean = rs.mean();
        let variance = rs.sample_variance();
        let std_dev = variance.sqrt();
        let (ci_lo, ci_hi) = mean_confidence_interval(mean, std_dev, xs.len(), confidence);
        let pct = |q| crate::stats::percentile(xs, q).expect("nonempty");
        Some(Summary {
            count: xs.len(),
            mean,
            variance,
            std_dev,
            min: rs.min(),
            max: rs.max(),
            p50: pct(0.5),
            p90: pct(0.9),
            p99: pct(0.99),
            confidence,
            ci_lo,
            ci_hi,
        })
    }

    /// Half-width of the confidence interval (`0` when degenerate).
    pub fn ci_half_width(&self) -> f64 {
        (self.ci_hi - self.ci_lo) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values from standard t tables.
    #[test]
    fn quantiles_match_t_tables() {
        let cases = [
            // (p, df, expected)
            (0.975, 1.0, 12.7062),
            (0.975, 2.0, 4.3027),
            (0.975, 5.0, 2.5706),
            (0.975, 10.0, 2.2281),
            (0.975, 30.0, 2.0423),
            (0.95, 10.0, 1.8125),
            (0.99, 5.0, 3.3649),
            (0.9995, 1.0, 636.619),
        ];
        for (p, df, want) in cases {
            let got = t_quantile(p, df);
            assert!(
                (got - want).abs() / want < 1e-4,
                "t_quantile({p}, {df}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn quantile_converges_to_normal_for_large_df() {
        let t = t_quantile(0.975, 1e6);
        assert!((t - 1.959_964).abs() < 1e-3, "{t}");
    }

    #[test]
    fn cdf_quantile_roundtrip_and_symmetry() {
        for &df in &[1.0, 3.0, 7.0, 25.0, 200.0] {
            for &p in &[0.01, 0.1, 0.5, 0.9, 0.975, 0.999] {
                let t = t_quantile(p, df);
                assert!((t_cdf(t, df) - p).abs() < 1e-10, "df={df} p={p}");
                assert!((t_quantile(1.0 - p, df) + t).abs() < 1e-7 * (1.0 + t.abs()));
            }
            assert!((t_cdf(0.0, df) - 0.5).abs() < 1e-15);
        }
    }

    #[test]
    fn ln_gamma_known_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-12);
        assert!((ln_gamma(2.0)).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn betai_edges_and_symmetry() {
        assert_eq!(betai(2.0, 3.0, 0.0), 0.0);
        assert_eq!(betai(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        for &x in &[0.1, 0.3, 0.5, 0.8] {
            let lhs = betai(2.5, 1.5, x);
            let rhs = 1.0 - betai(1.5, 2.5, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-12);
        }
        // I_x(1,1) = x (uniform).
        assert!((betai(1.0, 1.0, 0.37) - 0.37).abs() < 1e-12);
    }

    #[test]
    fn confidence_interval_matches_hand_computation() {
        // n=9, sd=3 → hw = t(0.975, 8)·3/3 = 2.306·1 = 2.306
        let (lo, hi) = mean_confidence_interval(10.0, 3.0, 9, 0.95);
        assert!((hi - 10.0 - 2.306).abs() < 1e-3, "{hi}");
        assert!((10.0 - lo - 2.306).abs() < 1e-3, "{lo}");
    }

    #[test]
    fn interval_degenerates_for_tiny_samples() {
        assert_eq!(mean_confidence_interval(5.0, 2.0, 1, 0.95), (5.0, 5.0));
        assert_eq!(mean_confidence_interval(5.0, 0.0, 100, 0.95), (5.0, 5.0));
    }

    #[test]
    fn summary_of_known_sample() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&xs, 0.95).unwrap();
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!(s.ci_lo < s.mean && s.mean < s.ci_hi);
        // hw = t(0.975,99)·sd/10 ≈ 1.984·29.0115/10 ≈ 5.756
        assert!((s.ci_half_width() - 5.757).abs() < 0.01, "{}", s.ci_half_width());
        assert!(Summary::of(&[], 0.95).is_none());
    }

    #[test]
    fn summary_narrows_with_sample_size() {
        let small: Vec<f64> = (0..10).map(|i| (i % 5) as f64).collect();
        let large: Vec<f64> = (0..1000).map(|i| (i % 5) as f64).collect();
        let s = Summary::of(&small, 0.95).unwrap();
        let l = Summary::of(&large, 0.95).unwrap();
        assert!(l.ci_half_width() < s.ci_half_width());
    }
}
