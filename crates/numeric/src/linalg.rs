//! Dense linear algebra: matrices, LU decomposition, solves and inverses.
//!
//! Portfolio selection (paper §4.4) needs `Σ⁻¹` for covariance matrices of
//! at most a few hundred hosts, so a straightforward `O(n³)` LU with partial
//! pivoting is more than adequate — and has no dependencies.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Build an `n × n` diagonal matrix from `diag`.
    pub fn diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// A row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix-vector product `A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "mul_vec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (r, out_r) in out.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *out_r = acc;
        }
        out
    }

    /// Matrix product `A·B`.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "mul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// LU decomposition with partial pivoting. Returns `None` if the matrix
    /// is singular (a pivot underflows) or non-square.
    pub fn lu(&self) -> Option<Lu> {
        if self.rows != self.cols {
            return None;
        }
        let n = self.rows;
        let mut lu = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0f64;

        for col in 0..n {
            // Pivot: largest absolute value in this column at/below diagonal.
            let mut pivot_row = col;
            let mut pivot_val = lu[col * n + col].abs();
            for r in (col + 1)..n {
                let v = lu[r * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-300 {
                return None;
            }
            if pivot_row != col {
                for j in 0..n {
                    lu.swap(col * n + j, pivot_row * n + j);
                }
                perm.swap(col, pivot_row);
                sign = -sign;
            }
            let pivot = lu[col * n + col];
            for r in (col + 1)..n {
                let factor = lu[r * n + col] / pivot;
                lu[r * n + col] = factor;
                for j in (col + 1)..n {
                    lu[r * n + j] -= factor * lu[col * n + j];
                }
            }
        }
        Some(Lu { n, lu, perm, sign })
    }

    /// Solve `A·x = b` via LU. `None` when singular.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        self.lu().map(|lu| lu.solve(b))
    }

    /// Matrix inverse via LU. `None` when singular.
    pub fn inverse(&self) -> Option<Matrix> {
        let lu = self.lu()?;
        let n = self.rows;
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = lu.solve(&e);
            e[j] = 0.0;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Some(inv)
    }

    /// Determinant via LU (0 when singular).
    pub fn det(&self) -> f64 {
        match self.lu() {
            None => 0.0,
            Some(lu) => {
                let mut d = lu.sign;
                for i in 0..lu.n {
                    d *= lu.lu[i * lu.n + i];
                }
                d
            }
        }
    }

    /// Max-abs elementwise difference to another matrix.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  [")?;
            for c in 0..self.cols {
                write!(f, "{:>10.4}", self[(r, c)])?;
                if c + 1 < self.cols {
                    write!(f, ", ")?;
                }
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

/// The result of an LU decomposition with partial pivoting: `P·A = L·U`.
pub struct Lu {
    n: usize,
    /// Combined storage: strictly-lower = L (unit diagonal implied), upper = U.
    lu: Vec<f64>,
    perm: Vec<usize>,
    sign: f64,
}

impl Lu {
    /// Solve `A·x = b` using forward/back substitution.
    ///
    /// # Panics
    /// Panics if `b.len() != n`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "solve dimension mismatch");
        let n = self.n;
        // Apply permutation, then Ly = Pb.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[self.perm[i]];
            for (j, yj) in y.iter().enumerate().take(i) {
                acc -= self.lu[i * n + j] * yj;
            }
            y[i] = acc;
        }
        // Ux = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for (j, xj) in x.iter().enumerate().take(n).skip(i + 1) {
                acc -= self.lu[i * n + j] * xj;
            }
            x[i] = acc / self.lu[i * n + i];
        }
        x
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() <= eps
    }

    #[test]
    fn identity_solve_is_identity() {
        let a = Matrix::identity(4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(a.solve(&b).unwrap(), b);
    }

    #[test]
    fn known_solve() {
        // 2x + y = 5 ; x + 3y = 10  ->  x = 1, y = 3
        let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!(approx(x[0], 1.0, 1e-12));
        assert!(approx(x[1], 3.0, 1e-12));
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the leading diagonal forces a row swap.
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(a.lu().is_none());
        assert!(a.solve(&[1.0, 1.0]).is_none());
        assert!(a.inverse().is_none());
        assert_eq!(a.det(), 0.0);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(
            3,
            3,
            vec![4.0, 2.0, 0.5, 2.0, 5.0, 1.0, 0.5, 1.0, 3.0],
        );
        let inv = a.inverse().unwrap();
        let prod = a.mul(&inv);
        assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-10);
    }

    #[test]
    fn determinant_known_values() {
        let a = Matrix::from_rows(2, 2, vec![3.0, 8.0, 4.0, 6.0]);
        assert!(approx(a.det(), -14.0, 1e-10));
        assert!(approx(Matrix::identity(5).det(), 1.0, 1e-12));
        // det of diagonal = product of entries
        let d = Matrix::diagonal(&[2.0, 3.0, 4.0]);
        assert!(approx(d.det(), 24.0, 1e-10));
    }

    #[test]
    fn mul_vec_and_mul_agree() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = vec![1.0, 0.5, -1.0];
        let via_vec = a.mul_vec(&x);
        let xm = Matrix::from_rows(3, 1, x);
        let via_mat = a.mul(&xm);
        assert!(approx(via_vec[0], via_mat[(0, 0)], 1e-12));
        assert!(approx(via_vec[1], via_mat[(1, 0)], 1e-12));
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_vec_bad_shape_panics() {
        Matrix::identity(3).mul_vec(&[1.0, 2.0]);
    }

    #[test]
    fn ill_conditioned_hilbert_still_solves() {
        // Hilbert 5x5 is ill-conditioned but far from numerically singular.
        let n = 5;
        let mut h = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                h[(i, j)] = 1.0 / ((i + j + 1) as f64);
            }
        }
        let x_true = vec![1.0; n];
        let b = h.mul_vec(&x_true);
        let x = h.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!(approx(*xi, *ti, 1e-6), "{xi} vs {ti}");
        }
    }
}
