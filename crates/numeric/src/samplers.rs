//! Random-variate samplers over any [`Rng64`].
//!
//! The window-approximation experiment (paper Fig. 7) draws prices from
//! Normal(0.5, 0.15), Exp(2) and Beta(5, 1); the portfolio simulation
//! (Fig. 5) draws host performance from normal distributions. All samplers
//! are implemented from standard algorithms:
//!
//! * normal — Marsaglia polar method;
//! * exponential — inversion;
//! * gamma — Marsaglia & Tsang (2000), with the Ahrens-Dieter boost for
//!   shape < 1;
//! * beta — ratio of gammas;
//! * lognormal — exp of normal.

use gm_des::Rng64;

/// A distribution that can produce `f64` variates from an [`Rng64`].
pub trait Sampler {
    /// Draw one variate.
    fn sample<R: Rng64>(&self, rng: &mut R) -> f64;

    /// Draw `n` variates into a fresh vector.
    fn sample_n<R: Rng64>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Theoretical mean, if finite and known.
    fn mean(&self) -> f64;

    /// Theoretical variance, if finite and known.
    fn variance(&self) -> f64;
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Clone, Copy, Debug)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// New uniform distribution.
    ///
    /// # Panics
    /// Panics unless `lo < hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "Uniform requires lo < hi");
        Uniform { lo, hi }
    }
}

impl Sampler for Uniform {
    #[inline]
    fn sample<R: Rng64>(&self, rng: &mut R) -> f64 {
        rng.next_range_f64(self.lo, self.hi)
    }
    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
    fn variance(&self) -> f64 {
        let w = self.hi - self.lo;
        w * w / 12.0
    }
}

/// Normal distribution `N(μ, σ²)` via the Marsaglia polar method.
#[derive(Clone, Copy, Debug)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// New normal distribution with mean `mu` and standard deviation `sigma`.
    ///
    /// # Panics
    /// Panics if `sigma < 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "Normal requires sigma >= 0");
        Normal { mu, sigma }
    }

    /// Standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Normal { mu: 0.0, sigma: 1.0 }
    }

    /// One standard normal variate.
    pub fn standard_sample<R: Rng64>(rng: &mut R) -> f64 {
        loop {
            let u = 2.0 * rng.next_f64() - 1.0;
            let v = 2.0 * rng.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

impl Sampler for Normal {
    #[inline]
    fn sample<R: Rng64>(&self, rng: &mut R) -> f64 {
        self.mu + self.sigma * Self::standard_sample(rng)
    }
    fn mean(&self) -> f64 {
        self.mu
    }
    fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }
}

/// Exponential distribution with rate `λ` (mean `1/λ`), via inversion.
#[derive(Clone, Copy, Debug)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// New exponential distribution with rate `λ`.
    ///
    /// # Panics
    /// Panics unless `rate > 0`.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "Exponential requires rate > 0");
        Exponential { rate }
    }
}

impl Sampler for Exponential {
    #[inline]
    fn sample<R: Rng64>(&self, rng: &mut R) -> f64 {
        -rng.next_f64_open().ln() / self.rate
    }
    fn mean(&self) -> f64 {
        1.0 / self.rate
    }
    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }
}

/// Gamma distribution with shape `k` and scale `θ` (Marsaglia & Tsang).
#[derive(Clone, Copy, Debug)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// New gamma distribution.
    ///
    /// # Panics
    /// Panics unless `shape > 0` and `scale > 0`.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape > 0.0 && scale > 0.0, "Gamma requires positive params");
        Gamma { shape, scale }
    }

    fn sample_shape_ge1<R: Rng64>(shape: f64, rng: &mut R) -> f64 {
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = Normal::standard_sample(rng);
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u = rng.next_f64_open();
            if u < 1.0 - 0.0331 * x * x * x * x {
                return d * v3;
            }
            if u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
                return d * v3;
            }
        }
    }
}

impl Sampler for Gamma {
    fn sample<R: Rng64>(&self, rng: &mut R) -> f64 {
        let raw = if self.shape >= 1.0 {
            Self::sample_shape_ge1(self.shape, rng)
        } else {
            // Ahrens-Dieter boost: Gamma(k) = Gamma(k+1) · U^(1/k).
            let g = Self::sample_shape_ge1(self.shape + 1.0, rng);
            g * rng.next_f64_open().powf(1.0 / self.shape)
        };
        raw * self.scale
    }
    fn mean(&self) -> f64 {
        self.shape * self.scale
    }
    fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }
}

/// Beta distribution `Beta(α, β)` via the ratio of gammas.
#[derive(Clone, Copy, Debug)]
pub struct Beta {
    alpha: f64,
    beta: f64,
}

impl Beta {
    /// New beta distribution.
    ///
    /// # Panics
    /// Panics unless both parameters are positive.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && beta > 0.0, "Beta requires positive params");
        Beta { alpha, beta }
    }
}

impl Sampler for Beta {
    fn sample<R: Rng64>(&self, rng: &mut R) -> f64 {
        let x = Gamma::new(self.alpha, 1.0).sample(rng);
        let y = Gamma::new(self.beta, 1.0).sample(rng);
        x / (x + y)
    }
    fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }
    fn variance(&self) -> f64 {
        let s = self.alpha + self.beta;
        self.alpha * self.beta / (s * s * (s + 1.0))
    }
}

/// Log-normal distribution: `exp(N(μ, σ²))`.
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// New log-normal with underlying normal parameters `mu`, `sigma`.
    ///
    /// # Panics
    /// Panics if `sigma < 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "LogNormal requires sigma >= 0");
        LogNormal { mu, sigma }
    }
}

impl Sampler for LogNormal {
    #[inline]
    fn sample<R: Rng64>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * Normal::standard_sample(rng)).exp()
    }
    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }
    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_des::Pcg32;

    const N: usize = 200_000;

    fn check_moments<S: Sampler>(s: &S, seed: u64, mean_tol: f64, var_tol: f64) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let xs = s.sample_n(&mut rng, N);
        let mean = xs.iter().sum::<f64>() / N as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (N - 1) as f64;
        assert!(
            (mean - s.mean()).abs() < mean_tol,
            "mean {mean} vs {}",
            s.mean()
        );
        assert!(
            (var - s.variance()).abs() < var_tol,
            "var {var} vs {}",
            s.variance()
        );
    }

    #[test]
    fn uniform_moments() {
        check_moments(&Uniform::new(2.0, 6.0), 1, 0.02, 0.03);
    }

    #[test]
    fn normal_moments() {
        check_moments(&Normal::new(0.5, 0.15), 2, 0.002, 0.001);
        check_moments(&Normal::new(-3.0, 2.0), 3, 0.03, 0.06);
    }

    #[test]
    fn exponential_moments() {
        check_moments(&Exponential::new(2.0), 4, 0.01, 0.01);
    }

    #[test]
    fn gamma_moments() {
        check_moments(&Gamma::new(5.0, 2.0), 5, 0.05, 0.5);
        check_moments(&Gamma::new(0.5, 1.0), 6, 0.01, 0.02);
    }

    #[test]
    fn beta_moments() {
        check_moments(&Beta::new(5.0, 1.0), 7, 0.002, 0.001);
        check_moments(&Beta::new(2.0, 2.0), 8, 0.002, 0.001);
    }

    #[test]
    fn lognormal_moments() {
        check_moments(&LogNormal::new(0.0, 0.25), 9, 0.01, 0.01);
    }

    #[test]
    fn beta_stays_in_unit_interval() {
        let mut rng = Pcg32::seed_from_u64(10);
        let b = Beta::new(5.0, 1.0);
        for _ in 0..10_000 {
            let x = b.sample(&mut rng);
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn exponential_is_positive() {
        let mut rng = Pcg32::seed_from_u64(11);
        let e = Exponential::new(0.1);
        for _ in 0..10_000 {
            assert!(e.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn zero_sigma_normal_is_constant() {
        let mut rng = Pcg32::seed_from_u64(12);
        let n = Normal::new(4.2, 0.0);
        for _ in 0..100 {
            assert_eq!(n.sample(&mut rng), 4.2);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let n = Normal::new(0.0, 1.0);
        let a = n.sample_n(&mut Pcg32::seed_from_u64(42), 32);
        let b = n.sample_n(&mut Pcg32::seed_from_u64(42), 32);
        assert_eq!(a, b);
    }

    #[test]
    fn normal_skewness_near_zero() {
        let mut rng = Pcg32::seed_from_u64(13);
        let xs = Normal::standard().sample_n(&mut rng, N);
        let mean = xs.iter().sum::<f64>() / N as f64;
        let sd = (xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / N as f64).sqrt();
        let skew = xs.iter().map(|x| ((x - mean) / sd).powi(3)).sum::<f64>() / N as f64;
        assert!(skew.abs() < 0.03, "skew {skew}");
    }

    #[test]
    #[should_panic(expected = "positive params")]
    fn beta_rejects_bad_params() {
        Beta::new(0.0, 1.0);
    }
}
