//! Smoothing splines for price-series pre-smoothing.
//!
//! The paper (§5.4) applies a cubic smoothing spline before fitting the
//! AR model, because raw prices exhibit sharp drops when batch jobs finish.
//! Price snapshots arrive on an even 10-second grid, where the cubic
//! smoothing spline coincides with the **Whittaker–Henderson graduation**
//! (penalized least squares with a second-difference penalty):
//!
//! `min_z Σ (y_i − z_i)² + λ Σ (z_{i−1} − 2z_i + z_{i+1})²`
//!
//! The normal equations `(I + λ·D₂ᵀD₂)·z = y` form a symmetric positive
//! definite pentadiagonal system solved here with a banded Cholesky in
//! `O(n)` — no dense matrices, suitable for multi-day traces.

/// Smooth `y` with penalty `lambda ≥ 0`. Larger `lambda` → smoother output;
/// `lambda = 0` returns the input unchanged.
///
/// # Panics
/// Panics if `lambda` is negative or not finite.
pub fn smoothing_spline(y: &[f64], lambda: f64) -> Vec<f64> {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "lambda must be finite and >= 0"
    );
    let n = y.len();
    if n < 3 || lambda == 0.0 {
        return y.to_vec();
    }

    // Assemble the pentadiagonal SPD matrix A = I + λ·D₂ᵀD₂ where D₂ is the
    // (n−2)×n second-difference operator. Band storage: diag, off1, off2.
    let mut diag = vec![1.0f64; n];
    let mut off1 = vec![0.0f64; n - 1]; // A[i][i+1]
    let mut off2 = vec![0.0f64; n - 2]; // A[i][i+2]

    for i in 0..(n - 2) {
        // Row i of D₂ touches columns i, i+1, i+2 with weights 1, −2, 1.
        diag[i] += lambda;
        diag[i + 1] += 4.0 * lambda;
        diag[i + 2] += lambda;
        off1[i] += -2.0 * lambda;
        off1[i + 1] += -2.0 * lambda;
        off2[i] += lambda;
    }

    solve_pentadiagonal_spd(&diag, &off1, &off2, y)
}

/// Solve `A·x = b` for a symmetric positive definite pentadiagonal `A`
/// given by its diagonal and first/second superdiagonals, using an LDLᵀ
/// banded factorization.
///
/// # Panics
/// Panics on inconsistent band lengths.
fn solve_pentadiagonal_spd(diag: &[f64], off1: &[f64], off2: &[f64], b: &[f64]) -> Vec<f64> {
    let n = diag.len();
    assert_eq!(off1.len(), n - 1);
    assert_eq!(off2.len(), n - 2);
    assert_eq!(b.len(), n);

    // LDLᵀ with bandwidth 2: L has unit diagonal and subdiagonals l1, l2.
    let mut d = vec![0.0f64; n];
    let mut l1 = vec![0.0f64; n]; // l1[i] = L[i][i-1]
    let mut l2 = vec![0.0f64; n]; // l2[i] = L[i][i-2]

    for i in 0..n {
        let mut di = diag[i];
        if i >= 1 {
            di -= l1[i] * l1[i] * d[i - 1];
        }
        if i >= 2 {
            di -= l2[i] * l2[i] * d[i - 2];
        }
        d[i] = di;
        debug_assert!(di > 0.0, "matrix not positive definite at row {i}");

        // Compute L entries of the rows below that reference column i.
        // (l2[i+1] = L[i+1][i−1] was already set at iteration i−1.)
        if i + 1 < n {
            // L[i+1][i] = (A[i+1][i] − L[i+1][i−1]·d[i−1]·L[i][i−1]) / d[i]
            let mut v = off1[i];
            if i >= 1 {
                v -= l2[i + 1] * d[i - 1] * l1[i];
            }
            l1[i + 1] = v / d[i];
        }
        if i + 2 < n {
            // L[i+2][i] = A[i+2][i] / d[i] (no earlier columns in the band)
            l2[i + 2] = off2[i] / d[i];
        }
    }

    // Forward solve L·y = b.
    let mut y = vec![0.0f64; n];
    for i in 0..n {
        let mut acc = b[i];
        if i >= 1 {
            acc -= l1[i] * y[i - 1];
        }
        if i >= 2 {
            acc -= l2[i] * y[i - 2];
        }
        y[i] = acc;
    }
    // Diagonal solve D·z = y, then back solve Lᵀ·x = z.
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut acc = y[i] / d[i];
        if i + 1 < n {
            acc -= l1[i + 1] * x[i + 1];
        }
        if i + 2 < n {
            acc -= l2[i + 2] * x[i + 2];
        }
        x[i] = acc;
    }
    x
}

/// Choose a smoothing penalty from a target effective window length (in
/// samples): λ grows with the 4th power of the window, the standard
/// equivalent-bandwidth heuristic for second-order penalties.
pub fn lambda_for_window(window_samples: usize) -> f64 {
    let w = window_samples.max(1) as f64;
    // For the Whittaker smoother, the equivalent kernel bandwidth scales as
    // λ^(1/4); invert with a modest constant.
    (w / 2.0).powi(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_des::{Pcg32, Rng64};

    #[test]
    fn lambda_zero_is_identity() {
        let y = vec![1.0, 5.0, 2.0, 8.0];
        assert_eq!(smoothing_spline(&y, 0.0), y);
    }

    #[test]
    fn short_series_pass_through() {
        let y = vec![3.0, 7.0];
        assert_eq!(smoothing_spline(&y, 10.0), y);
    }

    #[test]
    fn linear_data_is_reproduced_exactly() {
        // Second differences of a straight line vanish, so any λ leaves a
        // line unchanged (up to solver round-off).
        let y: Vec<f64> = (0..50).map(|i| 2.0 + 0.5 * i as f64).collect();
        let z = smoothing_spline(&y, 1e6);
        for (a, b) in y.iter().zip(&z) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn smoothing_reduces_noise_variance() {
        let mut rng = Pcg32::seed_from_u64(42);
        let n = 500;
        let y: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.05).sin() + 0.3 * (rng.next_f64() - 0.5))
            .collect();
        let z = smoothing_spline(&y, 50.0);
        // Residual roughness (sum of squared second differences) must drop.
        let rough = |v: &[f64]| -> f64 {
            v.windows(3)
                .map(|w| {
                    let d = w[0] - 2.0 * w[1] + w[2];
                    d * d
                })
                .sum()
        };
        assert!(rough(&z) < 0.2 * rough(&y), "smoothing failed to smooth");
        // And the smooth must stay close to the underlying signal.
        let err: f64 = z
            .iter()
            .enumerate()
            .map(|(i, &zi)| (zi - (i as f64 * 0.05).sin()).abs())
            .sum::<f64>()
            / n as f64;
        assert!(err < 0.1, "mean abs deviation from signal: {err}");
    }

    #[test]
    fn preserves_mean_approximately() {
        let mut rng = Pcg32::seed_from_u64(9);
        let y: Vec<f64> = (0..200).map(|_| 5.0 + rng.next_f64()).collect();
        let z = smoothing_spline(&y, 100.0);
        let my = y.iter().sum::<f64>() / y.len() as f64;
        let mz = z.iter().sum::<f64>() / z.len() as f64;
        assert!((my - mz).abs() < 0.05, "{my} vs {mz}");
    }

    #[test]
    fn heavy_smoothing_flattens_a_spike() {
        let mut y = vec![1.0; 101];
        y[50] = 100.0;
        let z = smoothing_spline(&y, 1e4);
        assert!(z[50] < 30.0, "spike survived: {}", z[50]);
        // Total mass roughly preserved.
        let sy: f64 = y.iter().sum();
        let sz: f64 = z.iter().sum();
        assert!((sy - sz).abs() / sy < 0.05);
    }

    #[test]
    fn solves_known_pentadiagonal_system() {
        // Verify the banded solver against the dense LU from `linalg`.
        use crate::linalg::Matrix;
        let n = 8;
        let diag = vec![6.0; n];
        let off1 = vec![-2.0; n - 1];
        let off2 = vec![0.5; n - 2];
        let b: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();

        let mut dense = Matrix::zeros(n, n);
        for i in 0..n {
            dense[(i, i)] = diag[i];
            if i + 1 < n {
                dense[(i, i + 1)] = off1[i];
                dense[(i + 1, i)] = off1[i];
            }
            if i + 2 < n {
                dense[(i, i + 2)] = off2[i];
                dense[(i + 2, i)] = off2[i];
            }
        }
        let expect = dense.solve(&b).unwrap();
        let got = solve_pentadiagonal_spd(&diag, &off1, &off2, &b);
        for (e, g) in expect.iter().zip(&got) {
            assert!((e - g).abs() < 1e-10, "{e} vs {g}");
        }
    }

    #[test]
    fn lambda_for_window_monotone() {
        assert!(lambda_for_window(10) < lambda_for_window(20));
        assert!(lambda_for_window(1) > 0.0);
    }

    #[test]
    #[should_panic(expected = "lambda must be finite")]
    fn negative_lambda_rejected() {
        smoothing_spline(&[1.0, 2.0, 3.0], -1.0);
    }
}
