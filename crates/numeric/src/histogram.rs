//! Fixed-range histograms.
//!
//! Used as the "measured" reference distribution in the window-approximation
//! experiment (paper Fig. 7) and for rendering the price-bracket plots of
//! Fig. 6. The *self-adjusting* slot table the auctioneer keeps lives in
//! `gm-predict::slots`; this type is the plain equal-width histogram.

/// An equal-width histogram over `[lo, hi)` with `bins` buckets.
/// Out-of-range samples are clamped into the first/last bucket so that
/// proportions always sum to 1 (matching how the paper's price brackets
/// absorb extreme prices).
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// New histogram over `[lo, hi)` with `bins` equal-width buckets.
    ///
    /// # Panics
    /// Panics unless `lo < hi` and `bins >= 1`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "histogram requires lo < hi");
        assert!(bins >= 1, "histogram requires at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Build directly from samples.
    pub fn from_samples(lo: f64, hi: f64, bins: usize, xs: &[f64]) -> Self {
        let mut h = Histogram::new(lo, hi, bins);
        for &x in xs {
            h.add(x);
        }
        h
    }

    /// Bucket index for a value (clamped into range).
    #[inline]
    pub fn bin_of(&self, x: f64) -> usize {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = ((x - self.lo) / w).floor();
        (idx.max(0.0) as usize).min(self.counts.len() - 1)
    }

    /// Record one sample.
    pub fn add(&mut self, x: f64) {
        let b = self.bin_of(x);
        self.counts[b] += 1;
        self.total += 1;
    }

    /// Number of buckets.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Proportion of samples in each bucket (all zeros when empty).
    pub fn proportions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Midpoint value of bucket `b`.
    pub fn bin_center(&self, b: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (b as f64 + 0.5) * w
    }

    /// Lower edge of bucket `b`.
    pub fn bin_left(&self, b: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + b as f64 * w
    }

    /// Total-variation distance to another histogram over the same shape
    /// (½·Σ|p_i − q_i|; 0 = identical, 1 = disjoint).
    ///
    /// # Panics
    /// Panics if bucket counts differ.
    pub fn tv_distance(&self, other: &Histogram) -> f64 {
        assert_eq!(self.bins(), other.bins(), "histogram shape mismatch");
        let p = self.proportions();
        let q = other.proportions();
        0.5 * p.iter().zip(&q).map(|(a, b)| (a - b).abs()).sum::<f64>()
    }

    /// Histogram mean estimated from bucket centers.
    pub fn approx_mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts
            .iter()
            .enumerate()
            .map(|(b, &c)| self.bin_center(b) * c as f64)
            .sum::<f64>()
            / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(0.5);
        h.add(5.5);
        h.add(9.99);
        assert_eq!(h.counts(), &[1, 0, 0, 0, 0, 1, 0, 0, 0, 1]);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-100.0);
        h.add(100.0);
        h.add(1.0); // exactly hi clamps into last bucket
        assert_eq!(h.counts(), &[1, 0, 0, 2]);
    }

    #[test]
    fn proportions_sum_to_one() {
        let xs: Vec<f64> = (0..1000).map(|i| (i % 97) as f64 / 97.0).collect();
        let h = Histogram::from_samples(0.0, 1.0, 13, &xs);
        let s: f64 = h.proportions().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_proportions_are_zero() {
        let h = Histogram::new(0.0, 1.0, 5);
        assert_eq!(h.proportions(), vec![0.0; 5]);
        assert_eq!(h.approx_mean(), 0.0);
    }

    #[test]
    fn bin_centers_and_edges() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bin_center(0), 1.0);
        assert_eq!(h.bin_center(4), 9.0);
        assert_eq!(h.bin_left(1), 2.0);
    }

    #[test]
    fn tv_distance_bounds() {
        let a = Histogram::from_samples(0.0, 1.0, 4, &[0.1, 0.1, 0.1]);
        let b = Histogram::from_samples(0.0, 1.0, 4, &[0.9, 0.9, 0.9]);
        assert!((a.tv_distance(&b) - 1.0).abs() < 1e-12);
        assert_eq!(a.tv_distance(&a), 0.0);
    }

    #[test]
    fn approx_mean_close_to_true_mean() {
        let xs: Vec<f64> = (0..10_000).map(|i| (i % 100) as f64 / 100.0).collect();
        let h = Histogram::from_samples(0.0, 1.0, 50, &xs);
        let true_mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((h.approx_mean() - true_mean).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn bad_range_rejected() {
        Histogram::new(1.0, 1.0, 4);
    }
}
