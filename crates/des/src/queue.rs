//! Priority event queue with deterministic ordering and lazy cancellation.
//!
//! Events at equal timestamps fire in insertion order (FIFO), which keeps
//! runs reproducible. Cancellation is *lazy*: a cancelled id is remembered
//! and the entry is dropped when it reaches the head, making `cancel` O(1)
//! amortized without tombstone traversal.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::time::SimTime;

/// Handle identifying a scheduled event; returned by `push`, accepted by
/// `cancel`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    /// The raw sequence number (also the global insertion order).
    pub fn raw(self) -> u64 {
        self.0
    }
}

struct Entry<T> {
    time: SimTime,
    id: EventId,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.id == other.id
    }
}
impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time (then lowest id)
        // is popped first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.id.cmp(&self.id))
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered queue of events of type `T`.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    cancelled: HashSet<EventId>,
    next_id: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_id: 0,
        }
    }

    /// Schedule `payload` at absolute time `time`; returns a cancellable id.
    pub fn push(&mut self, time: SimTime, payload: T) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.heap.push(Entry { time, id, payload });
        id
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (not yet fired or cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_id {
            return false;
        }
        // We cannot cheaply know whether the id already fired; track it and
        // let `pop` discard. Guard against unbounded growth by only storing
        // ids that could still be in the heap.
        if self.cancelled.contains(&id) {
            return false;
        }
        self.cancelled.insert(id);
        true
    }

    /// Time of the next pending event, skipping cancelled entries.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, T)> {
        self.skip_cancelled();
        self.heap.pop().map(|e| (e.time, e.id, e.payload))
    }

    fn skip_cancelled(&mut self) {
        while let Some(head) = self.heap.peek() {
            if self.cancelled.remove(&head.id) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }

    /// Number of entries in the heap (including not-yet-dropped cancelled
    /// entries; an upper bound on pending events).
    pub fn len_upper_bound(&self) -> usize {
        self.heap.len()
    }

    /// True if no pending (non-cancelled) events remain.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(5), "e5");
        q.push(t(1), "e1");
        q.push(t(3), "e3");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec!["e1", "e3", "e5"]);
    }

    #[test]
    fn fifo_at_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        let b = q.push(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        let (_, id, p) = q.pop().unwrap();
        assert_eq!(p, "b");
        assert_eq!(id, b);
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
    }

    #[test]
    fn is_empty_reflects_cancellations() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), ());
        assert!(!q.is_empty());
        q.cancel(a);
        assert!(q.is_empty());
    }

    /// Whatever the schedule order, pops come out sorted by (time,
    /// insertion order) with cancelled ids absent.
    #[test]
    fn pops_are_sorted_and_respect_cancellation() {
        crate::check::check("pops_are_sorted_and_respect_cancellation", 256, |g| {
            let entries = g.vec_with(1, 59, |g| (g.u64_in(0, 99), g.bool()));
            let mut q = EventQueue::new();
            let mut ids = Vec::new();
            for (secs, cancel) in &entries {
                let id = q.push(t(*secs), *secs);
                ids.push((id, *cancel));
            }
            let mut expected: Vec<(u64, u64)> = Vec::new();
            for ((id, cancel), (secs, _)) in ids.iter().zip(&entries) {
                if *cancel {
                    q.cancel(*id);
                } else {
                    expected.push((*secs, id.raw()));
                }
            }
            expected.sort();
            let mut got = Vec::new();
            while let Some((time, id, _)) = q.pop() {
                got.push((time.as_micros() / 1_000_000, id.raw()));
            }
            assert_eq!(got, expected);
        });
    }

    /// `peek_time` always equals the time of the next `pop`.
    #[test]
    fn peek_matches_pop() {
        crate::check::check("peek_matches_pop", 256, |g| {
            let times = g.vec_with(1, 39, |g| g.u64_in(0, 49));
            let mut q = EventQueue::new();
            for &s in &times {
                q.push(t(s), ());
            }
            while let Some(peek) = q.peek_time() {
                let (popped, _, _) = q.pop().expect("peek implies pop");
                assert_eq!(peek, popped);
            }
            assert!(q.is_empty());
        });
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(t(10), 10);
        q.push(t(20), 20);
        let (time, _, v) = q.pop().unwrap();
        assert_eq!((time, v), (t(10), 10));
        q.push(t(15), 15);
        let (_, _, v) = q.pop().unwrap();
        assert_eq!(v, 15);
        let (_, _, v) = q.pop().unwrap();
        assert_eq!(v, 20);
    }
}
