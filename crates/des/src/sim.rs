//! The simulation executor.
//!
//! A [`Sim<S>`] owns the clock and the event queue; the caller owns the
//! world state `S`. Handlers are `FnOnce(&mut S, &mut Sim<S>)` — they are
//! popped off the queue *before* being invoked, so they can freely schedule
//! and cancel further events through the `&mut Sim<S>` they receive.
//!
//! ```
//! use gm_des::{Sim, SimDuration, SimTime};
//!
//! let mut sim: Sim<u32> = Sim::new();
//! let mut counter = 0u32;
//! sim.schedule_in(SimDuration::from_secs(5), |c: &mut u32, sim| {
//!     *c += 1;
//!     sim.schedule_in(SimDuration::from_secs(5), |c: &mut u32, _| *c += 10);
//! });
//! sim.run(&mut counter);
//! assert_eq!(counter, 11);
//! assert_eq!(sim.now(), SimTime::from_secs(10));
//! ```

use std::ops::ControlFlow;

use crate::queue::{EventId, EventQueue};
use crate::time::{SimDuration, SimTime};

/// A scheduled event handler.
pub type Handler<S> = Box<dyn FnOnce(&mut S, &mut Sim<S>)>;

/// Discrete-event simulator over world state `S`.
pub struct Sim<S> {
    queue: EventQueue<Handler<S>>,
    now: SimTime,
    fired: u64,
}

/// Alias kept for API clarity in signatures that only schedule/cancel.
pub type Context<S> = Sim<S>;

impl<S: 'static> Default for Sim<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: 'static> Sim<S> {
    /// New simulator with the clock at zero.
    pub fn new() -> Self {
        Sim {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            fired: 0,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events fired so far.
    #[inline]
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Schedule a handler at absolute time `at`. Times in the past are
    /// clamped to `now` (the event fires on the next step).
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        f: impl FnOnce(&mut S, &mut Sim<S>) + 'static,
    ) -> EventId {
        let at = at.max(self.now);
        self.queue.push(at, Box::new(f))
    }

    /// Schedule a handler `after` from now.
    pub fn schedule_in(
        &mut self,
        after: SimDuration,
        f: impl FnOnce(&mut S, &mut Sim<S>) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + after, f)
    }

    /// Schedule a recurring handler starting at `first`, repeating every
    /// `every` until the closure returns [`ControlFlow::Break`].
    pub fn schedule_every(
        &mut self,
        first: SimTime,
        every: SimDuration,
        f: impl FnMut(&mut S, &mut Sim<S>) -> ControlFlow<()> + 'static,
    ) -> EventId {
        assert!(!every.is_zero(), "recurring event with zero period");
        let cell = std::rc::Rc::new(std::cell::RefCell::new(f));
        let handler = recurring_handler(cell, every);
        self.schedule_at(first, handler)
    }

    /// Cancel a pending event. Returns `true` if it had not yet fired.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Time of the next pending event, if any.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Fire the next event. Returns `false` if the queue is empty.
    pub fn step(&mut self, state: &mut S) -> bool {
        match self.queue.pop() {
            Some((time, _, handler)) => {
                debug_assert!(time >= self.now, "time went backwards");
                self.now = time;
                self.fired += 1;
                handler(state, self);
                true
            }
            None => false,
        }
    }

    /// Run until the queue is empty or the next event is after `until`;
    /// the clock is left at `min(until, last event time)`… specifically,
    /// events at exactly `until` DO fire. Returns the number of events fired.
    pub fn run_until(&mut self, state: &mut S, until: SimTime) -> u64 {
        let start = self.fired;
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            self.step(state);
        }
        // Advance the clock to `until` so subsequent `schedule_in` calls are
        // relative to the requested horizon.
        if self.now < until {
            self.now = until;
        }
        self.fired - start
    }

    /// Run until the queue drains. Returns the number of events fired.
    pub fn run(&mut self, state: &mut S) -> u64 {
        let start = self.fired;
        while self.step(state) {}
        self.fired - start
    }
}

fn recurring_handler<S, F>(
    f: std::rc::Rc<std::cell::RefCell<F>>,
    every: SimDuration,
) -> Handler<S>
where
    F: FnMut(&mut S, &mut Sim<S>) -> ControlFlow<()> + 'static,
    S: 'static,
{
    Box::new(move |state: &mut S, sim: &mut Sim<S>| {
        let flow = (f.borrow_mut())(state, sim);
        if flow.is_continue() {
            let next = sim.now() + every;
            let h = recurring_handler(f.clone(), every);
            sim.queue.push(next, h);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_order_and_clock_advances() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        let mut log = Vec::new();
        sim.schedule_at(SimTime::from_secs(3), |l: &mut Vec<u64>, s| {
            l.push(s.now().as_micros())
        });
        sim.schedule_at(SimTime::from_secs(1), |l: &mut Vec<u64>, s| {
            l.push(s.now().as_micros())
        });
        sim.run(&mut log);
        assert_eq!(log, vec![1_000_000, 3_000_000]);
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    #[test]
    fn handlers_can_schedule_more_events() {
        let mut sim: Sim<u32> = Sim::new();
        let mut n = 0;
        sim.schedule_in(SimDuration::from_secs(1), |n: &mut u32, sim| {
            *n += 1;
            sim.schedule_in(SimDuration::from_secs(1), |n: &mut u32, _| *n += 1);
        });
        let fired = sim.run(&mut n);
        assert_eq!(n, 2);
        assert_eq!(fired, 2);
        assert_eq!(sim.now(), SimTime::from_secs(2));
    }

    #[test]
    fn run_until_stops_at_horizon_inclusive() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        let mut log = Vec::new();
        for s in 1..=10u64 {
            sim.schedule_at(SimTime::from_secs(s), move |l: &mut Vec<u64>, _| l.push(s));
        }
        sim.run_until(&mut log, SimTime::from_secs(5));
        assert_eq!(log, vec![1, 2, 3, 4, 5]);
        assert_eq!(sim.now(), SimTime::from_secs(5));
        sim.run(&mut log);
        assert_eq!(log, vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn run_until_advances_clock_when_idle() {
        let mut sim: Sim<()> = Sim::new();
        sim.run_until(&mut (), SimTime::from_secs(100));
        assert_eq!(sim.now(), SimTime::from_secs(100));
    }

    #[test]
    fn cancellation_prevents_firing() {
        let mut sim: Sim<u32> = Sim::new();
        let mut n = 0;
        let id = sim.schedule_in(SimDuration::from_secs(1), |n: &mut u32, _| *n += 1);
        assert!(sim.cancel(id));
        sim.run(&mut n);
        assert_eq!(n, 0);
    }

    #[test]
    fn recurring_event_runs_until_break() {
        let mut sim: Sim<u32> = Sim::new();
        let mut n = 0;
        sim.schedule_every(
            SimTime::from_secs(10),
            SimDuration::from_secs(10),
            |n: &mut u32, _| {
                *n += 1;
                if *n >= 5 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            },
        );
        sim.run(&mut n);
        assert_eq!(n, 5);
        assert_eq!(sim.now(), SimTime::from_secs(50));
    }

    #[test]
    fn past_schedules_clamp_to_now() {
        let mut sim: Sim<Vec<&'static str>> = Sim::new();
        let mut log = Vec::new();
        sim.schedule_at(SimTime::from_secs(5), |l: &mut Vec<&'static str>, sim| {
            l.push("outer");
            // schedule "in the past" — must fire at t=5, not panic
            sim.schedule_at(SimTime::from_secs(1), |l: &mut Vec<&'static str>, _| {
                l.push("clamped")
            });
        });
        sim.run(&mut log);
        assert_eq!(log, vec!["outer", "clamped"]);
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "zero period")]
    fn zero_period_recurring_panics() {
        let mut sim: Sim<()> = Sim::new();
        sim.schedule_every(SimTime::ZERO, SimDuration::ZERO, |_, _| {
            ControlFlow::Continue(())
        });
    }
}
