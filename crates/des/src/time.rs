//! Integer simulation time.
//!
//! All simulation timestamps are microseconds since the start of the run,
//! held in a `u64`. 2^64 µs is ~584,000 years, comfortably beyond the 40 h
//! traces of the paper's evaluation. Integer time keeps event ordering exact
//! and makes runs reproducible across platforms.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Microseconds per second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An instant in simulated time (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Raw microseconds since simulation start.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float (for statistics/plots).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Hours since simulation start as a float.
    #[inline]
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// Minutes since simulation start as a float.
    #[inline]
    pub fn as_minutes_f64(self) -> f64 {
        self.as_secs_f64() / 60.0
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Construct from whole minutes.
    #[inline]
    pub const fn from_minutes(m: u64) -> Self {
        SimDuration(m * 60 * MICROS_PER_SEC)
    }

    /// Construct from whole hours.
    #[inline]
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3600 * MICROS_PER_SEC)
    }

    /// Construct from fractional seconds. Negative values clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            return SimDuration(0);
        }
        SimDuration((s * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Raw microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Hours as a float.
    #[inline]
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// Minutes as a float.
    #[inline]
    pub fn as_minutes_f64(self) -> f64 {
        self.as_secs_f64() / 60.0
    }

    /// True if the duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale by a non-negative float, rounding to the nearest microsecond.
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0, "negative duration scale {k}");
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, t: SimTime) -> SimDuration {
        SimDuration(self.0 - t.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 - d.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, d: SimDuration) {
        self.0 -= d.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    #[inline]
    fn div(self, d: SimDuration) -> f64 {
        self.0 as f64 / d.0 as f64
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 3600.0 {
            write!(f, "{:.2}h", s / 3600.0)
        } else if s >= 60.0 {
            write!(f, "{:.2}m", s / 60.0)
        } else {
            write!(f, "{s:.3}s")
        }
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_minutes(3).as_secs_f64(), 180.0);
        assert_eq!(SimDuration::from_hours(2).as_minutes_f64(), 120.0);
        assert_eq!(SimDuration::from_millis(1500).as_secs_f64(), 1.5);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t, SimTime::from_secs(15));
        assert_eq!(t - SimTime::from_secs(5), SimDuration::from_secs(10));
        assert_eq!(SimDuration::from_secs(4) / 2, SimDuration::from_secs(2));
        assert_eq!(SimDuration::from_secs(3) * 2, SimDuration::from_secs(6));
        assert_eq!(SimDuration::from_secs(1) / SimDuration::from_secs(4), 0.25);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(5);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration::from_secs(4));
    }

    #[test]
    fn from_secs_f64_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimTime::from_secs(120)), "2.00m");
        assert_eq!(format!("{}", SimTime::from_secs(7200)), "2.00h");
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_micros(10).mul_f64(0.25);
        assert_eq!(d.as_micros(), 3); // 2.5 rounds to 3 (round half away from zero)
        assert_eq!(SimDuration::from_secs(1).mul_f64(2.0).as_secs_f64(), 2.0);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::MAX > SimTime::from_secs(u32::MAX as u64));
    }
}
