//! Deterministic pseudo-random number generation.
//!
//! Experiments must be byte-for-byte reproducible from a seed, so the kernel
//! ships its own generators instead of depending on `rand` (whose stream is
//! not guaranteed stable across versions):
//!
//! * [`SplitMix64`] — used for seeding and for cheap splitting of one master
//!   seed into independent per-component streams.
//! * [`Pcg32`] — PCG-XSH-RR 64/32, the workhorse generator.
//!
//! Distribution samplers (normal, exponential, beta, …) live in
//! `gm-numeric::samplers` and are generic over the [`Rng64`] trait.

/// A source of uniformly distributed 64-bit values.
///
/// The contract: `next_u64` returns the next value of a deterministic stream
/// fully determined by the generator's seed.
pub trait Rng64 {
    /// Next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly distributed `u32`.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in the half-open interval `[0, 1)`.
    ///
    /// Uses the top 53 bits so every representable value is equally likely.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in the open interval `(0, 1)` — safe for `ln()`.
    #[inline]
    fn next_f64_open(&mut self) -> f64 {
        loop {
            let x = self.next_f64();
            if x > 0.0 {
                return x;
            }
        }
    }

    /// Uniform integer in `[0, bound)` via Lemire's unbiased method.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_bounded(0)");
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    fn next_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Fisher–Yates shuffle of a slice.
    fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_bounded(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

/// SplitMix64 (Steele, Lea, Flood 2014). Passes BigCrush; ideal for seeding.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a seed. Any seed, including 0, is fine.
    #[inline]
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derive an independent child seed (hash of the current state and a
    /// stream index). Used to split one master seed across components.
    pub fn child_seed(&self, stream: u64) -> u64 {
        let mut s = SplitMix64::new(self.state ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        s.next_u64()
    }
}

impl Rng64 for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// PCG-XSH-RR 64/32 (O'Neill 2014). Small state, excellent quality.
#[derive(Clone, Debug)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;

impl Pcg32 {
    /// Create from a seed and stream id. Different stream ids give
    /// statistically independent sequences for the same seed.
    pub fn new(seed: u64, stream: u64) -> Self {
        let inc = (stream << 1) | 1;
        let mut pcg = Pcg32 { state: 0, inc };
        pcg.step();
        pcg.state = pcg.state.wrapping_add(seed);
        pcg.step();
        pcg
    }

    /// Create from a single seed (stream 0), convenient for tests.
    pub fn seed_from_u64(seed: u64) -> Self {
        Pcg32::new(seed, 0x0A02_BDBF_7BB3_C0A7)
    }

    #[inline]
    fn step(&mut self) {
        self.state = self.state.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
    }

    #[inline]
    fn output(state: u64) -> u32 {
        let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
        let rot = (state >> 59) as u32;
        xorshifted.rotate_right(rot)
    }
}

impl Rng64 for Pcg32 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.step();
        Self::output(old)
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // implementation by Sebastiano Vigna.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
        assert_eq!(r.next_u64(), 9817491932198370423);
    }

    #[test]
    fn pcg_is_deterministic_and_stream_dependent() {
        let mut a = Pcg32::new(42, 1);
        let mut b = Pcg32::new(42, 1);
        let mut c = Pcg32::new(42, 2);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Pcg32::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn f64_open_never_zero() {
        let mut r = Pcg32::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(r.next_f64_open() > 0.0);
        }
    }

    #[test]
    fn bounded_is_unbiased_roughly() {
        let mut r = Pcg32::seed_from_u64(99);
        let mut counts = [0usize; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[r.next_bounded(7) as usize] += 1;
        }
        let expected = n / 7;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected as f64).abs() / expected as f64;
            assert!(dev < 0.05, "bucket {i} deviates {dev:.3}");
        }
    }

    #[test]
    fn bounded_upper_limit_respected() {
        let mut r = Pcg32::seed_from_u64(3);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..1000 {
                assert!(r.next_bounded(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "next_bounded(0)")]
    fn bounded_zero_panics() {
        Pcg32::seed_from_u64(0).next_bounded(0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Pcg32::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left identity");
    }

    #[test]
    fn child_seeds_differ() {
        let master = SplitMix64::new(2024);
        let s1 = master.child_seed(1);
        let s2 = master.child_seed(2);
        assert_ne!(s1, s2);
        // and are stable
        assert_eq!(s1, SplitMix64::new(2024).child_seed(1));
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut r = Pcg32::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
