//! Minimal seeded property-testing harness.
//!
//! The workspace builds in offline environments, so it cannot rely on an
//! external property-testing crate. This module provides the small subset
//! the test suites need: a [`Gen`] that derives arbitrary values from the
//! kernel's own [`SplitMix64`] stream, and a [`check`] driver that runs a
//! property over many deterministically-seeded cases and reports the
//! failing case seed so any counterexample can be replayed exactly.
//!
//! ```
//! use gm_des::check::{check, Gen};
//!
//! check("addition_commutes", 64, |g: &mut Gen| {
//!     let a = g.u64_in(0, 1 << 30);
//!     let b = g.u64_in(0, 1 << 30);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::rng::{Rng64, SplitMix64};

/// Deterministic generator of arbitrary test inputs.
pub struct Gen {
    rng: SplitMix64,
}

impl Gen {
    /// Generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Gen {
            rng: SplitMix64::new(seed),
        }
    }

    /// Uniform `u64`.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform `u64` in the inclusive range `[lo, hi]`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "u64_in: empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.rng.next_u64();
        }
        lo + self.rng.next_bounded(span + 1)
    }

    /// Uniform `usize` in the inclusive range `[lo, hi]`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// Uniform `i64` in the inclusive range `[lo, hi]`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "i64_in: empty range");
        let span = (hi as i128 - lo as i128) as u128;
        if span >= u64::MAX as u128 {
            return self.rng.next_u64() as i64;
        }
        (lo as i128 + self.rng.next_bounded(span as u64 + 1) as i128) as i64
    }

    /// Uniform `f64` in the half-open range `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "f64_in: empty range");
        lo + self.rng.next_f64() * (hi - lo)
    }

    /// Fair coin flip.
    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// `true` with probability `num / den`.
    pub fn ratio(&mut self, num: u32, den: u32) -> bool {
        assert!(den > 0 && num <= den, "ratio: bad probability");
        self.rng.next_bounded(den as u64) < num as u64
    }

    /// Pick a uniformly random element of `xs`.
    ///
    /// # Panics
    /// Panics if `xs` is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose: empty slice");
        &xs[self.usize_in(0, xs.len() - 1)]
    }

    /// Vector of `len ∈ [lo, hi]` elements drawn by `f`.
    pub fn vec_with<T>(
        &mut self,
        lo: usize,
        hi: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.usize_in(lo, hi);
        (0..len).map(|_| f(self)).collect()
    }

    /// Byte string of `len ∈ [lo, hi]`.
    pub fn bytes(&mut self, lo: usize, hi: usize) -> Vec<u8> {
        self.vec_with(lo, hi, |g| g.u64_in(0, 255) as u8)
    }

    /// Printable-ASCII string of `len ∈ [lo, hi]`.
    pub fn ascii_string(&mut self, lo: usize, hi: usize) -> String {
        self.vec_with(lo, hi, |g| g.u64_in(0x20, 0x7e) as u8 as char)
            .into_iter()
            .collect()
    }

    /// Access to the underlying RNG for structured generation.
    pub fn rng(&mut self) -> &mut SplitMix64 {
        &mut self.rng
    }
}

/// 64-bit FNV-1a, used to derive a stable per-property base seed.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Seed of case `case` of property `name` (exposed so a failing case can be
/// replayed in isolation with [`Gen::new`]).
pub fn case_seed(name: &str, case: u32) -> u64 {
    fnv1a(name) ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(case as u64 + 1))
}

/// Run `prop` across `cases` deterministically-seeded cases.
///
/// On failure, the case index and seed are printed before the panic is
/// re-raised, so the counterexample replays with `Gen::new(seed)`.
pub fn check(name: &str, cases: u32, mut prop: impl FnMut(&mut Gen)) {
    for case in 0..cases {
        let seed = case_seed(name, case);
        let mut g = Gen::new(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| prop(&mut g))) {
            eprintln!(
                "property '{name}' failed at case {case}/{cases} \
                 (replay with Gen::new({seed:#018x}))"
            );
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Gen::new(7);
        let mut b = Gen::new(7);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut g = Gen::new(42);
        for _ in 0..1000 {
            let v = g.u64_in(10, 20);
            assert!((10..=20).contains(&v));
            let f = g.f64_in(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = g.i64_in(-5, 5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn check_runs_all_cases() {
        let mut n = 0;
        check("counting", 17, |_| n += 1);
        assert_eq!(n, 17);
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn check_propagates_failures() {
        check("failing", 4, |g| {
            let v = g.u64_in(0, 10);
            assert!(v > 100, "deliberate");
        });
    }

    #[test]
    fn case_seeds_differ() {
        let a = case_seed("p", 0);
        let b = case_seed("p", 1);
        let c = case_seed("q", 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
