//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] is a time-sorted schedule of [`FaultEvent`]s — host
//! crashes and recoveries, VM failures, message delays/drops, and bank
//! unavailability windows. Plans are either built explicitly (fixed times,
//! for regression scenarios) or generated from a seed with
//! [`FaultPlan::generate`], so chaos runs are byte-reproducible: the same
//! seed always yields the same schedule, and the consumers downstream
//! (market, grid, scenario driver) are themselves deterministic.
//!
//! The kernel crate knows nothing about hosts or banks; targets are plain
//! `u32` indices that the layer applying the plan maps onto its own IDs.

use crate::rng::{Rng64, SplitMix64};
use crate::time::{SimDuration, SimTime};

/// The kind of a scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// A host fails abruptly: its bids are evicted, its VMs die, and any
    /// subjob running on it is interrupted.
    HostCrash,
    /// A previously crashed host rejoins the market (empty, no VMs).
    HostRecover,
    /// A single VM on an otherwise healthy host dies.
    VmFailure,
    /// A service message is delayed by `target` microseconds (live runtime).
    MessageDelay,
    /// A service message is dropped outright (live runtime).
    MessageDrop,
    /// The bank becomes unreachable; money movement fails until the paired
    /// [`FaultKind::BankRestore`].
    BankOutage,
    /// The bank comes back online.
    BankRestore,
    /// The bank process dies and is brought back from its durable journal
    /// (snapshot + WAL replay). Unlike [`FaultKind::BankOutage`], the
    /// in-memory bank state is discarded — only journaled state survives.
    ///
    /// Appended last so the `(at, kind, target)` sort order of plans that
    /// never schedule restarts is unchanged.
    BankRestart,
    /// The service links degrade: quotes and transfers become lossy until
    /// the paired [`FaultKind::LinkUp`], and consumers fall back to
    /// degraded-mode pricing (`DESIGN.md` §12).
    ///
    /// Appended after [`FaultKind::BankRestart`] so existing plans keep
    /// their `(at, kind, target)` sort order.
    LinkDown,
    /// The degraded service links recover.
    LinkUp,
    /// A strategic adversary cohort arrives (the `gm-adversary` attack
    /// library materialises the actual hostile job requests at these
    /// times; policies themselves only trace the event). `target` is the
    /// adversary index within the cohort.
    ///
    /// Appended after [`FaultKind::LinkUp`] so existing plans keep their
    /// `(at, kind, target)` sort order.
    AdversaryArrival,
}

/// One scheduled fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulation time at which the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
    /// Target index: host index for host/VM faults, delay in microseconds
    /// for `MessageDelay`, unused (0) for bank faults.
    pub target: u32,
}

/// Parameters for seeded fault-schedule generation.
#[derive(Debug, Clone, Copy)]
pub struct FaultGenConfig {
    /// Number of hosts fault targets are drawn from (indices `0..hosts`).
    pub hosts: u32,
    /// Faults are scheduled strictly before this time.
    pub horizon: SimTime,
    /// Number of host crash events (each paired with a recovery).
    pub crashes: u32,
    /// Mean downtime between a crash and its recovery; actual downtimes are
    /// jittered uniformly in `[0.5, 1.5] ×` this value.
    pub mean_downtime: SimDuration,
    /// Number of standalone VM failures.
    pub vm_failures: u32,
    /// Number of bank unavailability windows.
    pub bank_outages: u32,
    /// Length of each bank outage window.
    pub outage_len: SimDuration,
    /// Number of bank restarts (kill + recover from the durable journal).
    pub bank_restarts: u32,
    /// Number of degraded-link windows (each paired with a recovery).
    pub link_outages: u32,
    /// Length of each degraded-link window.
    pub link_outage_len: SimDuration,
    /// Number of adversary arrival events (strategic-bidder cohorts;
    /// `gm-adversary` turns them into hostile job requests). Drawn after
    /// every other stream so pre-adversary seeds keep their schedules
    /// byte-identical.
    pub adversary_arrivals: u32,
}

impl Default for FaultGenConfig {
    fn default() -> Self {
        FaultGenConfig {
            hosts: 4,
            horizon: SimTime::from_secs(4 * 3600),
            crashes: 2,
            mean_downtime: SimDuration::from_minutes(30),
            vm_failures: 2,
            bank_outages: 1,
            outage_len: SimDuration::from_minutes(5),
            bank_restarts: 0,
            link_outages: 0,
            link_outage_len: SimDuration::from_minutes(5),
            adversary_arrivals: 0,
        }
    }
}

/// A deterministic, time-sorted schedule of fault events.
///
/// Events are consumed in order via [`FaultPlan::take_due`]; the cursor
/// never rewinds, so a driver polling once per interval sees every event
/// exactly once.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    cursor: usize,
}

impl FaultPlan {
    /// Empty plan (no faults — chaos runs degenerate to normal runs).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Generate a random but fully seed-determined plan.
    ///
    /// Per-host crash/recovery windows never overlap: a host that is down
    /// cannot crash again until after it has recovered. Draws that cannot
    /// be placed without overlap after a bounded number of retries are
    /// dropped (the plan then simply contains fewer crashes).
    pub fn generate(seed: u64, cfg: FaultGenConfig) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut plan = FaultPlan::new();
        if cfg.horizon == SimTime::ZERO {
            return plan;
        }
        let horizon_us = cfg.horizon.as_micros();

        // Host crash + recovery pairs, non-overlapping per host.
        let mut busy: Vec<Vec<(u64, u64)>> = vec![Vec::new(); cfg.hosts as usize];
        for _ in 0..cfg.crashes {
            if cfg.hosts == 0 {
                break;
            }
            for _attempt in 0..16 {
                let host = rng.next_bounded(cfg.hosts as u64) as u32;
                let at = rng.next_bounded(horizon_us);
                let jitter = 0.5 + rng.next_f64();
                let down = cfg.mean_downtime.mul_f64(jitter).as_micros().max(1);
                let until = at.saturating_add(down);
                let lanes = &mut busy[host as usize];
                if lanes.iter().all(|&(s, e)| until < s || at > e) {
                    lanes.push((at, until));
                    plan.push(SimTime::from_micros(at), FaultKind::HostCrash, host);
                    if until < horizon_us {
                        plan.push(SimTime::from_micros(until), FaultKind::HostRecover, host);
                    }
                    break;
                }
            }
        }

        // Standalone VM failures on any host.
        for _ in 0..cfg.vm_failures {
            if cfg.hosts == 0 {
                break;
            }
            let host = rng.next_bounded(cfg.hosts as u64) as u32;
            let at = rng.next_bounded(horizon_us);
            plan.push(SimTime::from_micros(at), FaultKind::VmFailure, host);
        }

        // Bank outage windows.
        for _ in 0..cfg.bank_outages {
            let at = rng.next_bounded(horizon_us);
            let until = at.saturating_add(cfg.outage_len.as_micros().max(1));
            plan.push(SimTime::from_micros(at), FaultKind::BankOutage, 0);
            if until < horizon_us {
                plan.push(SimTime::from_micros(until), FaultKind::BankRestore, 0);
            }
        }

        // Bank restarts (drawn last, so pre-restart seeds keep their
        // schedules byte-identical).
        for _ in 0..cfg.bank_restarts {
            let at = rng.next_bounded(horizon_us);
            plan.push(SimTime::from_micros(at), FaultKind::BankRestart, 0);
        }

        // Degraded-link windows (drawn after every earlier stream, same
        // seed-stability contract as bank restarts).
        for _ in 0..cfg.link_outages {
            let at = rng.next_bounded(horizon_us);
            let until = at.saturating_add(cfg.link_outage_len.as_micros().max(1));
            plan.push(SimTime::from_micros(at), FaultKind::LinkDown, 0);
            if until < horizon_us {
                plan.push(SimTime::from_micros(until), FaultKind::LinkUp, 0);
            }
        }

        // Adversary arrivals (drawn after every earlier stream — the same
        // seed-stability contract as bank restarts and link outages).
        for i in 0..cfg.adversary_arrivals {
            let at = rng.next_bounded(horizon_us);
            plan.push(SimTime::from_micros(at), FaultKind::AdversaryArrival, i);
        }

        plan.normalize();
        plan
    }

    /// Append an event (kept unsorted until the next query; queries sort
    /// lazily via [`FaultPlan::normalize`]).
    pub fn push(&mut self, at: SimTime, kind: FaultKind, target: u32) -> &mut Self {
        assert_eq!(self.cursor, 0, "cannot extend a plan already being consumed");
        self.events.push(FaultEvent { at, kind, target });
        self
    }

    /// Schedule a host crash at `at`.
    pub fn host_crash(&mut self, at: SimTime, host: u32) -> &mut Self {
        self.push(at, FaultKind::HostCrash, host)
    }

    /// Schedule a host recovery at `at`.
    pub fn host_recover(&mut self, at: SimTime, host: u32) -> &mut Self {
        self.push(at, FaultKind::HostRecover, host)
    }

    /// Schedule a single-VM failure at `at`.
    pub fn vm_failure(&mut self, at: SimTime, host: u32) -> &mut Self {
        self.push(at, FaultKind::VmFailure, host)
    }

    /// Schedule a bank outage over `[from, until)`.
    pub fn bank_outage(&mut self, from: SimTime, until: SimTime) -> &mut Self {
        self.push(from, FaultKind::BankOutage, 0);
        self.push(until, FaultKind::BankRestore, 0)
    }

    /// Schedule a bank restart (kill + journal recovery) at `at`.
    pub fn bank_restart(&mut self, at: SimTime) -> &mut Self {
        self.push(at, FaultKind::BankRestart, 0)
    }

    /// Schedule a degraded-link window over `[from, until)`.
    pub fn link_outage(&mut self, from: SimTime, until: SimTime) -> &mut Self {
        self.push(from, FaultKind::LinkDown, 0);
        self.push(until, FaultKind::LinkUp, 0)
    }

    /// Schedule an adversary-cohort arrival at `at` (adversary index
    /// `idx` within the cohort).
    pub fn adversary_arrival(&mut self, at: SimTime, idx: u32) -> &mut Self {
        self.push(at, FaultKind::AdversaryArrival, idx)
    }

    /// Sort events by `(time, kind, target)`. Called automatically by
    /// [`FaultPlan::generate`] and [`FaultPlan::take_due`].
    pub fn normalize(&mut self) {
        self.events.sort_by_key(|e| (e.at, e.kind, e.target));
    }

    /// All scheduled events in time order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events not yet consumed.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// True if every event has been consumed (or none were scheduled).
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Consume and return every not-yet-consumed event with `at <= now`.
    pub fn take_due(&mut self, now: SimTime) -> Vec<FaultEvent> {
        if self.cursor == 0 {
            self.normalize();
        }
        let start = self.cursor;
        while self.cursor < self.events.len() && self.events[self.cursor].at <= now {
            self.cursor += 1;
        }
        self.events[start..self.cursor].to_vec()
    }

    /// Rewind the consumption cursor so the plan can be replayed.
    pub fn reset(&mut self) {
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let cfg = FaultGenConfig::default();
        let a = FaultPlan::generate(0xfeed, cfg);
        let b = FaultPlan::generate(0xfeed, cfg);
        assert_eq!(a, b);
        let c = FaultPlan::generate(0xbeef, cfg);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn generated_events_are_sorted_and_in_horizon() {
        let cfg = FaultGenConfig {
            hosts: 8,
            crashes: 10,
            vm_failures: 10,
            bank_outages: 3,
            ..FaultGenConfig::default()
        };
        let plan = FaultPlan::generate(7, cfg);
        let evs = plan.events();
        assert!(!evs.is_empty());
        for w in evs.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        for e in evs {
            assert!(e.at < cfg.horizon);
            match e.kind {
                FaultKind::HostCrash | FaultKind::HostRecover | FaultKind::VmFailure => {
                    assert!(e.target < cfg.hosts)
                }
                _ => {}
            }
        }
    }

    #[test]
    fn crash_windows_do_not_overlap_per_host() {
        let cfg = FaultGenConfig {
            hosts: 2,
            crashes: 12,
            mean_downtime: SimDuration::from_minutes(60),
            ..FaultGenConfig::default()
        };
        let plan = FaultPlan::generate(99, cfg);
        // Replaying crash/recover events per host must alternate: a host
        // that is down never crashes again before recovering.
        let mut down = [false; 2];
        for e in plan.events() {
            match e.kind {
                FaultKind::HostCrash => {
                    assert!(!down[e.target as usize], "host {} crashed twice", e.target);
                    down[e.target as usize] = true;
                }
                FaultKind::HostRecover => {
                    assert!(down[e.target as usize]);
                    down[e.target as usize] = false;
                }
                _ => {}
            }
        }
    }

    #[test]
    fn take_due_consumes_in_order_exactly_once() {
        let mut plan = FaultPlan::new();
        plan.host_crash(SimTime::from_secs(50), 1)
            .vm_failure(SimTime::from_secs(10), 0)
            .bank_outage(SimTime::from_secs(20), SimTime::from_secs(30));

        let first = plan.take_due(SimTime::from_secs(25));
        assert_eq!(first.len(), 2);
        assert_eq!(first[0].kind, FaultKind::VmFailure);
        assert_eq!(first[1].kind, FaultKind::BankOutage);

        let second = plan.take_due(SimTime::from_secs(25));
        assert!(second.is_empty(), "same poll must not re-deliver");

        let third = plan.take_due(SimTime::from_secs(100));
        assert_eq!(third.len(), 2);
        assert_eq!(third[0].kind, FaultKind::BankRestore);
        assert_eq!(third[1].kind, FaultKind::HostCrash);
        assert!(plan.is_exhausted());

        plan.reset();
        assert_eq!(plan.remaining(), 4);
    }

    #[test]
    fn bank_restarts_generate_in_horizon_without_disturbing_other_draws() {
        let base = FaultGenConfig::default();
        let with_restarts = FaultGenConfig {
            bank_restarts: 3,
            ..base
        };
        let a = FaultPlan::generate(0xabcd, base);
        let b = FaultPlan::generate(0xabcd, with_restarts);
        // Restart draws happen after every other stream: the non-restart
        // prefix of the schedule is byte-identical for the same seed.
        let non_restart: Vec<&FaultEvent> = b
            .events()
            .iter()
            .filter(|e| e.kind != FaultKind::BankRestart)
            .collect();
        assert_eq!(non_restart.len(), a.events().len());
        for (x, y) in non_restart.iter().zip(a.events()) {
            assert_eq!(**x, *y);
        }
        let restarts: Vec<&FaultEvent> = b
            .events()
            .iter()
            .filter(|e| e.kind == FaultKind::BankRestart)
            .collect();
        assert_eq!(restarts.len(), 3);
        for e in restarts {
            assert!(e.at < with_restarts.horizon);
            assert_eq!(e.target, 0);
        }
    }

    #[test]
    fn link_outages_generate_in_horizon_without_disturbing_other_draws() {
        let base = FaultGenConfig {
            bank_restarts: 2,
            ..FaultGenConfig::default()
        };
        let with_links = FaultGenConfig {
            link_outages: 3,
            ..base
        };
        let a = FaultPlan::generate(0xabcd, base);
        let b = FaultPlan::generate(0xabcd, with_links);
        // Link draws happen after every other stream (bank restarts
        // included): the non-link prefix is byte-identical per seed.
        let is_link = |e: &&FaultEvent| {
            matches!(e.kind, FaultKind::LinkDown | FaultKind::LinkUp)
        };
        let non_link: Vec<&FaultEvent> =
            b.events().iter().filter(|e| !is_link(e)).collect();
        assert_eq!(non_link.len(), a.events().len());
        for (x, y) in non_link.iter().zip(a.events()) {
            assert_eq!(**x, *y);
        }
        let downs = b
            .events()
            .iter()
            .filter(|e| e.kind == FaultKind::LinkDown)
            .count();
        assert_eq!(downs, 3);
        for e in b.events().iter().filter(|e| is_link(e)) {
            assert!(e.at < with_links.horizon);
            assert_eq!(e.target, 0);
        }
    }

    #[test]
    fn adversary_arrivals_generate_in_horizon_without_disturbing_other_draws() {
        // The PR 4/5 append-last contract, extended to the adversary
        // stream: arrivals are drawn after crashes, VM failures, bank
        // outages, restarts AND link outages, so the non-adversary prefix
        // of a schedule is byte-identical for the same seed.
        let base = FaultGenConfig {
            bank_restarts: 2,
            link_outages: 2,
            ..FaultGenConfig::default()
        };
        let with_adversaries = FaultGenConfig {
            adversary_arrivals: 4,
            ..base
        };
        let a = FaultPlan::generate(0xabcd, base);
        let b = FaultPlan::generate(0xabcd, with_adversaries);
        let non_adv: Vec<&FaultEvent> = b
            .events()
            .iter()
            .filter(|e| e.kind != FaultKind::AdversaryArrival)
            .collect();
        assert_eq!(non_adv.len(), a.events().len());
        for (x, y) in non_adv.iter().zip(a.events()) {
            assert_eq!(**x, *y);
        }
        let arrivals: Vec<&FaultEvent> = b
            .events()
            .iter()
            .filter(|e| e.kind == FaultKind::AdversaryArrival)
            .collect();
        assert_eq!(arrivals.len(), 4);
        let mut indices: Vec<u32> = arrivals.iter().map(|e| e.target).collect();
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 1, 2, 3], "targets are adversary indices");
        for e in arrivals {
            assert!(e.at < with_adversaries.horizon);
        }
    }

    #[test]
    fn golden_seed_schedule_is_byte_stable_with_adversary_field_defaulted() {
        // Regression for the PR 8 golden harness seed (2006): adding the
        // `adversary_arrivals` field at its zero default must leave the
        // generated schedule — and therefore every committed golden run —
        // byte-identical. The expected fingerprint was recorded before
        // the field existed.
        let cfg = FaultGenConfig {
            hosts: 30,
            horizon: SimTime::from_secs(8 * 3600),
            crashes: 2,
            vm_failures: 1,
            bank_outages: 1,
            bank_restarts: 1,
            link_outages: 1,
            ..FaultGenConfig::default()
        };
        let plan = FaultPlan::generate(2006, cfg);
        // FNV-1a over the (at, kind-ordinal, target) stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fnv = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for e in plan.events() {
            fnv(&e.at.as_micros().to_le_bytes());
            fnv(&(e.kind as u8).to_le_bytes());
            fnv(&e.target.to_le_bytes());
        }
        assert_eq!(
            h, 0x7055_145c_c2cc_4c80,
            "seed-2006 schedule fingerprint changed — the adversary stream \
             must be drawn last (see the PR 4/5 append-last pattern)"
        );
    }

    #[test]
    fn explicit_adversary_arrival_builder_schedules_event() {
        let mut plan = FaultPlan::new();
        plan.adversary_arrival(SimTime::from_secs(42), 7);
        let due = plan.take_due(SimTime::from_secs(60));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].kind, FaultKind::AdversaryArrival);
        assert_eq!(due[0].target, 7);
    }

    #[test]
    fn explicit_link_outage_builder_pairs_down_and_up() {
        let mut plan = FaultPlan::new();
        plan.link_outage(SimTime::from_secs(10), SimTime::from_secs(20));
        let due = plan.take_due(SimTime::from_secs(30));
        assert_eq!(due.len(), 2);
        assert_eq!(due[0].kind, FaultKind::LinkDown);
        assert_eq!(due[1].kind, FaultKind::LinkUp);
    }

    #[test]
    fn explicit_bank_restart_builder_schedules_event() {
        let mut plan = FaultPlan::new();
        plan.bank_restart(SimTime::from_secs(42));
        let due = plan.take_due(SimTime::from_secs(60));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].kind, FaultKind::BankRestart);
    }

    #[test]
    fn empty_plan_is_quiet() {
        let mut plan = FaultPlan::new();
        assert!(plan.take_due(SimTime::MAX).is_empty());
        assert!(plan.is_exhausted());
    }
}
