//! Time-series recording.
//!
//! Experiments sample the spot price of every host each allocation interval
//! (10 s in the paper) and feed the traces to the prediction models. A
//! [`Series`] is a single `(time, value)` stream; a [`Trace`] is a keyed
//! collection of series (one per host, per user, …).

use std::collections::BTreeMap;
use std::fmt;

use crate::time::SimTime;

/// A sample was offered with a timestamp earlier than the last recorded
/// one. Accepting it would silently corrupt every window query (they
/// binary-search on sorted times), so [`Series::try_push`] refuses it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimeWentBackwards {
    /// Timestamp of the newest sample already in the series.
    pub last: SimTime,
    /// The earlier timestamp that was refused.
    pub attempted: SimTime,
}

impl fmt::Display for TimeWentBackwards {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "series time went backwards: last sample at {:?}, new sample at {:?}",
            self.last, self.attempted
        )
    }
}

impl std::error::Error for TimeWentBackwards {}

/// One sampled time series.
#[derive(Clone, Debug, Default)]
pub struct Series {
    times: Vec<SimTime>,
    values: Vec<f64>,
}

impl Series {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `value` at `time`, refusing out-of-order timestamps.
    ///
    /// On `Err` the series is unchanged. Equal timestamps are accepted
    /// (two samples in the same allocation interval).
    pub fn try_push(&mut self, time: SimTime, value: f64) -> Result<(), TimeWentBackwards> {
        if let Some(&last) = self.times.last() {
            if time < last {
                return Err(TimeWentBackwards {
                    last,
                    attempted: time,
                });
            }
        }
        self.times.push(time);
        self.values.push(value);
        Ok(())
    }

    /// Record `value` at `time`. Times must be non-decreasing.
    ///
    /// # Panics
    /// Panics (in every build profile — this used to be a `debug_assert`)
    /// if `time` is earlier than the last recorded sample; a series with
    /// unsorted times would return wrong answers from [`Series::window`]
    /// without any further diagnostic. Callers that cannot guarantee
    /// ordering should use [`Series::try_push`].
    pub fn push(&mut self, time: SimTime, value: f64) {
        if let Err(e) = self.try_push(time, value) {
            panic!("{e}");
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no samples recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The sampled values in time order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The sample timestamps in time order.
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    /// Iterate over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// Values whose timestamps fall in the half-open window `[from, to)`.
    pub fn window(&self, from: SimTime, to: SimTime) -> &[f64] {
        let lo = self.times.partition_point(|&t| t < from);
        let hi = self.times.partition_point(|&t| t < to);
        &self.values[lo..hi]
    }

    /// Arithmetic mean of all values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Last recorded value.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        match (self.times.last(), self.values.last()) {
            (Some(&t), Some(&v)) => Some((t, v)),
            _ => None,
        }
    }
}

/// A keyed collection of [`Series`].
#[derive(Clone, Debug, Default)]
pub struct Trace {
    series: BTreeMap<String, Series>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `value` for `key` at `time`, creating the series on first use.
    pub fn record(&mut self, key: &str, time: SimTime, value: f64) {
        if let Some(s) = self.series.get_mut(key) {
            s.push(time, value);
        } else {
            let mut s = Series::new();
            s.push(time, value);
            self.series.insert(key.to_owned(), s);
        }
    }

    /// Get a series by key.
    pub fn get(&self, key: &str) -> Option<&Series> {
        self.series.get(key)
    }

    /// Iterate over `(key, series)` in key order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Series)> {
        self.series.iter().map(|(k, s)| (k.as_str(), s))
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True if no series exist.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Render as CSV (`key,time_s,value` rows) for offline plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("key,time_s,value\n");
        for (k, s) in self.iter() {
            for (t, v) in s.iter() {
                out.push_str(&format!("{k},{:.6},{v:.9}\n", t.as_secs_f64()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn series_records_and_windows() {
        let mut s = Series::new();
        for i in 0..10 {
            s.push(t(i), i as f64);
        }
        assert_eq!(s.len(), 10);
        assert_eq!(s.window(t(3), t(6)), &[3.0, 4.0, 5.0]);
        assert_eq!(s.window(t(0), t(100)).len(), 10);
        assert_eq!(s.window(t(20), t(30)).len(), 0);
        assert_eq!(s.mean(), Some(4.5));
        assert_eq!(s.last(), Some((t(9), 9.0)));
    }

    #[test]
    fn empty_series() {
        let s = Series::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.last(), None);
    }

    #[test]
    fn trace_keys_are_deterministic() {
        let mut tr = Trace::new();
        tr.record("z", t(0), 1.0);
        tr.record("a", t(0), 2.0);
        tr.record("m", t(0), 3.0);
        let keys: Vec<&str> = tr.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "m", "z"]);
    }

    #[test]
    fn trace_appends_to_existing_series() {
        let mut tr = Trace::new();
        tr.record("h0", t(0), 1.0);
        tr.record("h0", t(10), 2.0);
        assert_eq!(tr.get("h0").unwrap().values(), &[1.0, 2.0]);
        assert_eq!(tr.len(), 1);
    }

    #[test]
    fn out_of_order_push_is_refused_and_leaves_series_intact() {
        let mut s = Series::new();
        s.push(t(10), 1.0);
        s.push(t(10), 1.5); // equal timestamps are fine
        let err = s.try_push(t(5), 2.0).unwrap_err();
        assert_eq!(
            err,
            TimeWentBackwards {
                last: t(10),
                attempted: t(5)
            }
        );
        assert!(err.to_string().contains("went backwards"));
        // The rejected sample must not have been half-applied.
        assert_eq!(s.len(), 2);
        assert_eq!(s.values(), &[1.0, 1.5]);
        assert_eq!(s.last(), Some((t(10), 1.5)));
        // The series still accepts in-order samples afterwards.
        s.try_push(t(11), 3.0).unwrap();
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "went backwards")]
    fn push_panics_on_backwards_time_in_release_too() {
        let mut s = Series::new();
        s.push(t(10), 1.0);
        s.push(t(9), 2.0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut tr = Trace::new();
        tr.record("p", t(1), 0.5);
        let csv = tr.to_csv();
        assert!(csv.starts_with("key,time_s,value\n"));
        assert!(csv.contains("p,1.000000,0.500000000"));
    }
}
