//! Reservation / SLA pricing on top of the prediction infrastructure.
//!
//! The paper's future work (§7): "studying how higher-level reservation
//! mechanisms, such as Service Level Agreements, Future Markets, Insurance
//! Systems, and Swing Options can be built on top of the prediction
//! infrastructure presented here to provide more user-oriented QoS
//! guarantees." This module implements the simplest members of that
//! family using the §4.2 normal model:
//!
//! * [`price_reservation`] — a fixed-capacity reservation for a horizon:
//!   the bid rate that holds the capacity at guarantee level `p`, times
//!   the duration (the "insurance premium" is the `σ·Φ⁻¹(p)` term baked
//!   into the pessimistic price).
//! * [`SlaQuote`] — a deadline SLA for a bag-of-tasks job: capacity needed
//!   to finish `work` by `deadline`, the reservation priced accordingly,
//!   and the refundable penalty the provider would owe on breach.
//! * [`SwingOption`] — a baseline reservation plus the *right* (not
//!   obligation) to surge to a higher capacity for a bounded number of
//!   intervals (Clearwater & Huberman's swing options, cited in §4.1).

use crate::normal::NormalPriceModel;

/// Price a fixed-capacity reservation: credits required to hold
/// `capacity_mhz` for `duration_secs` at guarantee `p` on `model`'s host.
/// `None` if the capacity exceeds what the host can deliver.
pub fn price_reservation(
    model: &NormalPriceModel,
    capacity_mhz: f64,
    duration_secs: f64,
    p: f64,
) -> Option<f64> {
    assert!(duration_secs >= 0.0, "negative duration");
    let rate = model.bid_for_capacity(capacity_mhz, p)?;
    Some(rate * duration_secs)
}

/// A provider's quote for a deadline SLA.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SlaQuote {
    /// Capacity that must be held (MHz).
    pub capacity_mhz: f64,
    /// Total price of the reservation (credits).
    pub price: f64,
    /// Guarantee level the price was computed at.
    pub guarantee: f64,
    /// Credits refunded if the provider misses the deadline anyway
    /// (priced so the provider's expected loss stays below its premium).
    pub breach_penalty: f64,
}

/// Quote an SLA: finish `work_mhz_secs` of compute within `deadline_secs`
/// with probability `p`. `None` when no single-host capacity suffices.
pub fn sla_quote(
    model: &NormalPriceModel,
    work_mhz_secs: f64,
    deadline_secs: f64,
    p: f64,
) -> Option<SlaQuote> {
    assert!(work_mhz_secs > 0.0 && deadline_secs > 0.0, "bad SLA inputs");
    let capacity_mhz = work_mhz_secs / deadline_secs;
    let price = price_reservation(model, capacity_mhz, deadline_secs, p)?;
    // The premium above the median-price cost funds the breach penalty:
    // with breach probability (1−p), a penalty of premium/(1−p) keeps the
    // provider's expected payout ≤ the premium collected.
    let median_price = price_reservation(model, capacity_mhz, deadline_secs, 0.5)
        .unwrap_or(price);
    let premium = (price - median_price).max(0.0);
    let breach_penalty = if p < 1.0 { premium / (1.0 - p) } else { premium };
    Some(SlaQuote {
        capacity_mhz,
        price,
        guarantee: p,
        breach_penalty,
    })
}

/// A swing option: a baseline reservation plus the right to surge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SwingOption {
    /// Always-on reserved capacity (MHz).
    pub baseline_mhz: f64,
    /// Capacity while surging (MHz).
    pub surge_mhz: f64,
    /// Maximum number of surge intervals that may be exercised.
    pub max_surge_intervals: u32,
    /// Length of one interval (seconds).
    pub interval_secs: f64,
    /// Upfront price: baseline reservation + surge-right premium.
    pub price: f64,
    /// Additional price paid per exercised surge interval (the strike).
    pub strike_per_interval: f64,
}

/// Price a swing option over `total_intervals` of `interval_secs`.
///
/// The baseline is a plain reservation at guarantee `p`. The surge right
/// is priced like an option: the strike is the *median* cost of the extra
/// capacity, and the upfront premium charges the `p`-quantile/median
/// spread for the maximum exercisable intervals — the provider is covered
/// even if every surge lands on expensive moments.
pub fn price_swing_option(
    model: &NormalPriceModel,
    baseline_mhz: f64,
    surge_mhz: f64,
    total_intervals: u32,
    max_surge_intervals: u32,
    interval_secs: f64,
    p: f64,
) -> Option<SwingOption> {
    assert!(surge_mhz >= baseline_mhz, "surge below baseline");
    assert!(
        max_surge_intervals <= total_intervals,
        "more surges than intervals"
    );
    let total_secs = total_intervals as f64 * interval_secs;
    let base_price = price_reservation(model, baseline_mhz, total_secs, p)?;

    let base_rate_p = model.bid_for_capacity(baseline_mhz, p)?;
    let surge_rate_p = model.bid_for_capacity(surge_mhz, p)?;
    let base_rate_med = model.bid_for_capacity(baseline_mhz, 0.5)?;
    let surge_rate_med = model.bid_for_capacity(surge_mhz, 0.5)?;

    let extra_med = (surge_rate_med - base_rate_med).max(0.0) * interval_secs;
    let extra_p = (surge_rate_p - base_rate_p).max(0.0) * interval_secs;
    let premium = (extra_p - extra_med).max(0.0) * max_surge_intervals as f64;

    Some(SwingOption {
        baseline_mhz,
        surge_mhz,
        max_surge_intervals,
        interval_secs,
        price: base_price + premium,
        strike_per_interval: extra_med,
    })
}

impl SwingOption {
    /// Total cost if `exercised` surge intervals are used.
    ///
    /// # Panics
    /// Panics if `exercised > max_surge_intervals`.
    pub fn total_cost(&self, exercised: u32) -> f64 {
        assert!(
            exercised <= self.max_surge_intervals,
            "exercising more surges than contracted"
        );
        self.price + self.strike_per_interval * exercised as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_tycoon::HostId;

    fn model() -> NormalPriceModel {
        NormalPriceModel {
            host: HostId(0),
            mean: 0.01,
            std_dev: 0.004,
            capacity_mhz: 2910.0,
        }
    }

    #[test]
    fn reservation_price_scales_linearly_with_duration() {
        let m = model();
        let one_hour = price_reservation(&m, 1000.0, 3600.0, 0.9).unwrap();
        let two_hours = price_reservation(&m, 1000.0, 7200.0, 0.9).unwrap();
        assert!((two_hours - 2.0 * one_hour).abs() < 1e-9);
        assert!(one_hour > 0.0);
    }

    #[test]
    fn higher_guarantee_costs_more() {
        let m = model();
        let p80 = price_reservation(&m, 1500.0, 3600.0, 0.8).unwrap();
        let p99 = price_reservation(&m, 1500.0, 3600.0, 0.99).unwrap();
        assert!(p99 > p80, "{p99} vs {p80}");
    }

    #[test]
    fn impossible_capacity_is_unpriceable() {
        let m = model();
        assert!(price_reservation(&m, 3000.0, 3600.0, 0.9).is_none());
        assert_eq!(price_reservation(&m, 0.0, 3600.0, 0.9), Some(0.0));
    }

    #[test]
    fn sla_quote_covers_the_work() {
        let m = model();
        // 1 CPU-hour of 2910 MHz work, 2 h deadline → 1455 MHz needed.
        let work = 2910.0 * 3600.0;
        let q = sla_quote(&m, work, 7200.0, 0.95).unwrap();
        assert!((q.capacity_mhz - 1455.0).abs() < 1e-9);
        assert!(q.price > 0.0);
        assert!(q.breach_penalty >= 0.0);
        // Provider solvency: expected payout ≤ collected premium.
        let premium = q.price - price_reservation(&m, q.capacity_mhz, 7200.0, 0.5).unwrap();
        assert!(q.breach_penalty * (1.0 - q.guarantee) <= premium + 1e-9);
    }

    #[test]
    fn sla_unachievable_deadline_rejected() {
        let m = model();
        // Work needs more than the host's full capacity.
        let work = 2910.0 * 3600.0 * 3.0;
        assert!(sla_quote(&m, work, 3600.0, 0.9).is_none());
    }

    #[test]
    fn swing_option_price_structure() {
        let m = model();
        let opt = price_swing_option(&m, 500.0, 2000.0, 360, 60, 10.0, 0.9).unwrap();
        // Upfront ≥ plain baseline reservation.
        let base = price_reservation(&m, 500.0, 3600.0, 0.9).unwrap();
        assert!(opt.price >= base);
        assert!(opt.strike_per_interval > 0.0);
        // Exercising costs extra, linearly.
        let none = opt.total_cost(0);
        let all = opt.total_cost(60);
        assert!((all - none - 60.0 * opt.strike_per_interval).abs() < 1e-9);
    }

    #[test]
    fn swing_with_no_surge_right_is_a_plain_reservation() {
        let m = model();
        let opt = price_swing_option(&m, 800.0, 800.0, 100, 0, 10.0, 0.9).unwrap();
        let base = price_reservation(&m, 800.0, 1000.0, 0.9).unwrap();
        assert!((opt.price - base).abs() < 1e-9);
        assert_eq!(opt.total_cost(0), opt.price);
    }

    #[test]
    #[should_panic(expected = "exercising more surges")]
    fn over_exercise_panics() {
        let m = model();
        let opt = price_swing_option(&m, 500.0, 1000.0, 100, 10, 10.0, 0.9).unwrap();
        opt.total_cost(11);
    }

    #[test]
    #[should_panic(expected = "surge below baseline")]
    fn inverted_swing_rejected() {
        let m = model();
        let _ = price_swing_option(&m, 1000.0, 500.0, 100, 10, 10.0, 0.9);
    }
}
