//! AR(k) price prediction on time-series history (§4.3, Fig. 4).
//!
//! Pipeline exactly as the paper describes: (1) optionally smooth the raw
//! price snapshots with a smoothing spline — "the basic AR model … had
//! problems predicting future prices due to sharp price drops when batch
//! jobs completed. To overcome this issue we applied a smoothing function
//! … before calculating the AR model" (§5.4) — then (2) compute unbiased
//! autocorrelations, (3) solve Yule-Walker by the Levinson reformulation,
//! and (4) forecast `x̂_{t+h} = μ + Σ α_j (x_{t+h−j} − μ)` iteratively.
//!
//! Validation uses the paper's ε metric: `ε = (1/n)·Σ σ_i / μ_d`, the mean
//! standard deviation of (prediction, measurement) pairs normalized by the
//! mean measured price in the validation interval.

use gm_numeric::spline::smoothing_spline;
use gm_numeric::toeplitz::{ar_forecast, yule_walker};

/// How the forecast anchors its mean.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MeanMode {
    /// The paper's Eq. in §4.3: deviations from the global training mean.
    Global,
    /// Deviations from the mean of the most recent `n` samples — robust to
    /// the regime shifts of a live market (price levels drift as batches
    /// arrive and leave, so the 20-hour-old mean is a poor anchor).
    Local(usize),
}

/// A fitted autoregressive price model.
#[derive(Clone, Debug)]
pub struct ArModel {
    coeffs: Vec<f64>,
    mean: f64,
    noise_variance: f64,
    smoothing_lambda: f64,
    mean_mode: MeanMode,
}

impl ArModel {
    /// Fit an AR(`order`) model to `prices`, optionally pre-smoothing with
    /// penalty `smoothing_lambda` (0 disables smoothing).
    ///
    /// Returns `None` for degenerate series (constant prices), matching
    /// `yule_walker`.
    ///
    /// # Panics
    /// Panics unless `order >= 1` and `prices.len() > order`.
    pub fn fit(prices: &[f64], order: usize, smoothing_lambda: f64) -> Option<ArModel> {
        let series: Vec<f64> = if smoothing_lambda > 0.0 {
            smoothing_spline(prices, smoothing_lambda)
        } else {
            prices.to_vec()
        };
        let (coeffs, noise_variance, mean) = yule_walker(&series, order)?;
        Some(ArModel {
            coeffs,
            mean,
            noise_variance,
            smoothing_lambda,
            mean_mode: MeanMode::Global,
        })
    }

    /// Switch the forecast anchor (see [`MeanMode`]). Returns `self` for
    /// builder-style chaining.
    pub fn with_mean_mode(mut self, mode: MeanMode) -> ArModel {
        if let MeanMode::Local(n) = mode {
            assert!(n >= 1, "local mean window must be >= 1");
        }
        self.mean_mode = mode;
        self
    }

    /// Model order `k`.
    pub fn order(&self) -> usize {
        self.coeffs.len()
    }

    /// Fitted AR coefficients `α_1..α_k`.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Series mean `μ`.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Final prediction-error (innovation) variance from Levinson-Durbin.
    pub fn noise_variance(&self) -> f64 {
        self.noise_variance
    }

    fn anchor(&self, history: &[f64]) -> f64 {
        match self.mean_mode {
            MeanMode::Global => self.mean,
            MeanMode::Local(n) => {
                let tail = &history[history.len().saturating_sub(n)..];
                if tail.is_empty() {
                    self.mean
                } else {
                    tail.iter().sum::<f64>() / tail.len() as f64
                }
            }
        }
    }

    /// One-step-ahead forecast given recent `history` (oldest first; the
    /// same smoothing the model was fit with is applied first).
    pub fn forecast_one(&self, history: &[f64]) -> f64 {
        let h = self.smoothed(history);
        ar_forecast(&self.coeffs, self.anchor(&h), &h)
    }

    /// `steps`-ahead forecast by iterating the model on its own output.
    /// Returns the full forecast path of length `steps`.
    pub fn forecast_path(&self, history: &[f64], steps: usize) -> Vec<f64> {
        let mut h = self.smoothed(history);
        let anchor = self.anchor(&h);
        let mut out = Vec::with_capacity(steps);
        for _ in 0..steps {
            let next = ar_forecast(&self.coeffs, anchor, &h);
            out.push(next);
            h.push(next);
        }
        out
    }

    fn smoothed(&self, history: &[f64]) -> Vec<f64> {
        if self.smoothing_lambda > 0.0 {
            smoothing_spline(history, self.smoothing_lambda)
        } else {
            history.to_vec()
        }
    }
}

/// The paper's ε error: mean σ of (prediction, measurement) pairs over the
/// mean measured price. The σ of a 2-element sample `{p, m}` is `|p−m|/√2`.
///
/// # Panics
/// Panics if lengths differ or the inputs are empty.
pub fn epsilon(predictions: &[f64], measurements: &[f64]) -> f64 {
    assert_eq!(predictions.len(), measurements.len(), "length mismatch");
    assert!(!predictions.is_empty(), "empty validation interval");
    let n = measurements.len() as f64;
    let mu_d = measurements.iter().sum::<f64>() / n;
    assert!(mu_d.abs() > 0.0, "zero mean measurement");
    let sum_sigma: f64 = predictions
        .iter()
        .zip(measurements)
        .map(|(p, m)| (p - m).abs() / std::f64::consts::SQRT_2)
        .sum();
    sum_sigma / (n * mu_d)
}

/// ε of the naive benchmark that "always predict\[s\] the current price to
/// remain for the next hour": prediction at `t+h` is the value at `t`.
///
/// `horizon` is the forecast distance in samples.
///
/// # Panics
/// Panics if the series is shorter than `horizon + 1`.
pub fn naive_epsilon(series: &[f64], horizon: usize) -> f64 {
    assert!(series.len() > horizon, "series shorter than horizon");
    let preds: Vec<f64> = series[..series.len() - horizon].to_vec();
    let meas: Vec<f64> = series[horizon..].to_vec();
    epsilon(&preds, &meas)
}

/// Walk-forward AR validation: fit on `train`, then at every index of
/// `validate` produce an `horizon`-step forecast using all data up to that
/// point, and return `(predictions, measurements)` aligned at the forecast
/// target times.
pub fn walk_forward(
    model: &ArModel,
    train: &[f64],
    validate: &[f64],
    horizon: usize,
) -> (Vec<f64>, Vec<f64>) {
    assert!(horizon >= 1);
    let mut full: Vec<f64> = train.to_vec();
    let mut preds = Vec::new();
    let mut meas = Vec::new();
    for (i, &actual) in validate.iter().enumerate() {
        // Forecast `horizon` ahead from the data ending just before the
        // target index.
        if i >= horizon {
            // history = train + validate[..i−horizon+1]
            let hist_end = i - horizon + 1;
            let history: Vec<f64> = full[..train.len() + hist_end].to_vec();
            // Cap history length for O(n) spline cost: the model only needs
            // a window comfortably larger than its order.
            let window = 32 * (model.order() + 1);
            let h = if history.len() > window {
                &history[history.len() - window..]
            } else {
                &history[..]
            };
            let path = model.forecast_path(h, horizon);
            preds.push(*path.last().expect("nonempty path"));
            meas.push(actual);
        }
        full.push(actual);
    }
    (preds, meas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_des::{Pcg32, Rng64};

    fn ar2_series(n: usize, seed: u64, noise: f64) -> Vec<f64> {
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut x = vec![10.0f64; n];
        for i in 2..n {
            let e: f64 = (0..12).map(|_| rng.next_f64()).sum::<f64>() - 6.0;
            x[i] = 10.0 + 0.6 * (x[i - 1] - 10.0) - 0.2 * (x[i - 2] - 10.0) + noise * e;
        }
        x
    }

    #[test]
    fn fit_recovers_structure() {
        let series = ar2_series(20_000, 3, 0.5);
        let m = ArModel::fit(&series, 2, 0.0).unwrap();
        assert!((m.coeffs()[0] - 0.6).abs() < 0.05, "{:?}", m.coeffs());
        assert!((m.coeffs()[1] + 0.2).abs() < 0.05, "{:?}", m.coeffs());
        assert!((m.mean() - 10.0).abs() < 0.2);
        assert!(m.noise_variance() > 0.0);
        assert_eq!(m.order(), 2);
    }

    #[test]
    fn constant_series_returns_none() {
        assert!(ArModel::fit(&[5.0; 100], 3, 0.0).is_none());
    }

    #[test]
    fn forecast_beats_naive_on_ar_series() {
        let series = ar2_series(4000, 9, 0.5);
        let (train, validate) = series.split_at(2000);
        let m = ArModel::fit(train, 2, 0.0).unwrap();
        let horizon = 5;
        let (preds, meas) = walk_forward(&m, train, validate, horizon);
        let eps_ar = epsilon(&preds, &meas);
        let eps_naive = naive_epsilon(&series[2000..], horizon);
        assert!(
            eps_ar < eps_naive,
            "AR ε {eps_ar:.4} should beat naive ε {eps_naive:.4}"
        );
    }

    #[test]
    fn forecast_converges_to_mean() {
        let series = ar2_series(5000, 4, 0.5);
        let m = ArModel::fit(&series, 2, 0.0).unwrap();
        let path = m.forecast_path(&series[..100], 500);
        let last = *path.last().unwrap();
        // Stationary AR forecasts decay to the mean.
        assert!((last - m.mean()).abs() < 0.05, "{last} vs {}", m.mean());
    }

    #[test]
    fn epsilon_zero_for_perfect_prediction() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(epsilon(&xs, &xs), 0.0);
    }

    #[test]
    fn epsilon_known_value() {
        // One pair (3, 1): σ = 2/√2 = √2; μ_d = 1 → ε = √2.
        let e = epsilon(&[3.0], &[1.0]);
        assert!((e - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn naive_epsilon_of_constant_series_is_zero() {
        assert_eq!(naive_epsilon(&[2.0; 50], 6), 0.0);
    }

    #[test]
    fn smoothing_reduces_epsilon_on_spiky_series() {
        // Price series with sharp drops when "batch jobs complete" (§5.4):
        // slow sawtooth ramps with cliffs.
        let mut series = Vec::new();
        for cycle in 0..60 {
            for i in 0..50 {
                series.push(1.0 + i as f64 * 0.05 + (cycle % 3) as f64 * 0.1);
            }
        }
        let (train, validate) = series.split_at(1500);
        let horizon = 6;
        let raw = ArModel::fit(train, 6, 0.0).unwrap();
        let smooth = ArModel::fit(train, 6, 50.0).unwrap();
        let (p_raw, m_raw) = walk_forward(&raw, train, validate, horizon);
        let (p_s, m_s) = walk_forward(&smooth, train, validate, horizon);
        let e_raw = epsilon(&p_raw, &m_raw);
        let e_smooth = epsilon(&p_s, &m_s);
        assert!(
            e_smooth < e_raw * 1.2,
            "smoothing should not make things much worse: {e_smooth} vs {e_raw}"
        );
    }

    #[test]
    fn walk_forward_alignment() {
        // With horizon 1, predictions align with validate[1..].
        let series = ar2_series(300, 5, 0.2);
        let (train, validate) = series.split_at(200);
        let m = ArModel::fit(train, 2, 0.0).unwrap();
        let (preds, meas) = walk_forward(&m, train, validate, 1);
        assert_eq!(preds.len(), validate.len() - 1);
        assert_eq!(meas, validate[1..].to_vec());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn epsilon_rejects_mismatched_lengths() {
        epsilon(&[1.0], &[1.0, 2.0]);
    }
}
