//! Risk management via Markowitz mean-variance portfolios (§4.4, Fig. 5).
//!
//! "As return we select the performance of the resource calculated as
//! number of CPU cycles per second that are delivered per amount of money
//! paid per second (inverse of spot market price)." Given per-host return
//! series, we estimate the mean vector `µ` and covariance `Σ`, then
//!
//! * the **minimum-variance ("risk-free") portfolio** `w = Σ⁻¹1/(1ᵀΣ⁻¹1)`,
//! * the **efficient frontier** via the two-fund theorem with
//!   `A = 1ᵀΣ⁻¹1`, `B = 1ᵀΣ⁻¹µ`, `C = µᵀΣ⁻¹µ`, `D = AC − B²`.

use gm_numeric::linalg::{dot, Matrix};

/// Estimated return statistics of a set of assets (hosts).
#[derive(Clone, Debug)]
pub struct ReturnStats {
    /// Mean return per asset.
    pub mean: Vec<f64>,
    /// Covariance matrix (n × n).
    pub cov: Matrix,
}

impl ReturnStats {
    /// Estimate from per-asset return series (`returns[i]` = series of
    /// asset i; all series must be equally long, length ≥ 2).
    ///
    /// # Panics
    /// Panics on ragged input or fewer than 2 observations.
    pub fn estimate(returns: &[Vec<f64>]) -> ReturnStats {
        let n = returns.len();
        assert!(n > 0, "no assets");
        let t = returns[0].len();
        assert!(t >= 2, "need at least two observations");
        for r in returns {
            assert_eq!(r.len(), t, "ragged return series");
        }
        let mean: Vec<f64> = returns.iter().map(|r| r.iter().sum::<f64>() / t as f64).collect();
        let mut cov = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let mut acc = 0.0;
                for (ri, rj) in returns[i].iter().zip(&returns[j]) {
                    acc += (ri - mean[i]) * (rj - mean[j]);
                }
                let c = acc / (t - 1) as f64;
                cov[(i, j)] = c;
                cov[(j, i)] = c;
            }
        }
        ReturnStats { mean, cov }
    }

    /// Number of assets.
    pub fn len(&self) -> usize {
        self.mean.len()
    }

    /// True when no assets.
    pub fn is_empty(&self) -> bool {
        self.mean.is_empty()
    }

    /// Portfolio variance `wᵀΣw`.
    pub fn variance_of(&self, weights: &[f64]) -> f64 {
        dot(weights, &self.cov.mul_vec(weights))
    }

    /// Portfolio expected return `wᵀµ`.
    pub fn return_of(&self, weights: &[f64]) -> f64 {
        dot(weights, &self.mean)
    }
}

/// A point on the efficient frontier.
#[derive(Clone, Debug)]
pub struct FrontierPoint {
    /// Target expected return.
    pub expected_return: f64,
    /// Portfolio standard deviation at that return.
    pub risk: f64,
    /// Asset weights (sum to 1; may be negative = short).
    pub weights: Vec<f64>,
}

/// The minimum-variance portfolio `Σ⁻¹1/(1ᵀΣ⁻¹1)`. `None` if `Σ` is
/// singular (e.g. a riskless or duplicated asset).
pub fn min_variance_portfolio(stats: &ReturnStats) -> Option<Vec<f64>> {
    let n = stats.len();
    let ones = vec![1.0; n];
    let si = stats.cov.solve(&ones)?; // Σ⁻¹·1
    let a: f64 = si.iter().sum(); // 1ᵀΣ⁻¹1
    if a.abs() < 1e-300 {
        return None;
    }
    Some(si.iter().map(|v| v / a).collect())
}

/// Efficient frontier between `r_min` and `r_max` (inclusive) in `points`
/// steps. `None` when `Σ` is singular or the frontier is degenerate (all
/// assets share one mean).
pub fn efficient_frontier(
    stats: &ReturnStats,
    r_min: f64,
    r_max: f64,
    points: usize,
) -> Option<Vec<FrontierPoint>> {
    assert!(points >= 2, "need at least two frontier points");
    assert!(r_min <= r_max, "r_min > r_max");
    let n = stats.len();
    let ones = vec![1.0; n];
    let si_one = stats.cov.solve(&ones)?; // Σ⁻¹1
    let si_mu = stats.cov.solve(&stats.mean)?; // Σ⁻¹µ
    let a: f64 = si_one.iter().sum();
    let b: f64 = dot(&stats.mean, &si_one);
    let c: f64 = dot(&stats.mean, &si_mu);
    let d = a * c - b * b;
    if d.abs() < 1e-12 {
        return None; // degenerate: all means equal
    }

    let mut out = Vec::with_capacity(points);
    for k in 0..points {
        let r = r_min + (r_max - r_min) * k as f64 / (points - 1) as f64;
        let lambda = (c - r * b) / d;
        let gamma = (r * a - b) / d;
        let weights: Vec<f64> = si_one
            .iter()
            .zip(&si_mu)
            .map(|(o, m)| lambda * o + gamma * m)
            .collect();
        let risk = stats.variance_of(&weights).max(0.0).sqrt();
        out.push(FrontierPoint {
            expected_return: r,
            risk,
            weights,
        });
    }
    Some(out)
}

/// Equal-share benchmark weights (`1/n` each).
pub fn equal_share(n: usize) -> Vec<f64> {
    assert!(n > 0);
    vec![1.0 / n as f64; n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_des::Pcg32;
    use gm_numeric::samplers::{Normal, Sampler};

    /// Independent assets with distinct variances.
    fn synthetic_stats(vars: &[f64], means: &[f64], t: usize, seed: u64) -> ReturnStats {
        let mut rng = Pcg32::seed_from_u64(seed);
        let returns: Vec<Vec<f64>> = vars
            .iter()
            .zip(means)
            .map(|(&v, &m)| Normal::new(m, v.sqrt()).sample_n(&mut rng, t))
            .collect();
        ReturnStats::estimate(&returns)
    }

    #[test]
    fn estimate_recovers_moments() {
        let stats = synthetic_stats(&[1.0, 4.0], &[10.0, 20.0], 100_000, 1);
        assert!((stats.mean[0] - 10.0).abs() < 0.05);
        assert!((stats.mean[1] - 20.0).abs() < 0.05);
        assert!((stats.cov[(0, 0)] - 1.0).abs() < 0.05);
        assert!((stats.cov[(1, 1)] - 4.0).abs() < 0.1);
        assert!(stats.cov[(0, 1)].abs() < 0.05, "independent assets");
    }

    #[test]
    fn min_variance_weights_favor_low_variance_assets() {
        let stats = synthetic_stats(&[0.25, 4.0], &[1.0, 1.0], 50_000, 2);
        let w = min_variance_portfolio(&stats).unwrap();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w[0] > w[1], "low-variance asset should dominate: {w:?}");
        // Analytic check for independent assets: w_i ∝ 1/σ_i².
        let expect0 = (1.0 / 0.25) / (1.0 / 0.25 + 1.0 / 4.0);
        assert!((w[0] - expect0).abs() < 0.05, "{} vs {expect0}", w[0]);
    }

    #[test]
    fn min_variance_beats_equal_share_variance() {
        let stats = synthetic_stats(&[0.1, 1.0, 2.0, 4.0], &[1.0, 1.0, 1.0, 1.0], 50_000, 3);
        let w_min = min_variance_portfolio(&stats).unwrap();
        let w_eq = equal_share(4);
        assert!(
            stats.variance_of(&w_min) < stats.variance_of(&w_eq),
            "min-variance must not lose to equal share"
        );
    }

    #[test]
    fn frontier_is_risk_monotone_away_from_mvp() {
        let stats = synthetic_stats(&[1.0, 2.0, 0.5], &[1.0, 2.0, 0.8], 50_000, 4);
        let frontier = efficient_frontier(&stats, 0.8, 2.0, 20).unwrap();
        // Risk should be minimized somewhere in the middle (at the MVP
        // return) and increase monotonically on each side.
        let min_idx = frontier
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.risk.partial_cmp(&b.1.risk).unwrap())
            .unwrap()
            .0;
        for i in 1..=min_idx {
            assert!(frontier[i - 1].risk >= frontier[i].risk - 1e-9);
        }
        for i in min_idx..frontier.len() - 1 {
            assert!(frontier[i + 1].risk >= frontier[i].risk - 1e-9);
        }
        // All weights sum to 1.
        for p in &frontier {
            assert!((p.weights.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn frontier_points_hit_target_returns() {
        let stats = synthetic_stats(&[1.0, 2.0], &[1.0, 3.0], 50_000, 5);
        let frontier = efficient_frontier(&stats, 1.0, 3.0, 5).unwrap();
        for p in &frontier {
            let r = stats.return_of(&p.weights);
            assert!((r - p.expected_return).abs() < 1e-6, "{r} vs {}", p.expected_return);
        }
    }

    #[test]
    fn degenerate_equal_means_yields_none() {
        // Identical means make D = 0.
        let mut cov = Matrix::identity(2);
        cov[(0, 0)] = 1.0;
        cov[(1, 1)] = 2.0;
        let stats = ReturnStats {
            mean: vec![1.0, 1.0],
            cov,
        };
        assert!(efficient_frontier(&stats, 0.5, 1.5, 3).is_none());
        // But the MVP still exists.
        assert!(min_variance_portfolio(&stats).is_some());
    }

    #[test]
    fn singular_covariance_yields_none() {
        // Two perfectly correlated assets.
        let mut cov = Matrix::zeros(2, 2);
        cov[(0, 0)] = 1.0;
        cov[(0, 1)] = 1.0;
        cov[(1, 0)] = 1.0;
        cov[(1, 1)] = 1.0;
        let stats = ReturnStats {
            mean: vec![1.0, 2.0],
            cov,
        };
        assert!(min_variance_portfolio(&stats).is_none());
        assert!(efficient_frontier(&stats, 1.0, 2.0, 3).is_none());
    }

    #[test]
    fn mvp_is_on_the_frontier_at_its_return() {
        let stats = synthetic_stats(&[1.0, 0.5, 2.0], &[1.0, 1.5, 2.5], 50_000, 6);
        let w_mvp = min_variance_portfolio(&stats).unwrap();
        let r_mvp = stats.return_of(&w_mvp);
        let frontier = efficient_frontier(&stats, r_mvp, r_mvp, 2).unwrap();
        let v_frontier = frontier[0].risk.powi(2);
        let v_mvp = stats.variance_of(&w_mvp);
        assert!((v_frontier - v_mvp).abs() < 1e-9, "{v_frontier} vs {v_mvp}");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_input_rejected() {
        ReturnStats::estimate(&[vec![1.0, 2.0], vec![1.0]]);
    }
}
