//! Lightweight single-host stateless price prediction (§4.2).
//!
//! Model: the spot price `y` of a host is an outcome of `Y ∈ N(μ, σ²)`
//! (Eq. 3). The probability that the host costs at most `y` is
//! `Φ((y−μ)/σ)` (Eq. 4), so the price to expect with guarantee `p` is
//! `y ≤ μ + σ·Φ⁻¹(p)` (Eq. 5). Combining with the Best Response bid `x`
//! gives the guaranteed utility of Eq. 6:
//!
//! `U_i(X, p) ≥ Σ_j w_j · x_j / (x_j + μ_j + σ_j·Φ⁻¹(p))`
//!
//! "Stateless": only the running mean and standard deviation of the price
//! need to be tracked — no samples are stored.

use gm_numeric::norm_quantile;
use gm_numeric::stats::RunningStats;
use gm_tycoon::{best_response, HostId, HostQuote};

/// Per-host normal price model (the running `μ`, `σ` of the spot price, in
/// credits/second) plus the host's deliverable capacity used as the Best
/// Response weight.
#[derive(Clone, Copy, Debug)]
pub struct NormalPriceModel {
    /// Which host this models.
    pub host: HostId,
    /// Mean spot price (credits/s).
    pub mean: f64,
    /// Spot price standard deviation (credits/s).
    pub std_dev: f64,
    /// Deliverable vCPU capacity in MHz (the `w` weight).
    pub capacity_mhz: f64,
}

impl NormalPriceModel {
    /// Build from accumulated price statistics.
    pub fn from_stats(host: HostId, stats: &RunningStats, capacity_mhz: f64) -> Self {
        NormalPriceModel {
            host,
            mean: stats.mean(),
            std_dev: stats.std_dev(),
            capacity_mhz,
        }
    }

    /// Build from a raw window of price samples.
    ///
    /// # Panics
    /// Panics if `prices` is empty.
    pub fn from_prices(host: HostId, prices: &[f64], capacity_mhz: f64) -> Self {
        assert!(!prices.is_empty(), "empty price window");
        let mut rs = RunningStats::new();
        for &p in prices {
            rs.push(p);
        }
        Self::from_stats(host, &rs, capacity_mhz)
    }

    /// The price bound `μ + σ·Φ⁻¹(p)` not exceeded with probability `p`
    /// (Eq. 5), floored at a tiny positive value so downstream share math
    /// stays well-defined.
    pub fn price_quantile(&self, p: f64) -> f64 {
        (self.mean + self.std_dev * norm_quantile(p)).max(1e-12)
    }

    /// Expected vCPU capacity (MHz) if we bid at rate `x` against the
    /// pessimistic price at guarantee `p`: `w·x/(x + y_p)`.
    pub fn capacity_at_bid(&self, x: f64, p: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let y = self.price_quantile(p);
        self.capacity_mhz * x / (x + y)
    }

    /// Smallest bid rate that achieves `target_mhz` with guarantee `p`,
    /// or `None` if the target exceeds the host's capacity.
    ///
    /// From `w·x/(x+y) = c`: `x = c·y/(w−c)`.
    pub fn bid_for_capacity(&self, target_mhz: f64, p: f64) -> Option<f64> {
        if target_mhz <= 0.0 {
            return Some(0.0);
        }
        if target_mhz >= self.capacity_mhz {
            return None;
        }
        let y = self.price_quantile(p);
        Some(target_mhz * y / (self.capacity_mhz - target_mhz))
    }
}

/// Guaranteed utility across multiple hosts (Eq. 6): distribute
/// `budget_rate` with Best Response against the pessimistic prices at
/// guarantee `p`, then evaluate `Σ w·x/(x + y_p)` in MHz.
pub fn guaranteed_capacity(models: &[NormalPriceModel], budget_rate: f64, p: f64) -> f64 {
    if models.is_empty() || budget_rate <= 0.0 {
        return 0.0;
    }
    let quotes: Vec<HostQuote> = models
        .iter()
        .map(|m| HostQuote {
            host: m.host,
            weight: m.capacity_mhz,
            others_rate: m.price_quantile(p),
        })
        .collect();
    let bids = best_response(&quotes, budget_rate, usize::MAX);
    bids.iter()
        .map(|(host, x)| {
            let m = models.iter().find(|m| m.host == *host).expect("model");
            m.capacity_at_bid(*x, p)
        })
        .sum()
}

/// Smallest total budget rate achieving `target_mhz` across `models` with
/// guarantee `p`, found by bisection on the monotone `guaranteed_capacity`.
/// Returns `None` when the target exceeds total capacity.
pub fn budget_for_capacity(
    models: &[NormalPriceModel],
    target_mhz: f64,
    p: f64,
) -> Option<f64> {
    let total: f64 = models.iter().map(|m| m.capacity_mhz).sum();
    if target_mhz >= total {
        return None;
    }
    if target_mhz <= 0.0 {
        return Some(0.0);
    }
    // Bracket the answer.
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    while guaranteed_capacity(models, hi, p) < target_mhz {
        hi *= 2.0;
        if hi > 1e12 {
            return None;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if guaranteed_capacity(models, mid, p) < target_mhz {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(hi)
}

/// A point on a Fig.-3-style guarantee curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GuaranteeCurvePoint {
    /// Budget in credits/day.
    pub budget_per_day: f64,
    /// Guaranteed capacity in MHz.
    pub capacity_mhz: f64,
}

/// Generate the Fig. 3 curve: guaranteed capacity as a function of budget
/// (credits/day) for guarantee level `p`.
pub fn guarantee_curve(
    models: &[NormalPriceModel],
    budgets_per_day: &[f64],
    p: f64,
) -> Vec<GuaranteeCurvePoint> {
    budgets_per_day
        .iter()
        .map(|&b| GuaranteeCurvePoint {
            budget_per_day: b,
            capacity_mhz: guaranteed_capacity(models, b / 86_400.0, p),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(mean: f64, sd: f64, cap: f64) -> NormalPriceModel {
        NormalPriceModel {
            host: HostId(0),
            mean,
            std_dev: sd,
            capacity_mhz: cap,
        }
    }

    #[test]
    fn price_quantile_orders_with_guarantee() {
        let m = model(1.0, 0.2, 3000.0);
        let p80 = m.price_quantile(0.80);
        let p90 = m.price_quantile(0.90);
        let p99 = m.price_quantile(0.99);
        assert!(p80 < p90 && p90 < p99, "{p80} {p90} {p99}");
        // Median = mean for a normal.
        assert!((m.price_quantile(0.5) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn zero_variance_price_is_deterministic() {
        let m = model(2.0, 0.0, 3000.0);
        assert!((m.price_quantile(0.99) - 2.0).abs() < 1e-12);
        assert!((m.price_quantile(0.01) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_grows_with_bid_and_saturates() {
        let m = model(0.5, 0.1, 2910.0);
        let c_small = m.capacity_at_bid(0.01, 0.9);
        let c_big = m.capacity_at_bid(10.0, 0.9);
        let c_huge = m.capacity_at_bid(1e6, 0.9);
        assert!(c_small < c_big && c_big < c_huge);
        assert!(c_huge <= 2910.0 && c_huge > 2905.0);
        assert_eq!(m.capacity_at_bid(0.0, 0.9), 0.0);
    }

    #[test]
    fn higher_guarantee_needs_more_budget_for_same_capacity() {
        // The Fig. 3 ordering: the 99 % curve lies below the 80 % curve.
        let m = model(0.5, 0.2, 2910.0);
        let c80 = m.capacity_at_bid(1.0, 0.80);
        let c99 = m.capacity_at_bid(1.0, 0.99);
        assert!(c80 > c99);
    }

    #[test]
    fn bid_for_capacity_inverts_capacity_at_bid() {
        let m = model(0.5, 0.2, 2910.0);
        for target in [100.0, 1000.0, 2000.0, 2800.0] {
            let x = m.bid_for_capacity(target, 0.9).unwrap();
            let c = m.capacity_at_bid(x, 0.9);
            assert!((c - target).abs() < 1e-6, "target {target}: got {c}");
        }
        assert!(m.bid_for_capacity(2910.0, 0.9).is_none());
        assert!(m.bid_for_capacity(5000.0, 0.9).is_none());
        assert_eq!(m.bid_for_capacity(0.0, 0.9), Some(0.0));
    }

    #[test]
    fn from_prices_computes_stats() {
        let m = NormalPriceModel::from_prices(HostId(1), &[1.0, 2.0, 3.0], 1000.0);
        assert!((m.mean - 2.0).abs() < 1e-12);
        assert!((m.std_dev - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn multi_host_capacity_beats_single_host() {
        let models = vec![
            model(0.5, 0.1, 2910.0),
            NormalPriceModel {
                host: HostId(1),
                mean: 0.5,
                std_dev: 0.1,
                capacity_mhz: 2910.0,
            },
        ];
        let both = guaranteed_capacity(&models, 2.0, 0.9);
        let one = guaranteed_capacity(&models[..1], 2.0, 0.9);
        assert!(both > one, "{both} vs {one}");
    }

    #[test]
    fn guaranteed_capacity_monotone_in_budget() {
        let models = vec![model(0.5, 0.2, 2910.0)];
        let mut last = 0.0;
        for b in [0.01, 0.1, 0.5, 1.0, 5.0, 50.0] {
            let c = guaranteed_capacity(&models, b, 0.9);
            assert!(c >= last, "capacity decreased at budget {b}");
            last = c;
        }
    }

    #[test]
    fn budget_for_capacity_bisection() {
        let models = vec![
            model(0.5, 0.2, 2910.0),
            NormalPriceModel {
                host: HostId(1),
                mean: 0.8,
                std_dev: 0.3,
                capacity_mhz: 2910.0,
            },
        ];
        let target = 3000.0;
        let budget = budget_for_capacity(&models, target, 0.9).unwrap();
        let achieved = guaranteed_capacity(&models, budget, 0.9);
        assert!((achieved - target).abs() < 1.0, "achieved {achieved}");
        assert!(budget_for_capacity(&models, 6000.0, 0.9).is_none());
        assert_eq!(budget_for_capacity(&models, 0.0, 0.9), Some(0.0));
    }

    #[test]
    fn guarantee_curve_shape_matches_fig3() {
        // Concave increasing, with the flattening the paper describes
        // ("a certain point where the curves flatten out").
        let models = vec![model(2.0 / 86_400.0 * 20.0, 1.0 / 86_400.0 * 20.0, 2910.0)];
        let budgets: Vec<f64> = (1..=20).map(|i| i as f64 * 5.0).collect();
        let curve = guarantee_curve(&models, &budgets, 0.9);
        // increasing
        for w in curve.windows(2) {
            assert!(w[1].capacity_mhz >= w[0].capacity_mhz);
        }
        // diminishing returns: first increment bigger than last
        let first_gain = curve[1].capacity_mhz - curve[0].capacity_mhz;
        let last_gain = curve[19].capacity_mhz - curve[18].capacity_mhz;
        assert!(first_gain > last_gain * 2.0, "{first_gain} vs {last_gain}");
    }

    #[test]
    fn empty_models_yield_zero() {
        assert_eq!(guaranteed_capacity(&[], 1.0, 0.9), 0.0);
    }
}
