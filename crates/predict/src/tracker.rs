//! Telemetry for the prediction suite: per-model error tracking.
//!
//! Every forecasting model in this crate can be evaluated against realized
//! prices; the [`PredictionTracker`] folds those comparisons into the
//! shared `gm_telemetry` registry so a scenario export shows how each
//! model is doing *alongside* the market and grid metrics it feeds:
//!
//! * `predict.error.<model>` — histogram of absolute prediction errors
//!   `|predicted − actual|`, one histogram per model name.
//! * `predict.epsilon.<model>` — gauge holding the latest ε validation
//!   score (the paper's Fig. 4 metric, see [`crate::ar::epsilon`]).
//! * `predict.samples` — counter of recorded prediction/actual pairs.

use std::collections::BTreeMap;

use gm_telemetry::{Counter, Gauge, Histogram, Registry};

/// Records prediction errors per model into a [`Registry`].
pub struct PredictionTracker {
    registry: Registry,
    errors: BTreeMap<String, Histogram>,
    epsilons: BTreeMap<String, Gauge>,
    samples: Counter,
}

impl PredictionTracker {
    /// A tracker recording into `registry`.
    pub fn new(registry: &Registry) -> PredictionTracker {
        PredictionTracker {
            registry: registry.clone(),
            errors: BTreeMap::new(),
            epsilons: BTreeMap::new(),
            samples: registry.counter("predict.samples"),
        }
    }

    /// Record one prediction/actual pair for `model`: the absolute error
    /// goes into `predict.error.<model>`.
    pub fn record(&mut self, model: &str, predicted: f64, actual: f64) {
        self.error_histogram(model).record((predicted - actual).abs());
        self.samples.inc();
    }

    /// Record an aligned batch of predictions and measurements (e.g. the
    /// output of [`crate::ar::walk_forward`]).
    ///
    /// # Panics
    /// Panics if the slices differ in length.
    pub fn record_batch(&mut self, model: &str, predictions: &[f64], measurements: &[f64]) {
        assert_eq!(predictions.len(), measurements.len(), "length mismatch");
        for (&p, &m) in predictions.iter().zip(measurements) {
            self.record(model, p, m);
        }
    }

    /// Publish an ε validation score for `model` on the
    /// `predict.epsilon.<model>` gauge.
    pub fn set_epsilon(&mut self, model: &str, eps: f64) {
        let registry = &self.registry;
        self.epsilons
            .entry(model.to_owned())
            .or_insert_with(|| registry.gauge(&format!("predict.epsilon.{model}")))
            .set(eps);
    }

    fn error_histogram(&mut self, model: &str) -> &Histogram {
        let registry = &self.registry;
        self.errors
            .entry(model.to_owned())
            .or_insert_with(|| registry.histogram(&format!("predict.error.{model}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_land_in_per_model_histograms() {
        let registry = Registry::new();
        let mut t = PredictionTracker::new(&registry);
        t.record("ar16", 1.0, 1.5);
        t.record("ar16", 2.0, 1.0);
        t.record("naive", 3.0, 3.0);
        t.set_epsilon("ar16", 0.12);

        let snap = registry.snapshot();
        assert_eq!(snap.histograms["predict.error.ar16"].count, 2);
        assert_eq!(snap.histograms["predict.error.ar16"].max, 1.0);
        assert_eq!(snap.histograms["predict.error.naive"].count, 1);
        assert_eq!(snap.gauges["predict.epsilon.ar16"], 0.12);
        assert_eq!(snap.counters["predict.samples"], 3);
    }

    #[test]
    fn batches_must_align() {
        let registry = Registry::new();
        let mut t = PredictionTracker::new(&registry);
        t.record_batch("m", &[1.0, 2.0], &[1.0, 3.0]);
        assert_eq!(
            registry.snapshot().histograms["predict.error.m"].count,
            2
        );
    }
}
