//! Moving-window price distributions via the paper's dual-table
//! approximation (§4.5, Fig. 6–7).
//!
//! "The approach taken is to keep track of two price distributions for each
//! window at all times. The distributions will contain twice as many
//! snapshots as is required by the windows and have a time lag of the same
//! size as the window." Table k restarts every `2n` snapshots, with table 2
//! phase-shifted by `n`; the reported distribution merges both tables with
//! weights
//!
//! `w_{i,1} = 1 − |n₁ − n| / n`, `r_{i,j} = w₁·s₁ⱼ + (1 − w₁)·s₂ⱼ`
//!
//! so the table that currently holds closest to `n` snapshots dominates.

use crate::slots::SlotTable;

/// Distribution of the last ~`n` price snapshots, approximated with two
/// lag-shifted slot tables.
#[derive(Clone, Debug)]
pub struct DualWindowDistribution {
    window_n: u64,
    tables: [SlotTable; 2],
    /// Snapshots currently accumulated in each table.
    counts: [u64; 2],
    /// Total snapshots ever seen.
    seen: u64,
}

impl DualWindowDistribution {
    /// New window of `window_n` snapshots using `slots` price brackets
    /// starting at `initial_range`.
    ///
    /// # Panics
    /// Panics if `window_n == 0` (slot constraints as in [`SlotTable`]).
    pub fn new(window_n: u64, slots: usize, initial_range: f64) -> Self {
        assert!(window_n >= 1, "window must be >= 1 snapshot");
        DualWindowDistribution {
            window_n,
            tables: [
                SlotTable::new(slots, initial_range),
                SlotTable::new(slots, initial_range),
            ],
            counts: [0, 0],
            seen: 0,
        }
    }

    /// Window size in snapshots.
    pub fn window(&self) -> u64 {
        self.window_n
    }

    /// Total snapshots recorded.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Record one price snapshot.
    pub fn add(&mut self, price: f64) {
        let n = self.window_n;
        // Table 1 restarts at snapshots 0, 2n, 4n, …; table 2 at n, 3n, ….
        // (Before its first start, table 2 simply has not begun filling.)
        if self.seen.is_multiple_of(2 * n) {
            self.tables[0].clear();
            self.counts[0] = 0;
        }
        if self.seen >= n && (self.seen - n).is_multiple_of(2 * n) {
            self.tables[1].clear();
            self.counts[1] = 0;
        }
        self.tables[0].add(price);
        self.counts[0] += 1;
        if self.seen >= n {
            self.tables[1].add(price);
            self.counts[1] += 1;
        }
        self.seen += 1;
    }

    /// The merged window distribution: proportion of prices per slot.
    ///
    /// Both tables are first re-binned onto the wider of the two ranges so
    /// the slot edges agree, then merged with the lag weights.
    pub fn proportions(&self) -> Vec<f64> {
        if self.seen == 0 {
            return vec![0.0; self.tables[0].slots()];
        }
        let n = self.window_n as f64;
        // Weight of table 1 per the paper; table 2 gets the complement.
        let w1 = (1.0 - (self.counts[0] as f64 - n).abs() / n).clamp(0.0, 1.0);
        let (s1, s2) = self.aligned_proportions();
        if self.counts[1] == 0 {
            return s1;
        }
        s1.iter()
            .zip(&s2)
            .map(|(a, b)| w1 * a + (1.0 - w1) * b)
            .collect()
    }

    /// Mean spot price of the merged window distribution (slot midpoints
    /// weighted by their proportions), or `None` before any snapshot.
    ///
    /// This is the degraded-mode price source (`DESIGN.md` §12): when live
    /// quotes are unreachable, consumers bid against this predicted price
    /// instead of a stale or missing quote.
    pub fn mean(&self) -> Option<f64> {
        if self.seen == 0 {
            return None;
        }
        let mean = self
            .proportions()
            .iter()
            .zip(self.slot_edges())
            .map(|(p, (lo, hi))| p * 0.5 * (lo + hi))
            .sum();
        Some(mean)
    }

    /// The common slot edges of the merged distribution.
    pub fn slot_edges(&self) -> Vec<(f64, f64)> {
        let slots = self.tables[0].slots();
        let range = self.tables[0].range().max(self.tables[1].range());
        let w = range / slots as f64;
        (0..slots).map(|i| (i as f64 * w, (i + 1) as f64 * w)).collect()
    }

    /// Re-bin both tables onto the wider range so slots line up.
    fn aligned_proportions(&self) -> (Vec<f64>, Vec<f64>) {
        let r0 = self.tables[0].range();
        let r1 = self.tables[1].range();
        let target = r0.max(r1);
        (
            rebin(&self.tables[0], target),
            rebin(&self.tables[1], target),
        )
    }
}

/// Project a table's proportions onto a range `target ≥ table.range()`
/// (ranges only ever differ by powers of two, so slots merge exactly).
fn rebin(table: &SlotTable, target: f64) -> Vec<f64> {
    let slots = table.slots();
    let props = table.proportions();
    let ratio = (target / table.range()).round() as usize;
    if ratio <= 1 {
        return props;
    }
    let mut out = vec![0.0; slots];
    for (i, p) in props.iter().enumerate() {
        out[i / ratio] += p;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_des::Pcg32;
    use gm_numeric::samplers::{Beta, Exponential, Normal, Sampler, Uniform};
    use gm_numeric::Histogram;

    fn tv(a: &[f64], b: &[f64]) -> f64 {
        0.5 * a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>()
    }

    #[test]
    fn empty_distribution_is_zero() {
        let d = DualWindowDistribution::new(10, 8, 1.0);
        assert_eq!(d.proportions(), vec![0.0; 8]);
    }

    #[test]
    fn proportions_sum_to_one_after_samples() {
        let mut d = DualWindowDistribution::new(10, 8, 1.0);
        for i in 0..35 {
            d.add((i % 7) as f64 * 0.1);
        }
        let s: f64 = d.proportions().iter().sum();
        assert!((s - 1.0).abs() < 1e-9, "sum {s}");
    }

    #[test]
    fn tracks_a_distribution_shift() {
        // Feed low prices, then high prices; after >2n high snapshots the
        // window must have forgotten the low regime.
        let mut d = DualWindowDistribution::new(50, 8, 2.0);
        for _ in 0..200 {
            d.add(0.1);
        }
        for _ in 0..200 {
            d.add(1.9);
        }
        let p = d.proportions();
        let low_mass: f64 = p[..4].iter().sum();
        assert!(low_mass < 0.05, "window kept stale low prices: {p:?}");
    }

    /// The paper's Fig. 7 experiment: approximation vs measured for
    /// Normal(0.5, 0.15), Exp(2) and Beta(5, 1) with a lag of half the
    /// window and uniform noise outside the window.
    #[test]
    fn fig7_window_approximation_is_close() {
        let n = 400u64;
        let slots = 16;
        let mut rng = Pcg32::seed_from_u64(20060704);

        type BoxedSampler = Box<dyn Fn(&mut Pcg32) -> f64>;
        let cases: Vec<(&str, BoxedSampler)> = vec![
            ("norm", {
                let s = Normal::new(0.5, 0.15);
                Box::new(move |r: &mut Pcg32| s.sample(r).max(0.0))
            }),
            ("exp", {
                let s = Exponential::new(2.0);
                Box::new(move |r: &mut Pcg32| s.sample(r))
            }),
            ("beta", {
                let s = Beta::new(5.0, 1.0);
                Box::new(move |r: &mut Pcg32| s.sample(r))
            }),
        ];

        for (name, sampler) in cases {
            let mut d = DualWindowDistribution::new(n, slots, 1.0);
            let noise = Uniform::new(0.0, 1.0);
            // Noise outside the window (time lag n/2 = max foreign influence).
            for _ in 0..(n / 2) {
                d.add(noise.sample(&mut rng));
            }
            // The window's real samples.
            let mut real = Vec::new();
            for _ in 0..n {
                let x = sampler(&mut rng);
                real.push(x);
                d.add(x);
            }
            let approx = d.proportions();
            // Measured distribution over the same slot edges.
            let range = d.slot_edges().last().unwrap().1;
            let measured = Histogram::from_samples(0.0, range, slots, &real).proportions();
            let dist = tv(&approx, &measured);
            assert!(
                dist < 0.30,
                "{name}: approximation too far from measured (TV {dist:.3})\napprox {approx:?}\nmeasured {measured:?}"
            );
        }
    }

    #[test]
    fn rebinning_aligns_ranges() {
        // Force table ranges to diverge, then check proportions still sum
        // to one and merge cleanly.
        let mut d = DualWindowDistribution::new(4, 8, 1.0);
        for _ in 0..4 {
            d.add(0.5); // table 1 only at range 1
        }
        d.add(100.0); // both tables, forces doubling in both
        d.add(0.5);
        let p = d.proportions();
        let s: f64 = p.iter().sum();
        assert!((s - 1.0).abs() < 1e-9, "{p:?}");
    }

    #[test]
    fn window_one_tracks_last_snapshot_region() {
        let mut d = DualWindowDistribution::new(1, 4, 1.0);
        d.add(0.1);
        d.add(0.9);
        let p = d.proportions();
        assert!(p[3] > 0.4, "latest snapshot should dominate: {p:?}");
    }

    #[test]
    fn mean_tracks_the_window() {
        let mut d = DualWindowDistribution::new(10, 16, 1.0);
        assert_eq!(d.mean(), None, "no snapshots, no mean");
        for _ in 0..40 {
            d.add(0.5);
        }
        let m = d.mean().unwrap();
        // Slot quantisation bounds the error to one slot width.
        assert!((m - 0.5).abs() < 1.0 / 16.0 + 1e-9, "mean {m}");
    }

    #[test]
    fn weights_change_with_phase() {
        // Right after table 1 restarts, table 2 (holding ~n samples) must
        // dominate the merge. We verify via a regime change at the restart.
        let n = 100u64;
        let mut d = DualWindowDistribution::new(n, 8, 1.0);
        for _ in 0..(2 * n) {
            d.add(0.1); // fills table1 to 2n (restart next add), table2 to n
        }
        d.add(0.9); // table 1 restarts with this single high sample
        let p = d.proportions();
        // Low-price mass (slot 0) must still dominate: table 2 carries the
        // window's history.
        assert!(p[0] > 0.5, "history lost at table restart: {p:?}");
    }
}
