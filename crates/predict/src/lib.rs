//! # gm-predict — price and performance prediction suite
//!
//! The paper's Section 4: tools that tell a grid user *how much to spend*
//! to hit a deadline, or what performance to expect for a budget.
//!
//! * [`normal`] — the lightweight stateless model (§4.2): assume spot
//!   prices are normal, combine `Φ⁻¹` guarantees with Best Response to map
//!   budgets ↔ capacity at 80/90/99 % confidence (Fig. 3).
//! * [`ar`] — AR(k) time-series forecasting (§4.3): Yule-Walker via
//!   Levinson-Durbin, optional smoothing-spline pre-filter, and the paper's
//!   ε validation metric (Fig. 4).
//! * [`portfolio`] — Markowitz mean-variance selection (§4.4): covariance
//!   estimation, minimum-variance ("risk-free") portfolio, efficient
//!   frontier (Fig. 5).
//! * [`slots`] — the auctioneer's self-adjusting slot table recording the
//!   proportion of prices per price bracket (§4.1, Fig. 6).
//! * [`window`] — the dual-distribution moving-window approximation with
//!   lag-proportional merging (§4.5, Fig. 6–7).
//! * [`var`] — Value-at-Risk performance floors ("minimal performance V
//!   with probability P", the Chun et al. framing discussed in §4.4).
//! * [`reservation`] — §7 future work implemented: reservation pricing,
//!   deadline SLAs and swing options on top of the normal model.
//! * [`tracker`] — per-model prediction-error telemetry feeding the
//!   scenario-wide `gm_telemetry` registry.

pub mod ar;
pub mod normal;
pub mod portfolio;
pub mod reservation;
pub mod slots;
pub mod tracker;
pub mod var;
pub mod window;

pub use ar::{naive_epsilon, ArModel, MeanMode};
pub use normal::NormalPriceModel;
pub use portfolio::{efficient_frontier, min_variance_portfolio, FrontierPoint, ReturnStats};
pub use reservation::{price_reservation, sla_quote, SlaQuote, SwingOption};
pub use slots::SlotTable;
pub use tracker::PredictionTracker;
pub use var::{performance_floor, Guarantee};
pub use window::DualWindowDistribution;
