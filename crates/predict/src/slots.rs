//! The self-adjusting slot table (§4.1).
//!
//! "To track the price distribution dynamically we implement a
//! self-adjusting slot table recording the proportion of prices that fall
//! into certain ranges." Prices are non-negative but their scale is not
//! known in advance, so the table starts with a small range and *doubles*
//! it whenever a price lands beyond the top edge, merging adjacent slot
//! pairs so no information is lost. The number of slots stays constant.

/// A fixed-slot, growing-range histogram over `[0, range)`.
#[derive(Clone, Debug)]
pub struct SlotTable {
    counts: Vec<u64>,
    range: f64,
    total: u64,
}

impl SlotTable {
    /// New table with `slots` buckets covering `[0, initial_range)`.
    ///
    /// # Panics
    /// Panics unless `slots` is even and ≥ 2 and `initial_range > 0`.
    pub fn new(slots: usize, initial_range: f64) -> SlotTable {
        assert!(slots >= 2 && slots.is_multiple_of(2), "slots must be even and >= 2");
        assert!(initial_range > 0.0 && initial_range.is_finite());
        SlotTable {
            counts: vec![0; slots],
            range: initial_range,
            total: 0,
        }
    }

    /// Record one price.
    ///
    /// # Panics
    /// Panics on negative or non-finite prices (spot prices are positive).
    pub fn add(&mut self, price: f64) {
        assert!(price >= 0.0 && price.is_finite(), "bad price {price}");
        while price >= self.range {
            self.double_range();
        }
        let w = self.range / self.counts.len() as f64;
        let idx = ((price / w) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    fn double_range(&mut self) {
        // Merge adjacent pairs into the lower half; zero the upper half.
        let n = self.counts.len();
        for i in 0..n / 2 {
            self.counts[i] = self.counts[2 * i] + self.counts[2 * i + 1];
        }
        for c in &mut self.counts[n / 2..] {
            *c = 0;
        }
        self.range *= 2.0;
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.counts.len()
    }

    /// Current top edge of the covered range.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Total number of recorded prices.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw counts per slot.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Proportion of prices per slot (zeros when empty).
    pub fn proportions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// `(left_edge, right_edge)` of slot `i`.
    pub fn slot_edges(&self, i: usize) -> (f64, f64) {
        let w = self.range / self.counts.len() as f64;
        (i as f64 * w, (i + 1) as f64 * w)
    }

    /// Reset all counts (range is kept).
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
    }

    /// Approximate mean from slot centers.
    pub fn approx_mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let w = self.range / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as f64 + 0.5) * w * c as f64)
            .sum::<f64>()
            / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_initial_range() {
        let mut t = SlotTable::new(4, 1.0);
        t.add(0.1);
        t.add(0.3);
        t.add(0.9);
        assert_eq!(t.counts(), &[1, 1, 0, 1]);
        assert_eq!(t.range(), 1.0);
        assert_eq!(t.total(), 3);
    }

    #[test]
    fn out_of_range_price_doubles_range_and_merges() {
        let mut t = SlotTable::new(4, 1.0);
        t.add(0.1); // slot 0
        t.add(0.6); // slot 2
        t.add(1.5); // forces doubling to [0,2): old slots merge pairwise
        assert_eq!(t.range(), 2.0);
        // After merge: slot0 = old(0+1) = 1, slot1 = old(2+3) = 1; 1.5 → slot 3
        assert_eq!(t.counts(), &[1, 1, 0, 1]);
    }

    #[test]
    fn repeated_doubling_for_huge_price() {
        let mut t = SlotTable::new(8, 1.0);
        t.add(0.5);
        t.add(100.0);
        assert_eq!(t.range(), 128.0);
        assert_eq!(t.total(), 2);
        let s: u64 = t.counts().iter().sum();
        assert_eq!(s, 2, "no samples lost during merges");
    }

    #[test]
    fn proportions_sum_to_one() {
        let mut t = SlotTable::new(6, 0.5);
        for i in 0..100 {
            t.add(i as f64 * 0.07);
        }
        let p: f64 = t.proportions().iter().sum();
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn approx_mean_tracks_data() {
        let mut t = SlotTable::new(64, 1.0);
        for i in 0..10_000 {
            t.add(3.0 + (i % 100) as f64 / 100.0);
        }
        assert!((t.approx_mean() - 3.5).abs() < 0.1, "{}", t.approx_mean());
    }

    #[test]
    fn clear_resets_counts_keeps_range() {
        let mut t = SlotTable::new(4, 1.0);
        t.add(3.0);
        t.clear();
        assert_eq!(t.total(), 0);
        assert_eq!(t.range(), 4.0);
        assert_eq!(t.proportions(), vec![0.0; 4]);
    }

    #[test]
    fn slot_edges() {
        let t = SlotTable::new(4, 2.0);
        assert_eq!(t.slot_edges(0), (0.0, 0.5));
        assert_eq!(t.slot_edges(3), (1.5, 2.0));
    }

    #[test]
    #[should_panic(expected = "bad price")]
    fn negative_price_rejected() {
        SlotTable::new(4, 1.0).add(-0.1);
    }

    #[test]
    #[should_panic(expected = "slots must be even")]
    fn odd_slots_rejected() {
        SlotTable::new(5, 1.0);
    }
}
