//! Value-at-Risk style performance guarantees.
//!
//! §4.4 discusses Chun, Buonadonna & Ng's computational risk management:
//! guarantees of the form "within a given time horizon, the minimal
//! performance will be a value V with a probability P". This module
//! provides both the empirical and the parametric (normal) versions of
//! that statement, plus conditional VaR (expected shortfall) for
//! risk-averse budget planning.

use gm_numeric::norm_quantile;
use gm_numeric::stats::percentile;

/// Empirical performance floor: the value `V` such that performance stays
/// **at or above** `V` with probability `p` (the `(1−p)` quantile of the
/// sample). Returns `None` on empty input.
///
/// # Panics
/// Panics unless `p ∈ (0, 1)`.
pub fn performance_floor(samples: &[f64], p: f64) -> Option<f64> {
    assert!(p > 0.0 && p < 1.0, "probability must be in (0,1)");
    percentile(samples, 1.0 - p)
}

/// Parametric (normal) performance floor: `μ + σ·Φ⁻¹(1−p)`.
///
/// # Panics
/// Panics unless `p ∈ (0, 1)` and `std_dev ≥ 0`.
pub fn parametric_floor(mean: f64, std_dev: f64, p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must be in (0,1)");
    assert!(std_dev >= 0.0, "negative std dev");
    mean + std_dev * norm_quantile(1.0 - p)
}

/// Conditional VaR (expected shortfall): the mean of the worst `(1−p)`
/// tail — what performance to expect *when* the floor is breached.
/// Returns `None` on empty input.
///
/// # Panics
/// Panics unless `p ∈ (0, 1)`.
pub fn conditional_floor(samples: &[f64], p: f64) -> Option<f64> {
    let floor = performance_floor(samples, p)?;
    let tail: Vec<f64> = samples.iter().copied().filter(|&x| x <= floor).collect();
    if tail.is_empty() {
        return Some(floor);
    }
    Some(tail.iter().sum::<f64>() / tail.len() as f64)
}

/// A packaged guarantee statement for reporting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Guarantee {
    /// Probability the floor holds.
    pub probability: f64,
    /// The guaranteed minimal performance.
    pub floor: f64,
    /// Expected performance when the guarantee is breached.
    pub shortfall: f64,
}

/// Build a [`Guarantee`] from observed performance samples.
pub fn guarantee_from_samples(samples: &[f64], p: f64) -> Option<Guarantee> {
    Some(Guarantee {
        probability: p,
        floor: performance_floor(samples, p)?,
        shortfall: conditional_floor(samples, p)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_des::Pcg32;
    use gm_numeric::samplers::{Normal, Sampler};

    #[test]
    fn empirical_floor_on_known_sample() {
        // 100 values 1..=100: with p = 0.9 the floor is the 10th pct ≈ 10.9.
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let floor = performance_floor(&xs, 0.9).unwrap();
        assert!((floor - 10.9).abs() < 0.11, "{floor}");
        // Higher confidence ⇒ lower floor.
        let f99 = performance_floor(&xs, 0.99).unwrap();
        assert!(f99 < floor);
    }

    #[test]
    fn parametric_floor_matches_empirical_for_normal_data() {
        let mut rng = Pcg32::seed_from_u64(5);
        let d = Normal::new(100.0, 15.0);
        let xs = d.sample_n(&mut rng, 200_000);
        let emp = performance_floor(&xs, 0.9).unwrap();
        let par = parametric_floor(100.0, 15.0, 0.9);
        assert!((emp - par).abs() < 0.5, "empirical {emp} vs parametric {par}");
    }

    #[test]
    fn parametric_floor_known_value() {
        // Φ⁻¹(0.1) ≈ −1.2816 → floor = 100 − 1.2816·10 ≈ 87.18.
        let f = parametric_floor(100.0, 10.0, 0.9);
        assert!((f - 87.184).abs() < 0.01, "{f}");
        // Zero variance → floor is the mean at any confidence.
        assert_eq!(parametric_floor(50.0, 0.0, 0.99), 50.0);
    }

    #[test]
    fn shortfall_is_below_floor() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let g = guarantee_from_samples(&xs, 0.9).unwrap();
        assert!(g.shortfall <= g.floor);
        assert!(g.shortfall >= 1.0);
        assert_eq!(g.probability, 0.9);
    }

    #[test]
    fn empty_samples_yield_none() {
        assert!(performance_floor(&[], 0.9).is_none());
        assert!(conditional_floor(&[], 0.9).is_none());
        assert!(guarantee_from_samples(&[], 0.9).is_none());
    }

    #[test]
    fn degenerate_constant_sample() {
        let xs = vec![7.0; 50];
        let g = guarantee_from_samples(&xs, 0.95).unwrap();
        assert_eq!(g.floor, 7.0);
        assert_eq!(g.shortfall, 7.0);
    }

    #[test]
    #[should_panic(expected = "probability must be in (0,1)")]
    fn bad_probability_rejected() {
        performance_floor(&[1.0], 1.0);
    }
}
