//! Chaos suite (`DESIGN.md` §8): the market, grid and bank under injected
//! faults. Three angles:
//!
//! 1. A Table-1-style workload with fixed-time host crashes — every job
//!    completes on the survivors, money is conserved, and the metrics are
//!    byte-identical across same-seed runs.
//! 2. A property over *random* fault schedules — including mid-run bank
//!    kill/recover (`BankRestart`) interleaved with host crashes and bank
//!    outages — whatever the schedule, money is conserved and no sub-job
//!    is ever both completed and re-dispatched. Failing cases print the
//!    replay seed via `gm_des::check`.
//! 3. The transfer-token replay defence end to end: an idempotent bank
//!    transfer whose first reply is lost still mints exactly one receipt,
//!    and redeeming the resulting token twice fails.

use gm_grid::{GridIdentity, TokenError, TokenRegistry, TransferToken};
use gridmarket::des::check::{check, Gen};
use gridmarket::des::{FaultGenConfig, FaultPlan, SimDuration, SimTime};
use gridmarket::scenario::{Scenario, ScenarioResult};
use gridmarket::tycoon::{Credits, HostSpec, LiveMarket};

/// The Table-1 workload (equal funding) over 6 hosts with two hosts
/// crashing at fixed times mid-run; one recovers, one stays down.
fn table1_with_crashes(seed: u64) -> ScenarioResult {
    table1_with_crashes_sharded(seed, 1)
}

/// Same workload with the market's tick sweep split over `shards`
/// auctioneer shards (DESIGN.md §15).
fn table1_with_crashes_sharded(seed: u64, shards: usize) -> ScenarioResult {
    let mut plan = FaultPlan::new();
    plan.host_crash(SimTime::from_secs(20 * 60), 0)
        .host_recover(SimTime::from_secs(80 * 60), 0)
        .host_crash(SimTime::from_secs(35 * 60), 3);
    Scenario::builder()
        .seed(seed)
        .hosts(6)
        .chunk_minutes(15.0)
        .deadline_minutes(240)
        .horizon_hours(12)
        .equal_users(4, 120.0)
        .faults(plan)
        .sharding(shards)
        .run()
        .expect("chaos scenario runs")
}

/// Everything a regression cares about, rendered to one comparable string.
fn fingerprint(r: &ScenarioResult) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    for u in &r.users {
        writeln!(
            s,
            "{} {:?} {:.9} {:.9} {:.9} {} {} {}/{}",
            u.label,
            u.phase,
            u.time_hours,
            u.charged,
            u.avg_nodes,
            u.nodes,
            u.latency_min_per_job,
            u.completed_subjobs,
            u.subjobs
        )
        .unwrap();
    }
    writeln!(
        s,
        "{:?} {:?} {} {:.9} {:.9}",
        r.finished_at, r.fault_counters, r.faults_injected, r.total_money, r.total_minted
    )
    .unwrap();
    s
}

#[test]
fn fixed_host_crashes_complete_on_survivors_and_replay_identically() {
    let r = table1_with_crashes(2006);

    // The faults actually bit: both crashes interrupted running work.
    assert_eq!(r.fault_counters.host_crashes, 2);
    assert!(
        r.fault_counters.subjobs_interrupted > 0,
        "crashes at 20/35 min must interrupt running sub-jobs"
    );
    assert_eq!(
        r.fault_counters.subjobs_interrupted, r.fault_counters.redispatched,
        "every interrupted sub-job is re-dispatched exactly once"
    );
    assert_eq!(r.crashed_hosts_at_end, 1, "host 3 never recovers");

    // ... and yet every job completed, on the surviving hosts.
    assert!(r.all_done(), "jobs must finish on survivors: {:?}", r.users);
    assert!(
        r.money_conserved(),
        "minted {} vs held {}",
        r.total_minted,
        r.total_money
    );
    assert!(r.recovery_invariant_ok);

    // Determinism: a second run with the same seed is byte-identical —
    // including the full telemetry export (counters, histograms, and the
    // timestamped fault-event trace).
    let again = table1_with_crashes(2006);
    assert_eq!(fingerprint(&r), fingerprint(&again));
    assert_eq!(r.telemetry_jsonl, again.telemetry_jsonl);
    assert!(r.telemetry_jsonl.contains("\"fault.host_crash\""));
    assert_eq!(r.metrics.counters["grid.host_crashes"], 2);

    // The guard's and the adversary library's instruments are lazy
    // (DESIGN.md §16): an honest chaos run never registers them, so the
    // default telemetry export stays byte-compatible with pre-guard
    // builds even while defenses are armed.
    assert!(!r.telemetry_jsonl.contains("market.guard"));
    assert!(!r.telemetry_jsonl.contains("adversary."));
}

#[test]
fn sharded_chaos_runs_are_byte_identical_at_any_shard_count() {
    // DESIGN.md §15: the slot-chunked sharded sweep re-imposes host-id
    // emission order, so the whole chaos report — per-user metrics,
    // money totals, and the timestamped telemetry export — is invariant
    // in the shard count even while hosts crash and recover mid-run.
    let base = table1_with_crashes(2006);
    for shards in [2, 8] {
        let sharded = table1_with_crashes_sharded(2006, shards);
        assert_eq!(
            fingerprint(&base),
            fingerprint(&sharded),
            "chaos metrics diverged at {shards} shards"
        );
        assert_eq!(
            base.telemetry_jsonl, sharded.telemetry_jsonl,
            "telemetry export diverged at {shards} shards"
        );
    }
}

#[test]
fn random_fault_schedules_conserve_money_and_never_double_complete() {
    check("chaos_schedule", 6, |g: &mut Gen| {
        let cfg = FaultGenConfig {
            hosts: 4,
            horizon: SimTime::from_secs(3 * 3600),
            crashes: g.usize_in(0, 3) as u32,
            mean_downtime: SimDuration::from_minutes(g.usize_in(5, 40) as u64),
            vm_failures: g.usize_in(0, 3) as u32,
            bank_outages: g.usize_in(0, 1) as u32,
            outage_len: SimDuration::from_minutes(g.usize_in(2, 10) as u64),
            bank_restarts: g.usize_in(0, 2) as u32,
            link_outages: g.usize_in(0, 2) as u32,
            link_outage_len: SimDuration::from_minutes(g.usize_in(2, 10) as u64),
            adversary_arrivals: 0,
        };
        let plan = FaultPlan::generate(g.u64(), cfg);
        let r = Scenario::builder()
            .seed(g.u64())
            .hosts(4)
            .chunk_minutes(10.0)
            .deadline_minutes(120)
            .horizon_hours(8)
            .equal_users(2, 100.0)
            .faults(plan)
            .run()
            .expect("chaos scenario runs");

        // Faults may stall a job (that is reported honestly), but they can
        // never create, destroy, or double-spend money ...
        assert!(
            r.money_conserved(),
            "minted {} vs held {} under fault schedule",
            r.total_minted,
            r.total_money
        );
        // ... and a sub-job is never both completed and re-dispatched.
        assert!(r.recovery_invariant_ok);
        // Honest reporting: a Done job really did all its sub-jobs.
        for u in &r.users {
            if u.phase == gridmarket::grid::JobPhase::Done {
                assert_eq!(u.completed_subjobs, u.subjobs);
            }
        }
    });
}

#[test]
fn replayed_transfer_token_is_rejected_even_with_lost_reply() {
    // A live bank whose reply to the first transfer attempt is lost: the
    // client times out, retries with the SAME request id, and the bank
    // replays the recorded outcome instead of debiting twice.
    let live = LiveMarket::spawn(b"replay", vec![HostSpec::testbed(0)]);
    let bank = live.bank();
    let user = GridIdentity::swegrid_user(1);
    let payer = bank.open_account(user.public_key(), "payer").unwrap();
    let broker = bank.open_account(user.public_key(), "broker").unwrap();
    bank.mint(payer, Credits::from_whole(100)).unwrap();

    bank.inject_drop_next_reply().unwrap();
    let receipt = bank
        .transfer_with_id(77, payer, broker, Credits::from_whole(40))
        .expect("retry after lost reply succeeds");

    // Exactly one debit despite the retry.
    assert_eq!(bank.balance(payer).unwrap(), Credits::from_whole(60));
    assert_eq!(bank.balance(broker).unwrap(), Credits::from_whole(40));

    // A deliberate re-send of the same request id is idempotent: same
    // receipt, no second debit.
    let replayed = bank
        .transfer_with_id(77, payer, broker, Credits::from_whole(40))
        .expect("replay returns the recorded outcome");
    assert_eq!(receipt, replayed, "replay must return the original receipt");
    assert_eq!(bank.balance(payer).unwrap(), Credits::from_whole(60));

    // The token minted from that receipt redeems once — a second
    // presentation (replay attack) is rejected.
    let bank_state = live.shutdown();
    let token = TransferToken::create(&user, receipt, user.dn());
    let mut registry = TokenRegistry::new();
    assert!(token.verify(&bank_state, broker).is_ok());
    registry.consume(&token).expect("first redemption succeeds");
    match registry.consume(&token) {
        Err(TokenError::AlreadySpent(id)) => assert_eq!(id, token.transfer_id()),
        other => panic!("second redemption must fail AlreadySpent, got {other:?}"),
    }
}

#[test]
fn jittered_backoff_keeps_same_seed_telemetry_byte_identical() {
    // Satellite: the anti-thunder-herd jitter is a pure function of
    // (job id, failure count), so two same-seed runs — crashes, retries,
    // backoffs and all — export byte-identical telemetry.
    use gridmarket::grid::AgentConfig;

    fn run(seed: u64) -> ScenarioResult {
        let mut agent = AgentConfig::default();
        agent.retry.jitter = 0.5;
        let mut plan = FaultPlan::new();
        plan.host_crash(SimTime::from_secs(20 * 60), 0)
            .host_recover(SimTime::from_secs(80 * 60), 0)
            .host_crash(SimTime::from_secs(35 * 60), 2);
        Scenario::builder()
            .seed(seed)
            .hosts(4)
            .chunk_minutes(10.0)
            .deadline_minutes(180)
            .horizon_hours(10)
            .equal_users(2, 100.0)
            .agent(agent)
            .faults(plan)
            .run()
            .expect("jittered chaos scenario runs")
    }

    let a = run(42);
    let b = run(42);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.telemetry_jsonl, b.telemetry_jsonl);
    assert!(a.money_conserved());
    assert!(a.recovery_invariant_ok);
}

#[test]
fn bank_restart_mid_run_recovers_ledger_and_conserves_money() {
    // A deterministic BankRestart in the middle of the Table-1 chaos
    // scenario: the bank is killed and rebuilt from its WAL while jobs
    // are running; the run completes and the books balance.
    let mut plan = FaultPlan::new();
    plan.host_crash(SimTime::from_secs(20 * 60), 0)
        .host_recover(SimTime::from_secs(80 * 60), 0)
        .bank_restart(SimTime::from_secs(50 * 60));
    let r = Scenario::builder()
        .seed(7)
        .hosts(6)
        .chunk_minutes(15.0)
        .deadline_minutes(240)
        .horizon_hours(12)
        .equal_users(4, 120.0)
        .faults(plan)
        .run()
        .expect("restart scenario runs");
    assert!(r.all_done(), "jobs must survive a bank restart: {:?}", r.users);
    assert!(r.money_conserved());
    assert!(r.recovery_invariant_ok);
    assert!(r.telemetry_jsonl.contains("\"fault.bank_restart\""));
    assert_eq!(r.metrics.counters["ledger.recoveries"], 1);
    assert_eq!(r.metrics.counters["ledger.audit_failures"], 0);
}
