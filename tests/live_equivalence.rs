//! The service boundary adds concurrency, not behaviour: a [`LiveMarket`]
//! (threads + channels) and the in-process auctioneers produce identical
//! results for identical schedules (`DESIGN.md` §7).

use gridmarket::tycoon::{
    Auctioneer, Credits, HostId, HostSpec, LiveMarket, UserId,
};

/// A deterministic schedule of market operations.
#[derive(Clone, Copy)]
enum Op {
    Place { user: u32, host: u32, rate: f64, escrow: i64 },
    Cancel { idx: usize },
    TopUp { idx: usize, extra: i64 },
    Rate { idx: usize, rate: f64 },
    Tick,
}

fn schedule() -> Vec<Op> {
    use Op::*;
    vec![
        Place { user: 1, host: 0, rate: 0.02, escrow: 10 },
        Place { user: 2, host: 0, rate: 0.05, escrow: 20 },
        Place { user: 1, host: 1, rate: 0.01, escrow: 5 },
        Tick,
        TopUp { idx: 0, extra: 7 },
        Place { user: 3, host: 1, rate: 0.04, escrow: 50 },
        Tick,
        Rate { idx: 1, rate: 0.09 },
        Tick,
        Cancel { idx: 2 },
        Tick,
        Tick,
    ]
}

#[test]
fn live_and_local_markets_are_equivalent() {
    let hosts: Vec<HostSpec> = (0..2).map(HostSpec::testbed).collect();

    // --- local
    let mut local: Vec<Auctioneer> = hosts.iter().cloned().map(Auctioneer::new).collect();
    let mut local_handles = Vec::new();
    let mut local_allocs = Vec::new();
    for op in schedule() {
        match op {
            Op::Place { user, host, rate, escrow } => {
                let h = local[host as usize].place_bid(
                    UserId(user),
                    rate,
                    Credits::from_whole(escrow),
                );
                local_handles.push((host, h));
            }
            Op::Cancel { idx } => {
                let (host, h) = local_handles[idx];
                let _ = local[host as usize].cancel_bid(h);
            }
            Op::TopUp { idx, extra } => {
                let (host, h) = local_handles[idx];
                let _ = local[host as usize].top_up(h, Credits::from_whole(extra));
            }
            Op::Rate { idx, rate } => {
                let (host, h) = local_handles[idx];
                let _ = local[host as usize].update_rate(h, rate);
            }
            Op::Tick => {
                for a in local.iter_mut() {
                    local_allocs.push(a.allocate(10.0));
                }
            }
        }
    }

    // --- live (same schedule through the service boundary)
    let live = LiveMarket::spawn(b"equiv", hosts);
    let clients: Vec<_> = (0..2)
        .map(|i| live.auctioneer(HostId(i)).unwrap())
        .collect();
    let mut live_handles = Vec::new();
    let mut live_allocs = Vec::new();
    for op in schedule() {
        match op {
            Op::Place { user, host, rate, escrow } => {
                let h = clients[host as usize].place_bid(
                    UserId(user),
                    rate,
                    Credits::from_whole(escrow),
                );
                live_handles.push((host, h));
            }
            Op::Cancel { idx } => {
                let (host, h) = live_handles[idx];
                let _ = clients[host as usize].cancel_bid(h);
            }
            Op::TopUp { idx, extra } => {
                let (host, h) = live_handles[idx];
                let _ = clients[host as usize].top_up(h, Credits::from_whole(extra));
            }
            Op::Rate { idx, rate } => {
                let (host, h) = live_handles[idx];
                let _ = clients[host as usize].update_rate(h, rate);
            }
            Op::Tick => {
                for (_, allocs) in live.tick(10.0) {
                    live_allocs.push(allocs);
                }
            }
        }
    }

    assert_eq!(local_handles.len(), live_handles.len());
    assert_eq!(
        local_allocs, live_allocs,
        "service boundary changed allocation results"
    );

    // Income matches host by host.
    let local_earned: Vec<Credits> = local.iter().map(|a| a.earned()).collect();
    let live_earned: Vec<Credits> = (0..2)
        .map(|i| live.auctioneer(HostId(i)).unwrap().earned())
        .collect();
    assert_eq!(local_earned, live_earned);
    live.shutdown();
}

#[test]
fn live_market_survives_many_concurrent_agents() {
    let hosts: Vec<HostSpec> = (0..3).map(HostSpec::testbed).collect();
    let live = std::sync::Arc::new(LiveMarket::spawn(b"stress", hosts));
    let threads: Vec<_> = (0..6u32)
        .map(|uid| {
            let live = std::sync::Arc::clone(&live);
            std::thread::spawn(move || {
                for round in 0..20 {
                    for host in live.host_ids() {
                        let c = live.auctioneer(host).unwrap();
                        let h = c.place_bid(
                            UserId(uid),
                            0.001 + round as f64 * 1e-4,
                            Credits::from_whole(1),
                        );
                        if round % 2 == 0 {
                            c.cancel_bid(h);
                        }
                    }
                }
            })
        })
        .collect();
    // Tick concurrently with the agents.
    for _ in 0..10 {
        let _ = live.tick(1.0);
    }
    for t in threads {
        t.join().unwrap();
    }
    // Books still balance: every auctioneer's escrow + earned is finite
    // and non-negative (detailed conservation is covered in unit tests;
    // this is a race-freedom smoke test under real concurrency).
    for host in live.host_ids() {
        let c = live.auctioneer(host).unwrap();
        assert!(c.earned() >= Credits::ZERO);
        let allocs = c.allocate(1.0);
        for a in &allocs {
            assert!(a.share >= 0.0 && a.share <= 1.0);
        }
    }
}
