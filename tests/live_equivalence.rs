//! The service boundary adds concurrency, not behaviour: a [`LiveMarket`]
//! (threads + channels) and the in-process auctioneers produce identical
//! results for identical schedules (`DESIGN.md` §7), and when an
//! auctioneer service dies the live market degrades exactly like the
//! deterministic [`Market`] with the same host crashed (`DESIGN.md` §8).

use gridmarket::des::SimTime;
use gridmarket::tycoon::{
    Auctioneer, Credits, HostId, HostSpec, LiveMarket, Market, UserId,
};
use std::time::Duration;

/// A deterministic schedule of market operations.
#[derive(Clone, Copy)]
enum Op {
    Place { user: u32, host: u32, rate: f64, escrow: i64 },
    Cancel { idx: usize },
    TopUp { idx: usize, extra: i64 },
    Rate { idx: usize, rate: f64 },
    Tick,
}

fn schedule() -> Vec<Op> {
    use Op::*;
    vec![
        Place { user: 1, host: 0, rate: 0.02, escrow: 10 },
        Place { user: 2, host: 0, rate: 0.05, escrow: 20 },
        Place { user: 1, host: 1, rate: 0.01, escrow: 5 },
        Tick,
        TopUp { idx: 0, extra: 7 },
        Place { user: 3, host: 1, rate: 0.04, escrow: 50 },
        Tick,
        Rate { idx: 1, rate: 0.09 },
        Tick,
        Cancel { idx: 2 },
        Tick,
        Tick,
    ]
}

#[test]
fn live_and_local_markets_are_equivalent() {
    let hosts: Vec<HostSpec> = (0..2).map(HostSpec::testbed).collect();

    // --- local
    let mut local: Vec<Auctioneer> = hosts.iter().cloned().map(Auctioneer::new).collect();
    let mut local_handles = Vec::new();
    let mut local_allocs = Vec::new();
    for op in schedule() {
        match op {
            Op::Place { user, host, rate, escrow } => {
                let h = local[host as usize].place_bid(
                    UserId(user),
                    rate,
                    Credits::from_whole(escrow),
                );
                local_handles.push((host, h));
            }
            Op::Cancel { idx } => {
                let (host, h) = local_handles[idx];
                let _ = local[host as usize].cancel_bid(h);
            }
            Op::TopUp { idx, extra } => {
                let (host, h) = local_handles[idx];
                let _ = local[host as usize].top_up(h, Credits::from_whole(extra));
            }
            Op::Rate { idx, rate } => {
                let (host, h) = local_handles[idx];
                let _ = local[host as usize].update_rate(h, rate);
            }
            Op::Tick => {
                for a in local.iter_mut() {
                    local_allocs.push(a.allocate(10.0));
                }
            }
        }
    }

    // --- live (same schedule through the service boundary)
    let live = LiveMarket::spawn(b"equiv", hosts);
    let clients: Vec<_> = (0..2)
        .map(|i| live.auctioneer(HostId(i)).unwrap())
        .collect();
    let mut live_handles = Vec::new();
    let mut live_allocs = Vec::new();
    for op in schedule() {
        match op {
            Op::Place { user, host, rate, escrow } => {
                let h = clients[host as usize]
                    .place_bid(UserId(user), rate, Credits::from_whole(escrow))
                    .expect("live place_bid");
                live_handles.push((host, h));
            }
            Op::Cancel { idx } => {
                let (host, h) = live_handles[idx];
                let _ = clients[host as usize].cancel_bid(h).expect("live cancel");
            }
            Op::TopUp { idx, extra } => {
                let (host, h) = live_handles[idx];
                let _ = clients[host as usize]
                    .top_up(h, Credits::from_whole(extra))
                    .expect("live top_up");
            }
            Op::Rate { idx, rate } => {
                let (host, h) = live_handles[idx];
                let _ = clients[host as usize]
                    .update_rate(h, rate)
                    .expect("live update_rate");
            }
            Op::Tick => {
                for (_, allocs) in live.tick(10.0) {
                    live_allocs.push(allocs);
                }
            }
        }
    }

    assert_eq!(local_handles.len(), live_handles.len());
    assert_eq!(
        local_allocs, live_allocs,
        "service boundary changed allocation results"
    );

    // Income matches host by host.
    let local_earned: Vec<Credits> = local.iter().map(|a| a.earned()).collect();
    let live_earned: Vec<Credits> = (0..2)
        .map(|i| live.auctioneer(HostId(i)).unwrap().earned().expect("earned"))
        .collect();
    assert_eq!(local_earned, live_earned);
    live.shutdown();
}

#[test]
fn dead_auctioneer_degrades_like_a_crashed_host() {
    let hosts: Vec<HostSpec> = (0..2).map(HostSpec::testbed).collect();

    // --- live market: bids on both hosts, then host 1's service dies.
    let mut live = LiveMarket::spawn(b"degrade", hosts.clone());
    let c0 = live.auctioneer(HostId(0)).unwrap();
    let c1 = live.auctioneer(HostId(1)).unwrap();
    c0.place_bid(UserId(1), 0.02, Credits::from_whole(40)).unwrap();
    c0.place_bid(UserId(2), 0.06, Credits::from_whole(40)).unwrap();
    c1.place_bid(UserId(1), 0.03, Credits::from_whole(40)).unwrap();
    assert!(live.kill_auctioneer(HostId(1)));

    // Calls against the dead host fail fast with a typed error.
    assert!(c1.quote(UserId(1)).is_err(), "dead host must error, not hang");

    // The scatter-gather tick degrades: the dead host is skipped, not
    // waited on, and is reported via `dead_hosts`.
    let t0 = std::time::Instant::now();
    let live_allocs = live.tick(10.0);
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "tick must not hang on a dead auctioneer"
    );
    assert_eq!(live.dead_hosts(), vec![HostId(1)]);

    // --- deterministic market: same bids, same host crashed.
    let mut market = Market::new(b"degrade");
    for spec in hosts {
        market.add_host(spec);
    }
    market.set_interval_secs(10.0);
    let key = gm_crypto::Keypair::from_seed(b"degrade-user").public;
    let u1 = market.bank_mut().open_account(key, "u1");
    let u2 = market.bank_mut().open_account(key, "u2");
    market.bank_mut().mint(u1, Credits::from_whole(1000)).unwrap();
    market.bank_mut().mint(u2, Credits::from_whole(1000)).unwrap();
    market
        .place_funded_bid(UserId(1), u1, HostId(0), 0.02, Credits::from_whole(40))
        .unwrap();
    market
        .place_funded_bid(UserId(2), u2, HostId(0), 0.06, Credits::from_whole(40))
        .unwrap();
    market
        .place_funded_bid(UserId(1), u1, HostId(1), 0.03, Credits::from_whole(40))
        .unwrap();
    market.crash_host(HostId(1)).unwrap();
    let det_allocs = market.tick(SimTime::from_secs(10));

    // Both sides report exactly the surviving host's allocations.
    assert_eq!(
        live_allocs, det_allocs,
        "degraded live tick diverged from the crashed deterministic market"
    );
    assert_eq!(live_allocs.len(), 1);
    assert_eq!(live_allocs[0].0, HostId(0));
    live.shutdown();
}

#[test]
fn live_market_survives_many_concurrent_agents() {
    let hosts: Vec<HostSpec> = (0..3).map(HostSpec::testbed).collect();
    let live = std::sync::Arc::new(LiveMarket::spawn(b"stress", hosts));
    let threads: Vec<_> = (0..6u32)
        .map(|uid| {
            let live = std::sync::Arc::clone(&live);
            std::thread::spawn(move || {
                for round in 0..20 {
                    for host in live.host_ids() {
                        let c = live.auctioneer(host).unwrap();
                        let h = c
                            .place_bid(
                                UserId(uid),
                                0.001 + round as f64 * 1e-4,
                                Credits::from_whole(1),
                            )
                            .expect("stress place_bid");
                        if round % 2 == 0 {
                            let _ = c.cancel_bid(h).expect("stress cancel");
                        }
                    }
                }
            })
        })
        .collect();
    // Tick concurrently with the agents.
    for _ in 0..10 {
        let _ = live.tick(1.0);
    }
    for t in threads {
        t.join().unwrap();
    }
    // Books still balance: every auctioneer's escrow + earned is finite
    // and non-negative (detailed conservation is covered in unit tests;
    // this is a race-freedom smoke test under real concurrency).
    for host in live.host_ids() {
        let c = live.auctioneer(host).unwrap();
        assert!(c.earned().expect("earned") >= Credits::ZERO);
        let allocs = c.allocate(1.0).expect("allocate");
        for a in &allocs {
            assert!(a.share >= 0.0 && a.share <= 1.0);
        }
    }
}
