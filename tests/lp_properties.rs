//! Property tests for the pure-rust LP solver and the VCG pricing layer
//! (DESIGN.md §14), via the in-repo `gm_des::check` harness.
//!
//! Coverage:
//! * simplex: primal feasibility and weak/strong duality on random
//!   feasible bounded instances; graceful `Infeasible` / `Unbounded`
//!   outcomes (never a panic) on randomly broken ones; determinism.
//! * auction algorithm: optimal totals cross-validated against the
//!   simplex on random assignment problems (the assignment polytope is
//!   integral, so the LP relaxation's optimum equals the auction's).
//! * VCG: non-negative payments, individual rationality, and
//!   truthfulness on sampled misreports (scaling your value curve never
//!   beats reporting it straight).

use gm_des::check::{check, Gen};
use gm_numeric::{assignment_auction, Cmp, Lp, LpOutcome};
use gm_optimal::{vcg, SlaCurve, WelfareApp, WelfareProgram};

/// A constraint row as handed to `Lp::constrain`: sparse terms + rhs.
type LeRow = (Vec<(usize, f64)>, f64);

/// Random feasible bounded max-LP: non-negative objective, per-variable
/// upper bounds, plus random non-negative-coefficient `Le` rows (the
/// origin is always feasible; the bounds keep it bounded).
fn random_feasible(g: &mut Gen) -> (Lp, Vec<LeRow>) {
    let vars = g.usize_in(1, 6);
    let mut lp = Lp::new(vars);
    for v in 0..vars {
        lp.maximize(v, g.f64_in(0.0, 10.0));
    }
    let mut rows = Vec::new();
    for v in 0..vars {
        let bound = g.f64_in(0.5, 20.0);
        lp.constrain(&[(v, 1.0)], Cmp::Le, bound);
        rows.push((vec![(v, 1.0)], bound));
    }
    for _ in 0..g.usize_in(0, 4) {
        let mut terms: Vec<(usize, f64)> = Vec::new();
        for v in 0..vars {
            if g.ratio(2, 3) {
                terms.push((v, g.f64_in(0.0, 3.0)));
            }
        }
        if terms.is_empty() {
            continue;
        }
        let rhs = g.f64_in(1.0, 30.0);
        lp.constrain(&terms, Cmp::Le, rhs);
        rows.push((terms, rhs));
    }
    (lp, rows)
}

#[test]
fn simplex_satisfies_primal_feasibility_and_strong_duality() {
    check("lp-duality", 300, |g| {
        let (lp, rows) = random_feasible(g);
        let sol = match lp.solve() {
            LpOutcome::Optimal(s) => s,
            other => panic!("feasible bounded LP must solve, got {other:?}"),
        };
        // Primal feasibility: every stored Le row holds.
        for (terms, rhs) in &rows {
            let lhs: f64 = terms.iter().map(|&(v, c)| c * sol.x[v]).sum();
            assert!(lhs <= rhs + 1e-6, "violated row: {lhs} > {rhs}");
        }
        assert!(sol.x.iter().all(|&x| x >= -1e-9), "negative primal var");
        // Strong duality: objective == Σ duals·b, with Le duals >= 0 in
        // a max problem (weak duality is the ≥/≤ pair of the same sum).
        // Every constraint of this instance is one of our stored rows,
        // in insertion order, so `rows` doubles as the rhs vector.
        let dual_obj: f64 = sol
            .duals
            .iter()
            .zip(rows.iter().map(|(_, b)| *b))
            .map(|(y, b)| y * b)
            .sum();
        assert!(
            (sol.objective - dual_obj).abs() <= 1e-6 * (1.0 + sol.objective.abs()),
            "duality gap: primal {} vs dual {}",
            sol.objective,
            dual_obj
        );
        assert!(sol.duals.iter().all(|&y| y >= -1e-9), "negative Le dual");
    });
}

#[test]
fn simplex_classifies_broken_instances_without_panicking() {
    check("lp-broken", 200, |g| {
        // Unbounded: a free direction with positive objective.
        let mut lp = Lp::new(2);
        lp.maximize(0, g.f64_in(0.1, 5.0));
        lp.constrain(&[(1, 1.0)], Cmp::Le, g.f64_in(0.0, 5.0));
        assert!(matches!(lp.solve(), LpOutcome::Unbounded), "must detect unbounded");

        // Infeasible: x <= a and x >= a + gap.
        let a = g.f64_in(0.0, 5.0);
        let mut lp = Lp::new(1);
        lp.maximize(0, 1.0);
        lp.constrain(&[(0, 1.0)], Cmp::Le, a);
        lp.constrain(&[(0, 1.0)], Cmp::Ge, a + g.f64_in(0.5, 4.0));
        assert!(matches!(lp.solve(), LpOutcome::Infeasible), "must detect infeasible");

        // Degenerate: duplicated and redundant rows still solve.
        let (mut lp, _) = random_feasible(g);
        let b = g.f64_in(0.5, 20.0);
        for _ in 0..3 {
            lp.constrain(&[(0, 1.0)], Cmp::Le, b);
        }
        assert!(
            matches!(lp.solve(), LpOutcome::Optimal(_)),
            "degenerate rows must not break the solve"
        );
    });
}

#[test]
fn simplex_is_deterministic_across_repeat_solves() {
    check("lp-determinism", 100, |g| {
        let (a, _) = random_feasible(g);
        let sa = a.solve();
        let sb = a.solve();
        let fp = |o: &LpOutcome| match o {
            LpOutcome::Optimal(s) => Some((
                s.objective.to_bits(),
                s.x.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            )),
            _ => None,
        };
        assert_eq!(fp(&sa), fp(&sb), "same instance must solve bit-identically");
    });
}

#[test]
fn auction_matches_the_simplex_on_random_assignments() {
    check("auction-vs-simplex", 150, |g| {
        let n = g.usize_in(1, 5);
        // Integer weights: the auction's ε-scaling is then exact.
        let w: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..n).map(|_| g.u64_in(0, 20) as f64).collect())
            .collect();
        let auction = assignment_auction(&w, 1e-6);

        // The LP relaxation over the (integral) assignment polytope.
        let mut lp = Lp::new(n * n);
        for (i, row_w) in w.iter().enumerate() {
            for (j, &wij) in row_w.iter().enumerate() {
                lp.maximize(i * n + j, wij);
            }
            let row: Vec<(usize, f64)> = (0..n).map(|j| (i * n + j, 1.0)).collect();
            lp.constrain(&row, Cmp::Le, 1.0);
            let col: Vec<(usize, f64)> = (0..n).map(|j| (j * n + i, 1.0)).collect();
            lp.constrain(&col, Cmp::Le, 1.0);
        }
        let sol = lp.solve().optimal().expect("assignment LP solves");
        assert!(
            (auction.total - sol.objective).abs() < 1e-6,
            "auction {} vs simplex {}",
            auction.total,
            sol.objective
        );
    });
}

/// A random concave curve: 1–3 segments with strictly decreasing slopes.
fn random_curve(g: &mut Gen) -> SlaCurve {
    let segs = g.usize_in(1, 3);
    let mut points = Vec::new();
    let mut w = 0.0;
    let mut v = 0.0;
    let mut slope = g.f64_in(1.0, 4.0);
    for _ in 0..segs {
        w += g.f64_in(5.0, 30.0);
        v = (v + slope * (w - points.last().map_or(0.0, |&(pw, _)| pw))).max(v);
        points.push((w, v));
        slope *= g.f64_in(0.2, 0.9);
    }
    SlaCurve::new(points).expect("constructed concave")
}

fn random_program(g: &mut Gen) -> (WelfareProgram, Vec<SlaCurve>) {
    let hosts = g.usize_in(1, 4);
    let caps: Vec<f64> = (0..hosts).map(|_| g.f64_in(5.0, 60.0)).collect();
    let mut program = WelfareProgram::new(caps);
    let mut curves = Vec::new();
    for a in 0..g.usize_in(1, 5) {
        let curve = random_curve(g);
        let cap = g.f64_in(0.5, 1.2) * curve.total_work();
        program.add_app(WelfareApp {
            id: a as u32,
            segments: curve.remaining_segments(0.0, cap),
            cap,
        });
        curves.push(curve);
    }
    (program, curves)
}

#[test]
fn vcg_payments_are_nonnegative_and_individually_rational() {
    check("vcg-ir", 200, |g| {
        let (program, _) = random_program(g);
        let out = vcg(&program).expect("window solves");
        let mut welfare_check = 0.0;
        for r in &out.receipts {
            assert!(r.payment >= 0.0, "negative VCG payment: {}", r.payment);
            assert!(
                r.payment <= r.value + 1e-6,
                "app {} pays {} above its value {}",
                r.app,
                r.payment,
                r.value
            );
            assert!(
                r.welfare_without <= r.welfare_with + 1e-6,
                "removing an app cannot raise welfare"
            );
            welfare_check += r.value;
        }
        assert!(
            (welfare_check - out.solution.welfare).abs() <= 1e-6 * (1.0 + welfare_check.abs()),
            "welfare must decompose into per-app values"
        );
    });
}

#[test]
fn truthful_reporting_weakly_dominates_sampled_misreports() {
    check("vcg-truthful", 120, |g| {
        let (program, curves) = random_program(g);
        let truthful = vcg(&program).expect("window solves");
        let a = g.usize_in(0, curves.len() - 1);
        let true_curve = &curves[a];

        // Misreport: scale the curve's values by λ (shape-preserving, so
        // the report is still a valid concave curve).
        let lambda = *g.choose(&[0.25, 0.5, 0.8, 1.25, 2.0, 4.0]);
        let mut deviated = program.clone();
        let scaled: Vec<(f64, f64)> = program.apps()[a]
            .segments
            .iter()
            .map(|&(w, s)| (w, s * lambda))
            .collect();
        deviated.set_app_segments(a, scaled);
        let misreport = vcg(&deviated).expect("deviated window solves");

        // True utility = true value of what you were allocated, minus
        // what you were charged (charges come from the *reported* run).
        let u_truth = true_curve.value(truthful.solution.delivered[a]) - truthful.receipts[a].payment;
        let u_dev = true_curve.value(misreport.solution.delivered[a]) - misreport.receipts[a].payment;
        assert!(
            u_truth >= u_dev - 1e-6 * (1.0 + u_truth.abs()),
            "misreport λ={lambda} beats truth: {u_dev} > {u_truth} (app {a})"
        );
    });
}
