//! Overload & degraded-operation suite (`DESIGN.md` §12): the live
//! runtime under lossy links, bounded mailboxes and a mid-run bank
//! crash, and the DES market under scheduled link outages. Four angles:
//!
//! 1. A threaded soak: many clients hammer a lossy, small-mailbox,
//!    breaker-guarded bank while it is killed and recovered mid-run.
//!    Whatever the interleaving — sheds, open breakers, lost replies,
//!    duplicate deliveries — every `transfer_with_id` is applied at most
//!    once, every client-visible success really landed, the books
//!    balance, and the test terminates (no deadlock).
//! 2. Same-seed determinism: two runs of a link-outage chaos scenario on
//!    the DES path export byte-identical telemetry, and the degraded-mode
//!    price fallback visibly engages (`grid.degraded_quotes`,
//!    `grid.deferred_dispatches`).
//! 3. A property over random loss schedules via `gm_des::check`: drop /
//!    duplicate / reorder probabilities and queue bounds are drawn per
//!    case; duplicates and post-restart replays never double-apply, and
//!    the conservation auditor passes on the recovered bank.
//! 4. The replay-cache eviction contract: within the cache a duplicate
//!    transfer returns the original receipt; after eviction the durable
//!    applied-id set still refuses re-execution (`DuplicateRequest`), so
//!    eviction can cost a client its receipt but never double-moves money.

use std::collections::BTreeSet;
use std::time::Duration;

use gm_ledger::SharedJournal;
use gridmarket::des::check::{check, Gen};
use gridmarket::des::{FaultPlan, SimTime};
use gridmarket::scenario::{Scenario, ScenarioResult};
use gridmarket::tycoon::{
    BankError, ConservationAuditor, Credits, HostSpec, LiveMarket, NetConfig, ServiceError,
    ShedPolicy,
};

fn specs(n: u32) -> Vec<HostSpec> {
    (0..n).map(HostSpec::testbed).collect()
}

/// Outcome bookkeeping for one soak worker: ids the client saw succeed,
/// and ids whose outcome is unknown (timeout, disconnect, shed, breaker).
#[derive(Default)]
struct WorkerLog {
    confirmed: BTreeSet<u64>,
    unknown: BTreeSet<u64>,
}

#[test]
fn lossy_overloaded_soak_applies_each_transfer_at_most_once() {
    const WORKERS: u64 = 4;
    const PER_WORKER: u64 = 25;
    const MINT: i64 = 10_000;

    let journal = SharedJournal::new();
    let net = NetConfig::chaos(0.10, 0xC0FFEE, 4, ShedPolicy::RejectNew);
    let mut live =
        LiveMarket::spawn_durable_with_net(b"soak", specs(2), journal.clone(), net);

    let admin = live.bank();
    let key = gm_crypto::Keypair::from_seed(b"soak-user").public;
    let payer = admin.open_account(key, "payer").unwrap();
    let sink = admin.open_account(key, "sink").unwrap();
    admin.mint(payer, Credits::from_whole(MINT)).unwrap();

    // Hammer the bank from WORKERS threads; a short deadline keeps lost
    // replies cheap, bounded retries keep the test finite.
    let run_phase = |live: &LiveMarket, phase: u64| -> WorkerLog {
        let mut log = WorkerLog::default();
        let handles: Vec<_> = (0..WORKERS)
            .map(|w| {
                let bank = live
                    .bank()
                    .with_deadline(Duration::from_millis(40), 4);
                std::thread::spawn(move || {
                    let mut confirmed = BTreeSet::new();
                    let mut unknown = BTreeSet::new();
                    for i in 0..PER_WORKER {
                        let id = phase * 100_000 + w * 1_000 + i + 1;
                        match bank.transfer_with_id(id, payer, sink, Credits::from_whole(1)) {
                            Ok(_) => {
                                confirmed.insert(id);
                            }
                            // Insufficient funds etc. cannot happen here;
                            // DuplicateRequest means an earlier attempt
                            // landed without its receipt.
                            Err(ServiceError::Rejected(BankError::DuplicateRequest(_))) => {
                                confirmed.insert(id);
                            }
                            Err(_) => {
                                unknown.insert(id);
                            }
                        }
                    }
                    (confirmed, unknown)
                })
            })
            .collect();
        for h in handles {
            let (c, u) = h.join().expect("soak worker must not panic");
            log.confirmed.extend(c);
            log.unknown.extend(u);
        }
        log
    };

    // Phase 1: overload the healthy-but-lossy bank. The allocation tick
    // runs concurrently over the same lossy links and must not wedge.
    let log1 = run_phase(&live, 1);
    let _ = live.tick(10.0);

    // Crash the bank mid-run and recover it from the journal.
    live.kill_bank();
    live.restart_bank(b"soak", &journal)
        .expect("bank recovers from its journal");

    // Phase 2: fresh clients against the recovered bank, plus a re-send
    // of every unknown-outcome id from phase 1 — each either lands now
    // (first application) or is refused as a durable duplicate.
    let log2 = run_phase(&live, 2);
    let retry = live.bank().with_deadline(Duration::from_millis(40), 8);
    let mut settled_unknown = BTreeSet::new();
    for &id in &log1.unknown {
        match retry.transfer_with_id(id, payer, sink, Credits::from_whole(1)) {
            Ok(_) | Err(ServiceError::Rejected(BankError::DuplicateRequest(_))) => {
                settled_unknown.insert(id);
            }
            Err(_) => {} // still lost to the link; the audit below decides
        }
    }

    let bank = live.shutdown();

    // Exactly-once: the durable applied set holds only ids we issued,
    // each at most once (BTreeSet), and every client-confirmed id is in
    // it. Ids the clients never got an answer for may or may not have
    // landed — but only ever once.
    let applied: BTreeSet<u64> = bank.applied_request_ids().into_iter().collect();
    let issued: BTreeSet<u64> = log1
        .confirmed
        .iter()
        .chain(&log1.unknown)
        .chain(&log2.confirmed)
        .chain(&log2.unknown)
        .copied()
        .collect();
    assert!(
        applied.is_subset(&issued),
        "bank applied a request id no client issued"
    );
    for id in log1.confirmed.iter().chain(&log2.confirmed).chain(&settled_unknown) {
        assert!(applied.contains(id), "confirmed id {id} missing from applied set");
    }

    // The books must reflect the applied set exactly: one credit moved
    // per applied id, nothing created or destroyed. (The mint itself is
    // not idempotent — a lost mint reply retried means the pot can exceed
    // MINT — so the ground truth is the bank's own minted total.)
    let moved = Credits::from_whole(applied.len() as i64);
    assert_eq!(bank.total_money(), bank.total_minted(), "conservation");
    assert_eq!(
        bank.balance(sink).unwrap(),
        moved,
        "sink holds one credit per applied transfer"
    );
    assert_eq!(
        bank.balance(payer).unwrap(),
        bank.total_minted() - moved,
        "payer paid one credit per applied transfer"
    );

    // And the recovered journal audits clean end to end.
    let audit = ConservationAuditor::default().audit(&bank, Some(&journal));
    assert!(audit.ok(), "soak audit failed: {audit:?}");
}

/// A Table-1-style scenario with a host crash inside a scheduled link
/// outage: quotes must be synthesized from last-known/predicted prices,
/// re-dispatch must defer until the links return, and the run must still
/// complete deterministically.
fn link_chaos(seed: u64) -> ScenarioResult {
    let mut plan = FaultPlan::new();
    plan.link_outage(SimTime::from_secs(20 * 60), SimTime::from_secs(70 * 60))
        .host_crash(SimTime::from_secs(30 * 60), 0)
        .host_recover(SimTime::from_secs(90 * 60), 0);
    Scenario::builder()
        .seed(seed)
        .hosts(4)
        .chunk_minutes(10.0)
        .deadline_minutes(240)
        .horizon_hours(12)
        .equal_users(3, 120.0)
        .faults(plan)
        .run()
        .expect("link chaos scenario runs")
}

#[test]
fn degraded_links_defer_dispatch_and_replay_byte_identically() {
    let r = link_chaos(2006);

    // The degraded path engaged: quote batches were synthesized from the
    // price predictor and at least one re-dispatch round was deferred
    // (the host crash happened mid-outage).
    assert!(r.telemetry_jsonl.contains("\"fault.link_down\""));
    assert!(r.telemetry_jsonl.contains("\"fault.link_up\""));
    assert!(
        r.metrics.counters["grid.degraded_quotes"] > 0,
        "no degraded quote batches: {:?}",
        r.metrics.counters
    );
    assert!(
        r.metrics.counters["grid.deferred_dispatches"] > 0,
        "host crash inside the outage must defer re-dispatch"
    );

    // Deferral reconciles on recovery: the run still finishes, honestly
    // and with the books intact.
    assert!(r.all_done(), "jobs must complete after the links return: {:?}", r.users);
    assert!(r.money_conserved());
    assert!(r.recovery_invariant_ok);

    // Same seed ⇒ byte-identical telemetry, degraded mode and all.
    let again = link_chaos(2006);
    assert_eq!(r.telemetry_jsonl, again.telemetry_jsonl);
}

#[test]
fn healthy_runs_export_no_degraded_instruments() {
    // The degraded counters register lazily: a run that never loses a
    // link exports exactly the metric set it did before this layer.
    let r = Scenario::builder()
        .seed(11)
        .hosts(3)
        .chunk_minutes(10.0)
        .deadline_minutes(120)
        .horizon_hours(6)
        .equal_users(2, 80.0)
        .run()
        .expect("healthy scenario runs");
    assert!(r.all_done());
    assert!(!r.metrics.counters.contains_key("grid.degraded_quotes"));
    assert!(!r.metrics.counters.contains_key("grid.deferred_dispatches"));
    assert!(!r.telemetry_jsonl.contains("net."));
}

#[test]
fn random_loss_schedules_apply_transfers_exactly_once() {
    check("overload_transfer", 6, |g: &mut Gen| {
        const IDS: u64 = 15;
        let p = g.usize_in(5, 25) as f64 / 100.0;
        let capacity = g.usize_in(2, 8);
        let policy = if g.usize_in(0, 1) == 0 {
            ShedPolicy::RejectNew
        } else {
            ShedPolicy::DropOldest
        };
        let net = NetConfig::chaos(p, g.u64(), capacity, policy);

        // Setup calls must survive the lossy link too: retry until they
        // land (sleeping through any open-breaker cooldown). A mint retry
        // after a lost reply can double-mint — assertions below therefore
        // trust the bank's own minted total, not the nominal amount.
        fn eventually<T>(mut f: impl FnMut() -> Result<T, ServiceError>) -> T {
            for _ in 0..200 {
                match f() {
                    Ok(v) => return v,
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
            panic!("setup call did not land in 200 attempts")
        }

        let journal = SharedJournal::new();
        let mut live =
            LiveMarket::spawn_durable_with_net(b"prop", Vec::new(), journal.clone(), net);
        let key = gm_crypto::Keypair::from_seed(b"prop-user").public;
        let bank = live.bank().with_deadline(Duration::from_millis(20), 3);
        let payer = eventually(|| bank.open_account(key, "payer"));
        let sink = eventually(|| bank.open_account(key, "sink"));
        eventually(|| bank.mint(payer, Credits::from_whole(1_000)));

        // First pass over the lossy link, then a full duplicate pass: the
        // replay cache (or the durable set) must absorb every re-send.
        for id in 1..=IDS {
            let _ = bank.transfer_with_id(id, payer, sink, Credits::from_whole(1));
        }
        for id in 1..=IDS {
            let _ = bank.transfer_with_id(id, payer, sink, Credits::from_whole(1));
        }

        // Crash, recover, and replay everything once more — now against
        // the durable applied set only (the outcome cache died).
        live.kill_bank();
        live.restart_bank(b"prop", &journal).expect("recovery");
        let fresh = live.bank().with_deadline(Duration::from_millis(20), 3);
        for id in 1..=IDS {
            let _ = fresh.transfer_with_id(id, payer, sink, Credits::from_whole(1));
        }

        let bank = live.shutdown();
        let applied: BTreeSet<u64> = bank.applied_request_ids().into_iter().collect();
        assert!(
            applied.iter().all(|id| (1..=IDS).contains(id)),
            "unknown id applied: {applied:?}"
        );
        let moved = Credits::from_whole(applied.len() as i64);
        assert_eq!(bank.balance(sink).unwrap(), moved, "sink vs applied set");
        assert_eq!(bank.balance(payer).unwrap(), bank.total_minted() - moved);
        assert_eq!(bank.total_money(), bank.total_minted(), "conservation");
        let audit = ConservationAuditor::default().audit(&bank, Some(&journal));
        assert!(audit.ok(), "audit failed: {audit:?}");
    });
}

#[test]
fn replay_cache_eviction_falls_back_to_durable_duplicate_rejection() {
    // Tiny volatile cache (2 outcomes) over a perfect link: a duplicate
    // inside the cache replays the original receipt byte-for-byte; a
    // duplicate after eviction is refused by the durable applied set —
    // the receipt is gone, but the money can never move twice.
    let net = NetConfig {
        replay_cache: 2,
        ..NetConfig::default()
    };
    let journal = SharedJournal::new();
    let live = LiveMarket::spawn_durable_with_net(b"evict", Vec::new(), journal, net);
    let key = gm_crypto::Keypair::from_seed(b"evict-user").public;
    let bank = live.bank();
    let payer = bank.open_account(key, "payer").unwrap();
    let sink = bank.open_account(key, "sink").unwrap();
    bank.mint(payer, Credits::from_whole(100)).unwrap();

    let first = bank
        .transfer_with_id(1, payer, sink, Credits::from_whole(10))
        .unwrap();

    // Still cached: the duplicate gets the original receipt.
    let replay = bank
        .transfer_with_id(1, payer, sink, Credits::from_whole(10))
        .unwrap();
    assert_eq!(first, replay);
    assert_eq!(bank.balance(payer).unwrap(), Credits::from_whole(90));

    // Evict id 1 from the 2-slot cache with two newer transfers.
    bank.transfer_with_id(2, payer, sink, Credits::from_whole(1)).unwrap();
    bank.transfer_with_id(3, payer, sink, Credits::from_whole(1)).unwrap();

    // Post-eviction duplicate: refused, not re-executed.
    match bank.transfer_with_id(1, payer, sink, Credits::from_whole(10)) {
        Err(ServiceError::Rejected(BankError::DuplicateRequest(1))) => {}
        other => panic!("evicted duplicate must be refused, got {other:?}"),
    }
    assert_eq!(
        bank.balance(payer).unwrap(),
        Credits::from_whole(88),
        "no double debit after eviction"
    );

    let bank = live.shutdown();
    assert_eq!(bank.total_money(), bank.total_minted());
}
