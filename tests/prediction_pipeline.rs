//! Cross-crate prediction pipeline: market trace → §4 models.

use gm_experiments::pricegen::{generate, PriceGenConfig};
use gridmarket::numeric::stats::{RunningStats, SmoothedMoments};
use gridmarket::predict::ar::{epsilon, naive_epsilon, walk_forward, ArModel, MeanMode};
use gridmarket::predict::normal::{guaranteed_capacity, NormalPriceModel};
use gridmarket::predict::portfolio::{min_variance_portfolio, ReturnStats};
use gridmarket::predict::DualWindowDistribution;
use gridmarket::tycoon::HostId;

fn trace_prices() -> Vec<Vec<f64>> {
    let cfg = PriceGenConfig::new(3.0, 4242);
    let trace = generate(&cfg);
    trace.iter().map(|(_, s)| s.values().to_vec()).collect()
}

#[test]
fn normal_model_guarantees_are_consistent_on_market_data() {
    let prices = trace_prices();
    let models: Vec<NormalPriceModel> = prices
        .iter()
        .enumerate()
        .map(|(i, p)| NormalPriceModel::from_prices(HostId(i as u32), p, 2910.0))
        .collect();

    // Monotone in budget and guarantee on real market data.
    let budgets = [0.0005, 0.005, 0.05, 0.5];
    let mut last = 0.0;
    for b in budgets {
        let c = guaranteed_capacity(&models, b, 0.9);
        assert!(c >= last - 1e-9, "capacity not monotone at {b}");
        last = c;
    }
    let c80 = guaranteed_capacity(&models, 0.05, 0.8);
    let c99 = guaranteed_capacity(&models, 0.05, 0.99);
    assert!(c80 >= c99);
    // Never exceeds total capacity.
    assert!(last <= 2910.0 * models.len() as f64);
}

#[test]
fn ar_pipeline_beats_or_matches_naive_on_market_trace() {
    let prices = &trace_prices()[0];
    let split = prices.len() / 2;
    let (train, validate) = prices.split_at(split);
    let horizon = 10;

    // Model selection on a held-out tail of the training interval, the
    // way a real forecaster would pick the smoothing penalty.
    let dev_split = train.len() * 3 / 4;
    let (fit, dev) = train.split_at(dev_split);
    let lambdas = [0.0, 10.0, gridmarket::numeric::spline::lambda_for_window(6)];
    let best = lambdas
        .iter()
        .filter_map(|&l| {
            let m = ArModel::fit(fit, 6, l)?.with_mean_mode(MeanMode::Local(30));
            let (p, me) = walk_forward(&m, fit, dev, horizon);
            if p.is_empty() {
                return None;
            }
            Some((l, epsilon(&p, &me)))
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));

    if let Some((lambda, _)) = best {
        let model = ArModel::fit(train, 6, lambda)
            .expect("refit")
            .with_mean_mode(MeanMode::Local(30));
        let (preds, meas) = walk_forward(&model, train, validate, horizon);
        let e_ar = epsilon(&preds, &meas);
        let e_naive = naive_epsilon(validate, horizon);
        assert!(e_ar.is_finite() && e_naive.is_finite());
        assert!(
            e_ar < e_naive * 1.25,
            "AR ε {e_ar:.4} (λ={lambda}) should be near naive {e_naive:.4}"
        );

        // The telemetry view of the same evaluation: per-model error
        // histograms and ε gauges in the shared registry (DESIGN.md §9).
        let registry = gridmarket::telemetry::Registry::new();
        let mut tracker = gridmarket::predict::PredictionTracker::new(&registry);
        tracker.record_batch("ar6", &preds, &meas);
        tracker.set_epsilon("ar6", e_ar);
        tracker.set_epsilon("naive", e_naive);
        let snap = registry.snapshot();
        assert_eq!(
            snap.histograms["predict.error.ar6"].count,
            preds.len() as u64
        );
        assert_eq!(snap.gauges["predict.epsilon.ar6"], e_ar);
        assert_eq!(snap.counters["predict.samples"], preds.len() as u64);
        let mean_err = snap.histograms["predict.error.ar6"].mean();
        assert!(mean_err > 0.0 && mean_err.is_finite());
    }
}

#[test]
fn portfolio_on_market_returns_is_valid() {
    let prices = trace_prices();
    let returns: Vec<Vec<f64>> = prices
        .iter()
        .map(|s| s.iter().map(|p| 1.0 / p.max(1e-6)).collect())
        .collect();
    let stats = ReturnStats::estimate(&returns);
    if let Some(w) = min_variance_portfolio(&stats) {
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        // Its variance really is minimal vs equal share.
        let eq = vec![1.0 / w.len() as f64; w.len()];
        assert!(stats.variance_of(&w) <= stats.variance_of(&eq) + 1e-9);
    }
}

#[test]
fn windowed_stats_track_market_trace() {
    let prices = &trace_prices()[0];
    // Smoothed moments over a short window react to recent load.
    let mut short = SmoothedMoments::new(10);
    let mut long = SmoothedMoments::new(1000);
    let mut exact = RunningStats::new();
    for &p in prices {
        short.push(p);
        long.push(p);
        exact.push(p);
    }
    // Long-window smoothed mean approximates the exact mean.
    let sm = long.mean().unwrap();
    let em = exact.mean();
    assert!(
        (sm - em).abs() < em.abs() * 0.8 + 1e-6,
        "long window {sm} vs exact {em}"
    );
    // Short window tracks the last samples more closely than the long one.
    let tail_mean: f64 = prices[prices.len() - 10..].iter().sum::<f64>() / 10.0;
    assert!((short.mean().unwrap() - tail_mean).abs() <= (long.mean().unwrap() - tail_mean).abs() + 1e-6);

    // The dual-window distribution remains a distribution throughout.
    let mut dw = DualWindowDistribution::new(60, 8, 1e-4);
    for &p in prices {
        dw.add(p);
        let s: f64 = dw.proportions().iter().sum();
        assert!((s - 1.0).abs() < 1e-9 || s == 0.0);
    }
}

#[test]
fn price_models_are_deterministic_across_runs() {
    let a = trace_prices();
    let b = trace_prices();
    assert_eq!(a, b, "trace generation must be deterministic");
}
