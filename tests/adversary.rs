//! Adversarial economy suite (DESIGN.md §16): the market's books under
//! strategic attack. Two angles:
//!
//! 1. A property over *random* attack worlds — every `gm-adversary`
//!    bidder strategy, guard on and off, random chaos schedules, and a
//!    bank kill/recover (`BankRestart`) forced into the middle of the
//!    attack window — whatever the cohort does, the conservation
//!    residual is exactly zero: Σbalances == minted as fixed-point
//!    `Credits`, not approximately. Failing cases print the replay seed
//!    via `gm_des::check`.
//! 2. The false-positive gate: on the honest chaos workload the guard's
//!    thresholds are never reached — no strikes, no quarantines, and the
//!    lazy `market.guard.*` counters never even register, so honest
//!    telemetry exports stay byte-identical to a guard-less build.

use gm_adversary::{AttackContext, AttackKind};
use gm_bio::workload::BioWorkload;
use gridmarket::des::check::{check, Gen};
use gridmarket::des::rng::Pcg32;
use gridmarket::des::{FaultPlan, SimDuration, SimTime};
use gridmarket::grid::{AgentConfig, JobManager, VmConfig};
use gridmarket::sched::{JobRequest, PolicyDriver, RunResult};
use gridmarket::telemetry::{metrics_jsonl, ManualClock, Registry};
use gridmarket::tycoon::{GuardConfig, HostSpec, Market, UserId};
use gridmarket::{ChaosConfig, TycoonPolicy};

/// The chaos world the attacks run in: the default chaos distribution
/// plus two seeded cohort arrivals, mirroring the attack matrix.
fn attack_cfg() -> ChaosConfig {
    ChaosConfig {
        adversary_arrivals: 2,
        ..ChaosConfig::default()
    }
}

/// The honest stream the matrix uses (same stagger, work, budgets).
fn honest_stream(cfg: &ChaosConfig) -> Vec<JobRequest> {
    let workload = BioWorkload {
        subjobs: cfg.subjobs,
        chunk_minutes: cfg.chunk_minutes,
        deadline_minutes: cfg.deadline_minutes,
    };
    (0..cfg.users)
        .map(|i| JobRequest {
            id: i,
            user: UserId(i + 1),
            subjobs: cfg.subjobs,
            work_per_subjob: workload.work_mhz_secs_per_subjob(),
            arrival: SimTime::ZERO + SimDuration::from_secs(30 * (u64::from(i) + 1)),
            budget: cfg.funding,
            deadline_secs: cfg.deadline_minutes as f64 * 60.0,
        })
        .collect()
}

/// The strategic cohort for `(kind, seed)`, timed against the honest
/// busy window exactly as the attack matrix times it.
fn hostile_stream(kind: AttackKind, seed: u64, cfg: &ChaosConfig, aggression: f64) -> Vec<JobRequest> {
    let plan = FaultPlan::generate(seed, cfg.fault_gen());
    let workload = BioWorkload {
        subjobs: cfg.subjobs,
        chunk_minutes: cfg.chunk_minutes,
        deadline_minutes: cfg.deadline_minutes,
    };
    let waves = (cfg.users * cfg.subjobs).div_ceil(cfg.hosts.max(1));
    let ctx = AttackContext {
        hosts: cfg.hosts,
        honest_users: cfg.users,
        honest_funding: cfg.funding,
        honest_deadline_secs: cfg.deadline_minutes as f64 * 60.0,
        honest_makespan_secs: f64::from(waves) * cfg.chunk_minutes * 60.0,
        work_per_subjob: workload.work_mhz_secs_per_subjob(),
        subjobs: cfg.subjobs,
        horizon: SimTime::ZERO + SimDuration::from_hours(cfg.horizon_hours),
        arrivals: AttackContext::arrivals_from(&plan),
        job_id_base: cfg.users,
        aggression,
    };
    kind.strategy().requests(&ctx, &mut Pcg32::seed_from_u64(seed ^ 0xA77A_C0DE))
}

/// Drive the tycoon market (with `guard`) through the honest stream plus
/// one hostile cohort under `plan`, returning the policy for inspection.
fn attacked_run(
    kind: AttackKind,
    guard: GuardConfig,
    seed: u64,
    cfg: &ChaosConfig,
    plan: FaultPlan,
    registry: &Registry,
) -> (TycoonPolicy, RunResult) {
    let hosts: Vec<HostSpec> =
        gridmarket::scenario::jittered_hosts(seed, cfg.hosts, cfg.heterogeneity);
    let clock = ManualClock::new();
    let mut market = Market::new(&seed.to_be_bytes());
    market.set_interval_secs(10.0);
    market.set_guard(guard);
    market.attach_telemetry(registry, std::sync::Arc::new(clock.clone()));
    // A durable WAL so `BankRestart` faults do a real kill + journal
    // recovery instead of degrading to a bank-restore.
    market.attach_ledger(gm_ledger::SharedJournal::default());
    for h in &hosts {
        market.add_host(h.clone());
    }
    let jm = JobManager::new(&mut market, AgentConfig::default(), VmConfig::default());
    let mut policy = TycoonPolicy::new(market, jm).with_clock(clock);

    let mut jobs = honest_stream(cfg);
    jobs.extend(hostile_stream(kind, seed, cfg, 8.0));
    let r = PolicyDriver::new(hosts, 10.0)
        .horizon(SimTime::ZERO + SimDuration::from_hours(cfg.horizon_hours))
        .faults(plan)
        .with_registry(registry)
        .run(&mut policy, &jobs)
        .expect("valid attack job stream");
    (policy, r)
}

#[test]
fn every_attack_strategy_conserves_money_even_through_a_mid_attack_bank_restart() {
    check("adversary_conservation", 4, |g: &mut Gen| {
        let seed = g.u64();
        let cfg = attack_cfg();
        // Guard on and off alternate across cases: conservation is a
        // *market* invariant, not something the defenses provide.
        let guard = if g.bool() {
            GuardConfig::default()
        } else {
            GuardConfig::disabled()
        };
        for kind in AttackKind::ALL {
            // The seed's own chaos schedule, plus a bank kill/recover
            // forced into the attack window itself: the first cohort
            // arrival is at most ~25 min in, and walls persist for the
            // honest busy window, so a restart inside [arrival, +20 min)
            // lands while hostile escrow is live.
            let mut plan = FaultPlan::generate(seed, cfg.fault_gen());
            let strike = AttackContext::arrivals_from(&plan)
                .first()
                .copied()
                .unwrap_or(SimTime::from_secs(600));
            let offset = SimDuration::from_secs(g.usize_in(60, 1200) as u64);
            plan.bank_restart(strike + offset);

            let registry = Registry::new();
            let (policy, _) = attacked_run(kind, guard, seed, &cfg, plan, &registry);
            let bank = policy.market().bank();
            assert_eq!(
                bank.total_money(),
                bank.total_minted(),
                "conservation residual must be exactly zero under {} \
                 (seed {seed:#x}): held {} vs minted {}",
                kind.name(),
                bank.total_money(),
                bank.total_minted()
            );
            let audit = policy.market().audit_ledger();
            assert!(
                audit.ok(),
                "ledger audit failed under {} (seed {seed:#x}): {audit:?}",
                kind.name()
            );
            // The restart really happened mid-run: the bank was rebuilt
            // from its WAL at least once, and the rebuilt books audited
            // clean.
            let snap = registry.snapshot();
            assert!(
                snap.counters.get("ledger.recoveries").copied().unwrap_or(0) >= 1,
                "bank restart must recover the ledger under {}",
                kind.name()
            );
            assert_eq!(
                snap.counters.get("ledger.audit_failures").copied().unwrap_or(0),
                0,
                "no audit may fail under {}",
                kind.name()
            );
        }
    });
}

#[test]
fn quarantine_refunds_balance_the_books_under_the_heaviest_attacks() {
    // The defended market under the two wall-building strategies: the
    // guard quarantines mid-escrow and refunds live bids — the exact
    // path where a careless defense would mint or burn money.
    for (i, kind) in [AttackKind::BudgetHoard, AttackKind::ShillPair].into_iter().enumerate() {
        let seed = 0xDEFE_57ED + i as u64;
        let cfg = attack_cfg();
        let plan = FaultPlan::generate(seed, cfg.fault_gen());
        let registry = Registry::new();
        let (policy, _) = attacked_run(kind, GuardConfig::default(), seed, &cfg, plan, &registry);
        let quarantined = policy.market().guard().quarantined_accounts();
        assert!(
            !quarantined.is_empty(),
            "{} must trip the guard at aggression 8x",
            kind.name()
        );
        let bank = policy.market().bank();
        assert_eq!(bank.total_money(), bank.total_minted(), "refunds must conserve");
        let jsonl = metrics_jsonl(&registry.snapshot());
        assert!(jsonl.contains("\"market.guard.quarantines\""));
        assert!(jsonl.contains("\"market.guard.refunded_bids\""));
    }
}

#[test]
fn defenses_never_fire_on_the_honest_chaos_workload() {
    // False-positive gate: honest users plus an *honest-baseline* cohort
    // (peer-funded, compliant rates) through the defended market, under
    // the full chaos schedule. No strikes, no quarantines — and because
    // the guard instruments are lazy, the honest telemetry export never
    // carries a `market.guard.*` name at all.
    for seed in [11u64, 2006, 0xA77AC] {
        let cfg = attack_cfg();
        let plan = FaultPlan::generate(seed, cfg.fault_gen());
        let registry = Registry::new();
        let (policy, r) =
            attacked_run(AttackKind::Honest, GuardConfig::default(), seed, &cfg, plan, &registry);
        assert!(
            policy.market().guard().quarantined_accounts().is_empty(),
            "honest workload quarantined an account (seed {seed:#x})"
        );
        let jsonl = metrics_jsonl(&registry.snapshot());
        assert!(
            !jsonl.contains("market.guard"),
            "guard counters registered on an honest run (seed {seed:#x})"
        );
        let bank = policy.market().bank();
        assert_eq!(bank.total_money(), bank.total_minted());
        // Sanity: the run actually did work under chaos.
        assert!(!r.outcomes.is_empty());
    }
}
