//! Cross-crate integration: the full paper pipeline from grid credentials
//! to market settlement.

use gridmarket::des::{SimDuration, SimTime};
use gridmarket::grid::{
    AgentConfig, GridIdentity, JobManager, JobPhase, JobSpec, TokenError, TransferToken, VmConfig,
};
use gridmarket::scenario::{Scenario, UserSetup};
use gridmarket::tycoon::{Credits, HostSpec, Market};

/// The §3.1 security flow end-to-end: PKI identity → bank transfer →
/// token → verification → funded sub-account → execution → refund.
#[test]
fn token_lifecycle_to_settlement() {
    let mut market = Market::new(b"e2e");
    for i in 0..4 {
        market.add_host(HostSpec::testbed(i));
    }
    let mut jm = JobManager::new(&mut market, AgentConfig::default(), VmConfig::default());

    let user = GridIdentity::swegrid_user(1);
    let acct = market.bank_mut().open_account(user.public_key(), "u1");
    market.bank_mut().mint(acct, Credits::from_whole(1000)).unwrap();

    // Transfer → token bound to own DN.
    let receipt = market
        .bank_mut()
        .transfer(acct, jm.broker_account(), Credits::from_whole(200))
        .unwrap();
    let token = TransferToken::create(&user, receipt, user.dn());
    assert!(token.verify(market.bank(), jm.broker_account()).is_ok());

    // Embed in xRSL, submit, run to completion.
    let xrsl = format!(
        "&(executable=\"scan.sh\")(jobName=\"e2e\")(count=2)(cpuTime=\"60\")(runTimeEnvironment=\"BLAST\")(transferToken=\"{}\")",
        token.to_hex()
    );
    let spec = JobSpec::parse(&xrsl, 2910.0 * 300.0).unwrap();
    let id = jm.submit(&mut market, SimTime::ZERO, &spec).unwrap();

    let mut now = SimTime::ZERO;
    for _ in 0..2000 {
        jm.step(&mut market, now);
        now += SimDuration::from_secs(10);
        if jm.all_settled() {
            break;
        }
    }
    let job = jm.job(id).unwrap();
    assert_eq!(job.phase, JobPhase::Done);

    // Refund: user ends with 1000 − charged; global conservation.
    let final_balance = market.bank().balance(acct).unwrap();
    assert_eq!(final_balance, Credits::from_whole(1000) - job.charged);
    assert_eq!(market.bank().total_money(), Credits::from_whole(1000));

    // Replay of the same token is rejected.
    let err = jm.submit(&mut market, now, &spec).unwrap_err();
    match err {
        gridmarket::grid::GridError::Token(TokenError::AlreadySpent(_)) => {}
        other => panic!("expected double-spend rejection, got {other}"),
    }

    // VMs were created and can be observed through the manager.
    assert!(jm.vms().total_created() >= 1);
}

/// Determinism: identical seeds ⇒ byte-identical scenario outcomes,
/// different seeds ⇒ different market keys (and thus different traces).
#[test]
fn scenarios_are_deterministic_in_seed() {
    let build = |seed: u64| {
        Scenario::builder()
            .seed(seed)
            .hosts(5)
            .chunk_minutes(6.0)
            .deadline_minutes(45)
            .horizon_hours(4)
            .user(UserSetup::new(80.0).subjobs(3))
            .user(UserSetup::new(160.0).subjobs(3))
            .run()
            .unwrap()
    };
    let a = build(1);
    let b = build(1);
    assert_eq!(a.finished_at, b.finished_at);
    assert_eq!(a.price_trace.to_csv(), b.price_trace.to_csv());
    for (ua, ub) in a.users.iter().zip(&b.users) {
        assert_eq!(ua.charged, ub.charged);
        assert_eq!(ua.time_hours, ub.time_hours);
    }
}

/// Staggered submission: earlier users must never be locked out by later
/// ones (work conservation / no starvation of the proportional-share
/// auction — the property the paper contrasts with G-commerce in §6).
#[test]
fn no_starvation_under_heavy_contention() {
    let mut s = Scenario::builder()
        .seed(3)
        .hosts(3)
        .chunk_minutes(5.0)
        .deadline_minutes(90)
        .horizon_hours(8);
    // 6 users, 3 subjobs each on 3 dual-CPU hosts: heavy oversubscription.
    for i in 0..6 {
        s = s.user(UserSetup::new(if i % 2 == 0 { 10.0 } else { 1000.0 }).subjobs(3));
    }
    let r = s.run().unwrap();
    for u in &r.users {
        assert_eq!(
            u.completed_subjobs, u.subjobs,
            "user {} starved: {:?}",
            u.label, u.phase
        );
    }
    assert!(r.money_conserved());
}

/// The market's currency books balance through an entire noisy run with
/// dozens of jobs (pricegen exercises submissions, refunds, exhaustions).
#[test]
fn long_noisy_run_conserves_money() {
    use gm_experiments::pricegen::{generate, PriceGenConfig};
    // generate() itself asserts nothing — rebuild its market here with the
    // same config and check invariants via a scenario instead.
    let cfg = PriceGenConfig::new(2.0, 99);
    let trace = generate(&cfg);
    // Every host series exists and prices never go below the reserve.
    assert_eq!(trace.len(), cfg.hosts as usize);
    for (_, series) in trace.iter() {
        for (_, price) in series.iter() {
            assert!(price >= 1e-5 - 1e-12, "price below reserve: {price}");
            assert!(price.is_finite());
        }
    }
}

/// VM reuse across jobs of the same user on the same host (§3: "a user may
/// reuse the same virtual machine between jobs submitted on the same
/// physical host").
#[test]
fn vm_reuse_between_sequential_jobs() {
    let mut market = Market::new(b"vmreuse");
    market.add_host(HostSpec::testbed(0));
    let mut jm = JobManager::new(&mut market, AgentConfig::default(), VmConfig::default());
    let user = GridIdentity::swegrid_user(9);
    let acct = market.bank_mut().open_account(user.public_key(), "u");
    market.bank_mut().mint(acct, Credits::from_whole(10_000)).unwrap();

    let submit = |jm: &mut JobManager, market: &mut Market, now: SimTime| {
        let receipt = market
            .bank_mut()
            .transfer(acct, jm.broker_account(), Credits::from_whole(100))
            .unwrap();
        let token = TransferToken::create(&user, receipt, user.dn());
        let xrsl = format!(
            "&(executable=\"x\")(count=1)(cpuTime=\"30\")(runTimeEnvironment=\"BLAST\")(transferToken=\"{}\")",
            token.to_hex()
        );
        let spec = JobSpec::parse(&xrsl, 2910.0 * 120.0).unwrap();
        jm.submit(market, now, &spec).unwrap()
    };

    let mut now = SimTime::ZERO;
    submit(&mut jm, &mut market, now);
    for _ in 0..200 {
        jm.step(&mut market, now);
        now += SimDuration::from_secs(10);
        if jm.all_settled() {
            break;
        }
    }
    assert_eq!(jm.vms().total_created(), 1);

    // Second job, same user, same (only) host: VM must be reused.
    submit(&mut jm, &mut market, now);
    for _ in 0..200 {
        jm.step(&mut market, now);
        now += SimDuration::from_secs(10);
        if jm.all_settled() {
            break;
        }
    }
    assert_eq!(jm.vms().total_created(), 1, "VM was not reused");
    let vm = jm.vms().get(gridmarket::tycoon::HostId(0), jm.user_of_dn(user.dn()).unwrap());
    assert!(vm.unwrap().jobs_served >= 2);
}
