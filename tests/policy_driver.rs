//! Cross-policy properties of the unified scheduler core: every
//! allocator runs under the same [`PolicyDriver`], so conservation
//! invariants and regression pins can be asserted uniformly.

use gridmarket::baselines::{
    FifoBatchQueue, GCommerceMarket, JobRequest, ShareScheduler, WinnerTakesAllMarket,
};
use gridmarket::des::SimTime;
use gridmarket::grid::{AgentConfig, JobManager, VmConfig};
use gridmarket::sched::{AllocationPolicy, PolicyDriver, RunResult};
use gridmarket::tycoon::{HostSpec, Market, UserId};
use gridmarket::TycoonPolicy;

fn hosts(n: u32) -> Vec<HostSpec> {
    (0..n).map(HostSpec::testbed).collect()
}

/// Four 3-subjob jobs, 10 CPU-minutes per subjob, staggered arrivals,
/// 2:1 budget split — the standard comparison workload.
fn workload() -> Vec<JobRequest> {
    (0..4)
        .map(|i| JobRequest {
            id: i,
            user: UserId(i + 1),
            subjobs: 3,
            work_per_subjob: 10.0 * 60.0 * 2910.0,
            arrival: SimTime::from_secs(30 * (i as u64 + 1)),
            budget: if i < 2 { 100.0 } else { 400.0 },
            deadline_secs: 3600.0,
        })
        .collect()
}

fn drive(
    policy: &mut dyn AllocationPolicy,
    hosts: &[HostSpec],
    jobs: &[JobRequest],
    horizon: SimTime,
) -> RunResult {
    PolicyDriver::new(hosts.to_vec(), 10.0)
        .horizon(horizon)
        .run(policy, jobs)
        .expect("valid workload")
}

fn tycoon(seed: u64, hosts: &[HostSpec]) -> TycoonPolicy {
    let mut market = Market::new(&seed.to_be_bytes());
    market.set_interval_secs(10.0);
    for h in hosts {
        market.add_host(h.clone());
    }
    let jm = JobManager::new(&mut market, AgentConfig::default(), VmConfig::default());
    TycoonPolicy::new(market, jm)
}

/// Work conservation under *every* policy: no allocator invents
/// capacity. Each subjob needs 600 s at a full vCPU, so no job can beat
/// that bound, and the total slot-seconds consumed must fit within the
/// inventory's slot-seconds up to the last completion.
#[test]
fn no_policy_invents_capacity() {
    let inventory = hosts(3);
    let jobs = workload();
    let horizon = SimTime::from_secs(6 * 3600);
    let total_slots: f64 = inventory.iter().map(|h| h.cpus as f64).sum();
    // 4 jobs × 3 subjobs × 600 s of full-vCPU work.
    let total_slot_secs = 12.0 * 600.0;

    let mut fifo = FifoBatchQueue::default().policy();
    let mut share = ShareScheduler::default().policy();
    let mut gc = GCommerceMarket::default().policy();
    let mut wta = WinnerTakesAllMarket::default().policy();
    let mut ty = tycoon(5, &inventory);
    let policies: Vec<(&str, &mut dyn AllocationPolicy)> = vec![
        ("fifo", &mut fifo),
        ("share", &mut share),
        ("gcommerce", &mut gc),
        ("wta", &mut wta),
        ("tycoon", &mut ty),
    ];

    for (name, policy) in policies {
        let r = drive(policy, &inventory, &jobs, horizon);
        assert!(r.all_finished(), "{name}: workload must complete");
        for o in &r.outcomes {
            assert!(
                o.makespan_secs >= 600.0 - 1e-6,
                "{name}: job {} finished in {:.0}s — faster than physics",
                o.id,
                o.makespan_secs
            );
        }
        let last_done = r
            .outcomes
            .iter()
            .filter_map(|o| o.finished_at)
            .max()
            .expect("all finished")
            .since(SimTime::ZERO)
            .as_secs_f64();
        assert!(
            total_slots * last_done >= total_slot_secs - 1e-6,
            "{name}: {total_slot_secs} slot·s of work done in only {last_done:.0}s of wall clock"
        );
    }
}

/// Money conservation under the Tycoon policy: the bank's total holdings
/// equal the total ever minted once the run settles — escrows unwind,
/// charges move credits but never create or destroy them.
#[test]
fn tycoon_conserves_money_through_the_driver() {
    let inventory = hosts(3);
    let jobs = workload();
    let mut ty = tycoon(5, &inventory);
    let r = drive(&mut ty, &inventory, &jobs, SimTime::from_secs(6 * 3600));
    assert!(r.all_finished());

    let bank = ty.market().bank();
    let money = bank.total_money().as_f64();
    let minted = bank.total_minted().as_f64();
    assert!(
        (money - minted).abs() < 1e-6,
        "money not conserved: {money} in accounts vs {minted} minted"
    );
    // Charges are real and bounded by the token funding.
    for (o, j) in r.outcomes.iter().zip(&jobs) {
        assert!(o.cost > 0.0);
        assert!(o.cost <= j.budget + 1e-6, "job {} overspent its token", o.id);
    }
}

/// Regression pin: FIFO through the shared driver reproduces the exact
/// schedule of the dedicated pre-refactor `run()` loop. With 3 dual-CPU
/// hosts (6 exclusive slots) and 12 600-second subjobs arriving in 3-job
/// batches, the first two jobs run immediately and the last two queue
/// behind them.
#[test]
fn fifo_schedule_is_unchanged_by_the_driver_port() {
    let r = drive(
        &mut FifoBatchQueue::default().policy(),
        &hosts(3),
        &workload(),
        SimTime::from_secs(6 * 3600),
    );
    assert!(r.all_finished());
    assert_eq!(r.batch_makespan_secs(), 1140.0);
    let finished: Vec<u64> = r
        .outcomes
        .iter()
        .map(|o| o.finished_at.unwrap().since(SimTime::ZERO).as_secs_f64() as u64)
        .collect();
    assert_eq!(finished, vec![630, 660, 1230, 1260]);
    let makespans: Vec<f64> = r.outcomes.iter().map(|o| o.makespan_secs).collect();
    assert_eq!(makespans, vec![600.0, 600.0, 1140.0, 1140.0]);
    for o in &r.outcomes {
        assert_eq!(o.max_nodes, 3, "every job ran all subjobs concurrently");
        assert!((o.avg_nodes - 3.0).abs() < 1e-9);
    }
}

/// The driver admits in `(arrival, id)` order and reruns are
/// deterministic: identical outcomes tick for tick.
#[test]
fn driver_runs_are_deterministic() {
    let run = || {
        drive(
            &mut ShareScheduler::default().policy(),
            &hosts(2),
            &workload(),
            SimTime::from_secs(6 * 3600),
        )
    };
    let a = run();
    let b = run();
    for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(oa.finished_at, ob.finished_at);
        assert_eq!(oa.makespan_secs, ob.makespan_secs);
        assert_eq!(oa.cost, ob.cost);
    }
}

/// Jobs whose arrival lies past the horizon are reported as synthesized
/// zero outcomes rather than dropped.
#[test]
fn late_arrivals_get_zero_outcomes() {
    let mut jobs = workload();
    jobs[3].arrival = SimTime::from_secs(10 * 3600); // past the horizon
    let r = drive(
        &mut FifoBatchQueue::default().policy(),
        &hosts(3),
        &jobs,
        SimTime::from_secs(2 * 3600),
    );
    assert!(!r.all_finished());
    let late = &r.outcomes[3];
    assert_eq!(late.finished_at, None);
    assert_eq!(late.cost, 0.0);
    assert_eq!(late.max_nodes, 0);
    for o in &r.outcomes[..3] {
        assert!(o.finished_at.is_some(), "on-time jobs still complete");
    }
}
