//! Integration tests for the optimization tier (DESIGN.md §14): the
//! [`VcgSlaPolicy`] driven end-to-end through the unchanged
//! [`PolicyDriver`], under generated chaos fault plans, held to the
//! same invariants as the Tycoon stack — exact money conservation,
//! same-seed byte determinism, and welfare no worse than any baseline
//! on the shared SLA workload.

use gm_core::{JobRequest, PolicyDriver, RunResult};
use gm_des::{FaultGenConfig, FaultPlan, SimDuration, SimTime};
use gm_optimal::VcgSlaPolicy;
use gm_tycoon::{HostSpec, UserId};

fn hosts(n: u32) -> Vec<HostSpec> {
    (0..n).map(HostSpec::testbed).collect()
}

fn jobs() -> Vec<JobRequest> {
    (0..4)
        .map(|i| JobRequest {
            id: i,
            user: UserId(i + 1),
            subjobs: 4,
            work_per_subjob: 1.5e6,
            arrival: SimTime::ZERO + SimDuration::from_secs(30 * u64::from(i)),
            budget: 50.0 + 25.0 * f64::from(i),
            deadline_secs: 3600.0,
        })
        .collect()
}

fn chaos_plan(seed: u64, n_hosts: u32) -> FaultPlan {
    FaultPlan::generate(
        seed,
        FaultGenConfig {
            hosts: n_hosts,
            horizon: SimTime::ZERO + SimDuration::from_secs(3600),
            crashes: 2,
            mean_downtime: SimDuration::from_secs(600),
            vm_failures: 1,
            bank_outages: 1,
            outage_len: SimDuration::from_secs(300),
            bank_restarts: 1,
            link_outages: 1,
            link_outage_len: SimDuration::from_secs(300),
            adversary_arrivals: 0,
        },
    )
}

fn run_chaos(seed: u64) -> (RunResult, f64) {
    let mut policy = VcgSlaPolicy::new(seed);
    let r = PolicyDriver::new(hosts(4), 10.0)
        .horizon(SimTime::ZERO + SimDuration::from_secs(6 * 3600))
        .faults(chaos_plan(seed, 4))
        .run(&mut policy, &jobs())
        .expect("valid jobs");
    (r, policy.conservation_residual())
}

fn fingerprint(r: &RunResult) -> Vec<(u32, u64, u64, Option<u64>)> {
    r.outcomes
        .iter()
        .map(|o| {
            (
                o.id,
                o.value.to_bits(),
                o.cost.to_bits(),
                o.finished_at.map(|t| t.as_micros()),
            )
        })
        .collect()
}

#[test]
fn vcg_under_chaos_conserves_money_exactly() {
    for seed in [1u64, 0xBEEF, 0xC4A05] {
        let (r, residual) = run_chaos(seed);
        assert_eq!(residual, 0.0, "seed {seed:#x}: conservation residual");
        for o in &r.outcomes {
            assert!(o.cost >= 0.0, "seed {seed:#x}: negative charge");
            assert!(
                o.cost <= o.value + 1e-6,
                "seed {seed:#x}: job {} charged {} above realized value {}",
                o.id,
                o.cost,
                o.value
            );
        }
    }
}

#[test]
fn vcg_chaos_runs_are_byte_deterministic() {
    for seed in [7u64, 0xD00D] {
        let (a, _) = run_chaos(seed);
        let (b, _) = run_chaos(seed);
        assert_eq!(fingerprint(&a), fingerprint(&b), "seed {seed:#x}");
        assert_eq!(
            a.price_history
                .iter()
                .map(|(_, p)| p.to_bits())
                .collect::<Vec<_>>(),
            b.price_history
                .iter()
                .map(|(_, p)| p.to_bits())
                .collect::<Vec<_>>(),
            "seed {seed:#x}: price history"
        );
    }
}

#[test]
fn vcg_welfare_is_no_worse_than_any_baseline_on_the_sla_workload() {
    // The full six-policy comparison on the shared SLA workload; the
    // experiment's own unit tests assert the same dominance at Quick
    // scale — this exercises it from the integration surface.
    let c = gm_experiments::ext_vcg::run(gm_experiments::Scale::Quick);
    let vcg = c.row("vcg").expect("vcg row");
    for row in &c.rows {
        assert!(
            vcg.welfare >= row.welfare - 1e-9,
            "vcg welfare {:.2} below {} welfare {:.2}\n{}",
            vcg.welfare,
            row.policy,
            row.welfare,
            c.rendered
        );
    }
    assert!(vcg.revenue >= 0.0 && vcg.welfare > 0.0);
}
