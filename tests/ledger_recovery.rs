//! Kill-point sweep (`DESIGN.md` §11): run a fixed-seed Table-1-style
//! scenario with a durable bank ledger attached, then crash the bank at
//! **every** WAL record boundary of the resulting journal and recover it
//! from disk. Every recovered state must satisfy the conservation
//! auditor (Σbalances == minted, journal replays, receipt signatures
//! verify, a forged transfer id is rejected) and never forget a spent
//! token. Mid-record cuts must be truncated as torn tails.

use gm_ledger::SharedJournal;
use gm_tycoon::{Bank, ConservationAuditor};
use gridmarket::scenario::{Scenario, ScenarioResult};

const SEED: u64 = 2006;

fn table1_with_ledger(journal: SharedJournal) -> ScenarioResult {
    Scenario::builder()
        .seed(SEED)
        .hosts(3)
        .chunk_minutes(6.0)
        .deadline_minutes(90)
        .horizon_hours(4)
        .equal_users(2, 80.0)
        .ledger(journal)
        .run()
        .expect("ledger scenario runs")
}

#[test]
fn kill_point_sweep_every_wal_boundary_recovers_audited_state() {
    let journal = SharedJournal::new();
    let r = table1_with_ledger(journal.clone());
    assert!(r.all_done(), "scenario must finish: {:?}", r.users);
    assert!(r.money_conserved());
    // `dispatches == requeues + 1` for every finished sub-job.
    assert!(r.recovery_invariant_ok);

    // The run's final journal is the "disk image" the sweep replays.
    let disk = journal.to_journal();
    let seed_bytes = SEED.to_be_bytes();
    assert!(disk.record_count() > 0, "the run journaled bank events");

    let mut boundaries = vec![0usize];
    boundaries.extend_from_slice(disk.record_ends());

    let auditor = ConservationAuditor::default();
    let mut last_spent: Vec<u64> = Vec::new();
    for &cut in &boundaries {
        let crashed = SharedJournal::from_journal(disk.crash_at(cut));
        let (bank, report) = match Bank::recover(&seed_bytes, &crashed) {
            Ok(ok) => ok,
            Err(e) => panic!("recovery at boundary {cut} failed: {e}"),
        };
        assert_eq!(report.torn_tail_bytes, 0, "boundary {cut} is not torn");
        assert_eq!(report.corrupt_records, 0);

        // Conservation + receipt signatures + forged-id rejection.
        let audit = auditor.audit(&bank, Some(&crashed));
        assert!(audit.ok(), "audit failed at boundary {cut}: {audit:?}");
        assert!(audit.forgery_rejected, "forged transfer id verified at {cut}");

        // Spent tokens are never forgotten: the spent set grows
        // monotonically with the crash point.
        let spent = bank.spent_token_ids();
        assert!(
            last_spent.iter().all(|id| spent.contains(id)),
            "boundary {cut} forgot a spent token"
        );
        last_spent = spent;
    }

    // The final boundary restores the full run byte-identically.
    let full = SharedJournal::from_journal(disk.clone());
    let (bank, _) = match Bank::recover(&seed_bytes, &full) {
        Ok(ok) => ok,
        Err(e) => panic!("full recovery failed: {e}"),
    };
    assert_eq!(bank.total_money(), bank.total_minted());
    assert_eq!(
        bank.total_minted().as_f64(),
        r.total_minted,
        "recovered books match the live run's minted total"
    );
}

#[test]
fn kill_point_sweep_mid_record_cuts_are_torn_tails() {
    let journal = SharedJournal::new();
    let r = table1_with_ledger(journal.clone());
    assert!(r.all_done());

    let disk = journal.to_journal();
    let seed_bytes = SEED.to_be_bytes();
    let boundaries: std::collections::BTreeSet<usize> =
        disk.record_ends().iter().copied().collect();

    // Sampling every byte offset would be O(bytes × records); step
    // through the WAL at a prime stride instead so cuts land at varied
    // positions inside records across the whole file.
    let mut cut = 1usize;
    let mut tested = 0u32;
    while cut < disk.wal_len() {
        if !boundaries.contains(&cut) {
            let crashed = SharedJournal::from_journal(disk.crash_at(cut));
            let (bank, report) = match Bank::recover(&seed_bytes, &crashed) {
                Ok(ok) => ok,
                Err(e) => panic!("torn-tail recovery at {cut} failed: {e}"),
            };
            assert!(report.torn_tail_bytes > 0, "cut {cut} should tear a record");
            assert_eq!(bank.total_money(), bank.total_minted());
            tested += 1;
        }
        cut += 241;
    }
    assert!(tested > 10, "stride covered too few torn cuts ({tested})");
}
