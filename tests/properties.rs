//! Property-based tests over the core invariants, on the in-repo
//! `gm_des::check` harness (seeded, deterministic, replayable: a failure
//! prints the exact `Gen::new(seed)` to reproduce the case).

use gridmarket::des::check::{check, Gen};
use gridmarket::des::{Pcg32, Rng64, SimTime};
use gridmarket::numeric::{levinson_durbin, smoothing_spline, Histogram, Matrix};
use gridmarket::predict::SlotTable;
use gridmarket::tycoon::{
    best_response, utility, Bank, Credits, HostId, HostQuote, HostSpec, Market, UserId,
};

/// Bank transfers never create or destroy money, regardless of the
/// operation sequence.
#[test]
fn bank_conserves_money() {
    check("bank_conserves_money", 192, |g| {
        let ops = g.vec_with(1, 60, |g| {
            (
                g.u64_in(0, 3) as u8,
                g.usize_in(0, 3),
                g.usize_in(0, 3),
                g.i64_in(1, 499),
            )
        });
        let mut bank = Bank::new(b"prop");
        let keys = gm_crypto::Keypair::from_seed(b"owner");
        let accounts: Vec<_> = (0..4)
            .map(|i| bank.open_account(keys.public, &format!("a{i}")))
            .collect();
        let mut minted = Credits::ZERO;
        for a in &accounts {
            bank.mint(*a, Credits::from_whole(1000)).unwrap();
            minted += Credits::from_whole(1000);
        }
        for (op, from, to, amount) in ops {
            let amount = Credits::from_whole(amount);
            match op {
                0..=2 => {
                    let _ = bank.transfer(accounts[from], accounts[to], amount);
                }
                _ => {
                    let _ = bank.open_sub_account(accounts[from], keys.public, "sub", amount);
                }
            }
        }
        assert_eq!(bank.total_money(), minted);
    });
}

/// Best Response output always satisfies the budget constraint and is
/// never beaten by random feasible alternatives.
#[test]
fn best_response_is_feasible_and_unbeaten() {
    check("best_response_is_feasible_and_unbeaten", 192, |g| {
        let n = g.usize_in(1, 7);
        let quotes: Vec<HostQuote> = (0..n)
            .map(|i| HostQuote {
                host: HostId(i as u32),
                weight: g.f64_in(1.0, 5000.0),
                others_rate: g.f64_in(1e-6, 10.0),
            })
            .collect();
        let budget = g.f64_in(1e-3, 100.0);
        let seed = g.u64_in(0, 999);

        let bids = best_response(&quotes, budget, usize::MAX);
        let total: f64 = bids.iter().map(|(_, x)| x).sum();
        assert!(
            (total - budget).abs() < 1e-6 * budget.max(1.0),
            "budget violated: {total} vs {budget}"
        );
        for (_, x) in &bids {
            assert!(*x > 0.0);
        }

        // Compare against random simplex points.
        let mut x_star = vec![0.0; n];
        for (h, b) in &bids {
            x_star[quotes.iter().position(|q| q.host == *h).unwrap()] = *b;
        }
        let u_star = utility(&x_star, &quotes);
        let mut rng = Pcg32::seed_from_u64(seed);
        for _ in 0..30 {
            let mut alt: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
            let s: f64 = alt.iter().sum();
            if s <= 0.0 {
                continue;
            }
            for a in alt.iter_mut() {
                *a *= budget / s;
            }
            let u_alt = utility(&alt, &quotes);
            assert!(
                u_alt <= u_star + 1e-7 * u_star.abs().max(1.0),
                "random bid beats best response: {u_alt} > {u_star}"
            );
        }
    });
}

/// The proportional-share auctioneer conserves escrow + income exactly.
#[test]
fn auctioneer_conserves_credits() {
    check("auctioneer_conserves_credits", 256, |g| {
        let bids = g.vec_with(1, 10, |g| {
            (g.u64_in(1, 4) as u32, g.f64_in(1e-4, 2.0), g.i64_in(1, 99))
        });
        let intervals = g.usize_in(1, 19);
        let mut a = gridmarket::tycoon::Auctioneer::new(HostSpec::testbed(0));
        let mut deposited = Credits::ZERO;
        let mut handles = Vec::new();
        for (user, rate, escrow) in bids {
            let escrow = Credits::from_whole(escrow);
            deposited += escrow;
            handles.push(a.place_bid(UserId(user), rate, escrow));
        }
        for _ in 0..intervals {
            for alloc in a.allocate(10.0) {
                assert!(alloc.share >= 0.0 && alloc.share <= 1.0);
                assert!(alloc.capacity_mhz >= 0.0);
            }
        }
        let remaining: Credits = handles.iter().filter_map(|h| a.escrow(*h)).sum();
        assert_eq!(remaining + a.earned(), deposited);
    });
}

/// Shares on a host always sum to ≤ 1 and are proportional to rates.
#[test]
fn shares_sum_to_at_most_one() {
    check("shares_sum_to_at_most_one", 256, |g| {
        let rates = g.vec_with(1, 12, |g| g.f64_in(1e-4, 5.0));
        let mut a = gridmarket::tycoon::Auctioneer::new(HostSpec::testbed(0));
        for (i, r) in rates.iter().enumerate() {
            a.place_bid(UserId(i as u32), *r, Credits::from_whole(1000));
        }
        let allocs = a.allocate(10.0);
        let total: f64 = allocs.iter().map(|x| x.share).sum();
        assert!(total <= 1.0 + 1e-9, "shares sum {total}");
        // Proportionality: share_i / share_j == rate_i / rate_j.
        if allocs.len() >= 2 {
            let r0 = allocs[0].share / rates[0];
            for (k, al) in allocs.iter().enumerate() {
                assert!((al.share / rates[k] - r0).abs() < 1e-9);
            }
        }
    });
}

/// Market-level invariant: placing/cancelling funded bids keeps the bank
/// books balanced.
#[test]
fn market_bid_lifecycle_conserves() {
    check("market_bid_lifecycle_conserves", 192, |g| {
        let actions = g.vec_with(1, 30, |g| {
            (
                g.u64_in(0, 2) as u8,
                g.u64_in(0, 2) as u32,
                g.f64_in(1e-3, 1.0),
                g.i64_in(1, 49),
            )
        });
        let mut market = Market::new(b"propmkt");
        for i in 0..3 {
            market.add_host(HostSpec::testbed(i));
        }
        let key = gm_crypto::Keypair::from_seed(b"u").public;
        let acct = market.bank_mut().open_account(key, "payer");
        market
            .bank_mut()
            .mint(acct, Credits::from_whole(100_000))
            .unwrap();
        let mut live: Vec<(HostId, gridmarket::tycoon::BidHandle)> = Vec::new();
        let mut now = 0u64;
        for (op, host, rate, escrow) in actions {
            let host = HostId(host);
            match op {
                0 => {
                    if let Ok(h) =
                        market.place_funded_bid(UserId(1), acct, host, rate, Credits::from_whole(escrow))
                    {
                        live.push((host, h));
                    }
                }
                1 => {
                    if let Some((h, b)) = live.pop() {
                        let _ = market.cancel_bid(h, b, acct);
                    }
                }
                _ => {
                    now += 10;
                    market.tick(SimTime::from_secs(now));
                    live.retain(|(h, b)| {
                        market.auctioneer(*h).is_some_and(|a| a.escrow(*b).is_some())
                    });
                }
            }
            assert_eq!(market.bank().total_money(), Credits::from_whole(100_000));
        }
    });
}

/// SHA-256 streaming equals one-shot for arbitrary chunkings.
#[test]
fn sha256_streaming_equivalence() {
    check("sha256_streaming_equivalence", 256, |g| {
        let data = g.bytes(0, 2000);
        let cut = g.usize_in(0, data.len());
        let one = gm_crypto::sha256(&data);
        let mut h = gm_crypto::Sha256::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        assert_eq!(h.finalize(), one);
    });
}

/// Signature round trip for arbitrary messages/seeds; cross-key
/// verification always fails.
#[test]
fn signatures_verify_only_with_right_key() {
    check("signatures_verify_only_with_right_key", 128, |g| {
        let msg = g.bytes(0, 256);
        let s1 = g.u64();
        let s2 = g.u64();
        if s1 == s2 {
            return;
        }
        let k1 = gm_crypto::Keypair::from_seed(&s1.to_be_bytes());
        let k2 = gm_crypto::Keypair::from_seed(&s2.to_be_bytes());
        let sig = k1.sign(&msg);
        assert!(k1.public.verify(&msg, &sig));
        assert!(!k2.public.verify(&msg, &sig));
    });
}

/// Field arithmetic: (a·b)·c == a·(b·c) and a·(b+c) == a·b + a·c.
#[test]
fn field_ring_axioms() {
    check("field_ring_axioms", 256, |g| {
        use gm_crypto::field;
        let wide = |g: &mut Gen| ((g.u64() as u128) << 64 | g.u64() as u128) % field::P;
        let (a, b, c) = (wide(g), wide(g), wide(g));
        assert_eq!(
            field::mul(field::mul(a, b), c),
            field::mul(a, field::mul(b, c))
        );
        assert_eq!(
            field::mul(a, field::add(b, c)),
            field::add(field::mul(a, b), field::mul(a, c))
        );
        assert_eq!(field::mul(a, 1), a);
        assert_eq!(field::add(a, field::sub(b, a)), b % field::P);
    });
}

/// Slot tables never lose samples through range doublings.
#[test]
fn slot_table_preserves_counts() {
    check("slot_table_preserves_counts", 256, |g| {
        let prices = g.vec_with(1, 200, |g| g.f64_in(0.0, 1e6));
        let mut t = SlotTable::new(8, 0.5);
        for &p in &prices {
            t.add(p);
        }
        assert_eq!(t.total(), prices.len() as u64);
        let counted: u64 = t.counts().iter().sum();
        assert_eq!(counted, prices.len() as u64);
        let s: f64 = t.proportions().iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    });
}

/// Histogram proportions always form a distribution.
#[test]
fn histogram_is_distribution() {
    check("histogram_is_distribution", 256, |g| {
        let xs = g.vec_with(1, 200, |g| g.f64_in(-100.0, 100.0));
        let bins = g.usize_in(1, 31);
        let h = Histogram::from_samples(-50.0, 50.0, bins, &xs);
        assert_eq!(h.total(), xs.len() as u64);
        let s: f64 = h.proportions().iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    });
}

/// Levinson-Durbin agrees with a dense LU solve of the same Toeplitz
/// system on positive-definite inputs (biased autocovariances of a random
/// series are always PSD).
#[test]
fn levinson_matches_dense_solve() {
    check("levinson_matches_dense_solve", 128, |g| {
        let seed = g.u64();
        let order = g.usize_in(1, 5);
        let mut rng = Pcg32::seed_from_u64(seed);
        let series: Vec<f64> = (0..200).map(|_| rng.next_f64() * 10.0).collect();
        let r = gridmarket::numeric::toeplitz::autocorrelations_biased(&series, order);
        if r[0] <= 1e-9 {
            return;
        }
        if let Some((a, e)) = levinson_durbin(&r) {
            if e <= 1e-9 {
                return; // skip clamped/degenerate recursions
            }
            let k = order;
            let mut m = Matrix::zeros(k, k);
            for i in 0..k {
                for j in 0..k {
                    m[(i, j)] = r[(i as isize - j as isize).unsigned_abs()];
                }
            }
            if let Some(x) = m.solve(&r[1..]) {
                for (ai, xi) in a.iter().zip(&x) {
                    assert!((ai - xi).abs() < 1e-6, "{ai} vs {xi}");
                }
            }
        }
    });
}

/// The smoothing spline is a smoother: it never increases total roughness,
/// and λ=0 is the identity.
#[test]
fn spline_never_roughens() {
    check("spline_never_roughens", 192, |g| {
        let ys = g.vec_with(3, 100, |g| g.f64_in(-10.0, 10.0));
        let lambda = g.f64_in(0.0, 1e4);
        let rough = |v: &[f64]| -> f64 {
            v.windows(3)
                .map(|w| {
                    let d = w[0] - 2.0 * w[1] + w[2];
                    d * d
                })
                .sum()
        };
        let z = smoothing_spline(&ys, lambda);
        assert_eq!(z.len(), ys.len());
        assert!(rough(&z) <= rough(&ys) + 1e-9);
        let id = smoothing_spline(&ys, 0.0);
        assert_eq!(id, ys);
    });
}

/// xRSL built from arbitrary attribute/value strings round-trips through
/// the printer and parser.
#[test]
fn xrsl_round_trips() {
    check("xrsl_round_trips", 192, |g| {
        use gridmarket::grid::Xrsl;
        let ident = |g: &mut Gen| -> String {
            const HEAD: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
            const TAIL: &[u8] =
                b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
            let mut s = String::new();
            s.push(*g.choose(HEAD) as char);
            for _ in 0..g.usize_in(0, 15) {
                s.push(*g.choose(TAIL) as char);
            }
            s
        };
        // Printable ASCII minus '"' and '\'.
        let value = |g: &mut Gen| -> String {
            g.vec_with(0, 40, |g| loop {
                let c = g.u64_in(0x20, 0x7e) as u8 as char;
                if c != '"' && c != '\\' {
                    return c;
                }
            })
            .into_iter()
            .collect()
        };
        let attrs = g.vec_with(1, 10, |g| (ident(g), value(g)));
        // set_str replaces earlier values: dedupe on lowercased name,
        // keeping the last write (names are case-insensitive in xRSL).
        let mut unique: std::collections::BTreeMap<String, String> = Default::default();
        for (name, value) in &attrs {
            unique.insert(name.to_ascii_lowercase(), value.clone());
        }
        let mut x = Xrsl::default();
        for (name, value) in &unique {
            x.set_str(name, value);
        }
        let text = x.to_text();
        let back = Xrsl::parse(&text).expect("printer output must parse");
        for (name, value) in &unique {
            assert_eq!(back.get_str(name), Some(value.as_str()));
        }
    });
}

/// Transfer tokens round-trip hex encoding for arbitrary amounts and
/// DN-ish strings, and still verify afterwards.
#[test]
fn token_hex_round_trips() {
    check("token_hex_round_trips", 96, |g| {
        use gridmarket::grid::{GridIdentity, TransferToken};
        let amount = g.i64_in(1, 999_999);
        let user_n = g.u64_in(1, 999) as u32;
        let mut bank = Bank::new(b"prop-token");
        let user = GridIdentity::swegrid_user(user_n);
        let broker = GridIdentity::from_dn("/O=Grid/CN=broker");
        let ua = bank.open_account(user.public_key(), "u");
        let ba = bank.open_account(broker.public_key(), "b");
        bank.mint(ua, Credits::from_whole(2_000_000)).unwrap();
        let receipt = bank.transfer(ua, ba, Credits::from_whole(amount)).unwrap();
        let token = TransferToken::create(&user, receipt, user.dn());
        let back = TransferToken::from_hex(&token.to_hex()).expect("decode");
        assert_eq!(&back, &token);
        assert!(back.verify(&bank, ba).is_ok());
    });
}

/// The dual-window distribution is always a probability distribution once
/// samples exist, for arbitrary window sizes and price streams.
#[test]
fn dual_window_stays_normalized() {
    check("dual_window_stays_normalized", 128, |g| {
        use gridmarket::predict::DualWindowDistribution;
        let window = g.u64_in(1, 49);
        let prices = g.vec_with(1, 300, |g| g.f64_in(0.0, 1e5));
        let mut d = DualWindowDistribution::new(window, 8, 0.5);
        for &p in &prices {
            d.add(p);
            let s: f64 = d.proportions().iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "sum {s}");
        }
    });
}

/// Moving smoothed moments never produce NaN and the smoothed mean stays
/// within the observed range.
#[test]
fn smoothed_moments_stay_bounded() {
    check("smoothed_moments_stay_bounded", 192, |g| {
        use gridmarket::numeric::stats::SmoothedMoments;
        let window = g.usize_in(1, 99);
        let xs = g.vec_with(1, 200, |g| g.f64_in(0.0, 1e6));
        let mut sm = SmoothedMoments::new(window);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in &xs {
            sm.push(x);
            lo = lo.min(x);
            hi = hi.max(x);
            let m = sm.mean().unwrap();
            assert!(m.is_finite());
            assert!(m >= lo - 1e-9 && m <= hi + 1e-9, "mean {m} outside [{lo}, {hi}]");
            assert!(sm.std_dev().unwrap().is_finite());
        }
    });
}

/// Credits float round trip is exact at micro precision.
#[test]
fn credits_round_trip() {
    check("credits_round_trip", 256, |g| {
        let micros = g.i64_in(-1_000_000_000_000, 1_000_000_000_000);
        let c = Credits::from_micros(micros);
        assert_eq!(Credits::from_f64(c.as_f64()).as_micros(), micros);
    });
}
