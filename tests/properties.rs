//! Property-based tests (proptest) over the core invariants.

use proptest::prelude::*;

use gridmarket::des::{Pcg32, Rng64, SimTime};
use gridmarket::numeric::{levinson_durbin, smoothing_spline, Histogram, Matrix};
use gridmarket::predict::SlotTable;
use gridmarket::tycoon::{
    best_response, utility, Bank, Credits, HostId, HostQuote, HostSpec, Market, UserId,
};

proptest! {
    /// Bank transfers never create or destroy money, regardless of the
    /// operation sequence.
    #[test]
    fn bank_conserves_money(ops in proptest::collection::vec((0u8..4, 0usize..4, 0usize..4, 1i64..500), 1..60)) {
        let mut bank = Bank::new(b"prop");
        let keys = gm_crypto::Keypair::from_seed(b"owner");
        let accounts: Vec<_> = (0..4).map(|i| bank.open_account(keys.public, &format!("a{i}"))).collect();
        let mut minted = Credits::ZERO;
        for a in &accounts {
            bank.mint(*a, Credits::from_whole(1000)).unwrap();
            minted += Credits::from_whole(1000);
        }
        for (op, from, to, amount) in ops {
            let amount = Credits::from_whole(amount);
            match op {
                0..=2 => { let _ = bank.transfer(accounts[from], accounts[to], amount); }
                _ => { let _ = bank.open_sub_account(accounts[from], keys.public, "sub", amount); }
            }
        }
        prop_assert_eq!(bank.total_money(), minted);
    }

    /// Best Response output always satisfies the budget constraint and is
    /// never beaten by random feasible alternatives.
    #[test]
    fn best_response_is_feasible_and_unbeaten(
        weights in proptest::collection::vec(1.0f64..5000.0, 1..8),
        prices in proptest::collection::vec(1e-6f64..10.0, 1..8),
        budget in 1e-3f64..100.0,
        seed in 0u64..1000,
    ) {
        let n = weights.len().min(prices.len());
        let quotes: Vec<HostQuote> = (0..n).map(|i| HostQuote {
            host: HostId(i as u32),
            weight: weights[i],
            others_rate: prices[i],
        }).collect();
        let bids = best_response(&quotes, budget, usize::MAX);
        let total: f64 = bids.iter().map(|(_, x)| x).sum();
        prop_assert!((total - budget).abs() < 1e-6 * budget.max(1.0), "budget violated: {} vs {}", total, budget);
        for (_, x) in &bids { prop_assert!(*x > 0.0); }

        // Compare against random simplex points.
        let mut x_star = vec![0.0; n];
        for (h, b) in &bids {
            x_star[quotes.iter().position(|q| q.host == *h).unwrap()] = *b;
        }
        let u_star = utility(&x_star, &quotes);
        let mut rng = Pcg32::seed_from_u64(seed);
        for _ in 0..30 {
            let mut alt: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
            let s: f64 = alt.iter().sum();
            if s <= 0.0 { continue; }
            for a in alt.iter_mut() { *a *= budget / s; }
            let u_alt = utility(&alt, &quotes);
            prop_assert!(u_alt <= u_star + 1e-7 * u_star.abs().max(1.0),
                "random bid beats best response: {} > {}", u_alt, u_star);
        }
    }

    /// The proportional-share auctioneer conserves escrow + income exactly.
    #[test]
    fn auctioneer_conserves_credits(
        bids in proptest::collection::vec((1u32..5, 1e-4f64..2.0, 1i64..100), 1..10),
        intervals in 1usize..20,
    ) {
        let mut a = gridmarket::tycoon::Auctioneer::new(HostSpec::testbed(0));
        let mut deposited = Credits::ZERO;
        let mut handles = Vec::new();
        for (user, rate, escrow) in bids {
            let escrow = Credits::from_whole(escrow);
            deposited += escrow;
            handles.push(a.place_bid(UserId(user), rate, escrow));
        }
        for _ in 0..intervals {
            for alloc in a.allocate(10.0) {
                prop_assert!(alloc.share >= 0.0 && alloc.share <= 1.0);
                prop_assert!(alloc.capacity_mhz >= 0.0);
            }
        }
        let remaining: Credits = handles.iter().filter_map(|h| a.escrow(*h)).sum();
        prop_assert_eq!(remaining + a.earned(), deposited);
    }

    /// Shares on a host always sum to ≤ 1 and are proportional to rates.
    #[test]
    fn shares_sum_to_at_most_one(
        rates in proptest::collection::vec(1e-4f64..5.0, 1..12),
    ) {
        let mut a = gridmarket::tycoon::Auctioneer::new(HostSpec::testbed(0));
        for (i, r) in rates.iter().enumerate() {
            a.place_bid(UserId(i as u32), *r, Credits::from_whole(1000));
        }
        let allocs = a.allocate(10.0);
        let total: f64 = allocs.iter().map(|x| x.share).sum();
        prop_assert!(total <= 1.0 + 1e-9, "shares sum {}", total);
        // Proportionality: share_i / share_j == rate_i / rate_j.
        if allocs.len() >= 2 {
            let r0 = allocs[0].share / rates[0];
            for (k, al) in allocs.iter().enumerate() {
                prop_assert!((al.share / rates[k] - r0).abs() < 1e-9);
            }
        }
    }

    /// Market-level invariant: placing/cancelling funded bids keeps the
    /// bank books balanced.
    #[test]
    fn market_bid_lifecycle_conserves(
        actions in proptest::collection::vec((0u8..3, 0u32..3, 1e-3f64..1.0, 1i64..50), 1..30),
    ) {
        let mut market = Market::new(b"propmkt");
        for i in 0..3 { market.add_host(HostSpec::testbed(i)); }
        let key = gm_crypto::Keypair::from_seed(b"u").public;
        let acct = market.bank_mut().open_account(key, "payer");
        market.bank_mut().mint(acct, Credits::from_whole(100_000)).unwrap();
        let mut live: Vec<(HostId, gridmarket::tycoon::BidHandle)> = Vec::new();
        let mut now = 0u64;
        for (op, host, rate, escrow) in actions {
            let host = HostId(host);
            match op {
                0 => {
                    if let Ok(h) = market.place_funded_bid(UserId(1), acct, host, rate, Credits::from_whole(escrow)) {
                        live.push((host, h));
                    }
                }
                1 => {
                    if let Some((h, b)) = live.pop() {
                        let _ = market.cancel_bid(h, b, acct);
                    }
                }
                _ => {
                    now += 10;
                    market.tick(SimTime::from_secs(now));
                    live.retain(|(h, b)| market.auctioneer(*h).is_some_and(|a| a.escrow(*b).is_some()));
                }
            }
            prop_assert_eq!(market.bank().total_money(), Credits::from_whole(100_000));
        }
    }

    /// SHA-256 streaming equals one-shot for arbitrary chunkings.
    #[test]
    fn sha256_streaming_equivalence(data in proptest::collection::vec(any::<u8>(), 0..2000), cut in 0usize..2000) {
        let one = gm_crypto::sha256(&data);
        let cut = cut.min(data.len());
        let mut h = gm_crypto::Sha256::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), one);
    }

    /// Signature round trip for arbitrary messages/seeds; cross-key
    /// verification always fails.
    #[test]
    fn signatures_verify_only_with_right_key(msg in proptest::collection::vec(any::<u8>(), 0..256), s1 in any::<u64>(), s2 in any::<u64>()) {
        prop_assume!(s1 != s2);
        let k1 = gm_crypto::Keypair::from_seed(&s1.to_be_bytes());
        let k2 = gm_crypto::Keypair::from_seed(&s2.to_be_bytes());
        let sig = k1.sign(&msg);
        prop_assert!(k1.public.verify(&msg, &sig));
        prop_assert!(!k2.public.verify(&msg, &sig));
    }

    /// Field arithmetic: (a·b)·c == a·(b·c) and a·(b+c) == a·b + a·c.
    #[test]
    fn field_ring_axioms(a in any::<u128>(), b in any::<u128>(), c in any::<u128>()) {
        use gm_crypto::field;
        let (a, b, c) = (a % field::P, b % field::P, c % field::P);
        prop_assert_eq!(field::mul(field::mul(a, b), c), field::mul(a, field::mul(b, c)));
        prop_assert_eq!(field::mul(a, field::add(b, c)), field::add(field::mul(a, b), field::mul(a, c)));
        prop_assert_eq!(field::mul(a, 1), a);
        prop_assert_eq!(field::add(a, field::sub(b, a)), b % field::P);
    }

    /// Slot tables never lose samples through range doublings.
    #[test]
    fn slot_table_preserves_counts(prices in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let mut t = SlotTable::new(8, 0.5);
        for &p in &prices { t.add(p); }
        prop_assert_eq!(t.total(), prices.len() as u64);
        let counted: u64 = t.counts().iter().sum();
        prop_assert_eq!(counted, prices.len() as u64);
        let s: f64 = t.proportions().iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-9);
    }

    /// Histogram proportions always form a distribution.
    #[test]
    fn histogram_is_distribution(xs in proptest::collection::vec(-100.0f64..100.0, 1..200), bins in 1usize..32) {
        let h = Histogram::from_samples(-50.0, 50.0, bins, &xs);
        prop_assert_eq!(h.total(), xs.len() as u64);
        let s: f64 = h.proportions().iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-9);
    }

    /// Levinson-Durbin agrees with a dense LU solve of the same Toeplitz
    /// system on positive-definite inputs (biased autocovariances of a
    /// random series are always PSD).
    #[test]
    fn levinson_matches_dense_solve(seed in any::<u64>(), order in 1usize..6) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let series: Vec<f64> = (0..200).map(|_| rng.next_f64() * 10.0).collect();
        let r = gridmarket::numeric::toeplitz::autocorrelations_biased(&series, order);
        prop_assume!(r[0] > 1e-9);
        if let Some((a, e)) = levinson_durbin(&r) {
            prop_assume!(e > 1e-9); // skip clamped/degenerate recursions
            let k = order;
            let mut m = Matrix::zeros(k, k);
            for i in 0..k {
                for j in 0..k {
                    m[(i, j)] = r[(i as isize - j as isize).unsigned_abs()];
                }
            }
            if let Some(x) = m.solve(&r[1..].to_vec()) {
                for (ai, xi) in a.iter().zip(&x) {
                    prop_assert!((ai - xi).abs() < 1e-6, "{} vs {}", ai, xi);
                }
            }
        }
    }

    /// The smoothing spline is a smoother: it never increases total
    /// roughness, and λ=0 is the identity.
    #[test]
    fn spline_never_roughens(ys in proptest::collection::vec(-10.0f64..10.0, 3..100), lambda in 0.0f64..1e4) {
        let rough = |v: &[f64]| -> f64 {
            v.windows(3).map(|w| { let d = w[0] - 2.0*w[1] + w[2]; d*d }).sum()
        };
        let z = smoothing_spline(&ys, lambda);
        prop_assert_eq!(z.len(), ys.len());
        prop_assert!(rough(&z) <= rough(&ys) + 1e-9);
        let id = smoothing_spline(&ys, 0.0);
        prop_assert_eq!(id, ys);
    }


    /// xRSL built from arbitrary attribute/value strings round-trips
    /// through the printer and parser.
    #[test]
    fn xrsl_round_trips(attrs in proptest::collection::vec(
        ("[a-zA-Z][a-zA-Z0-9_]{0,15}", "[ -~&&[^\"\\\\]]{0,40}"), 1..10))
    {
        use gridmarket::grid::Xrsl;
        // set_str replaces earlier values: dedupe on lowercased name,
        // keeping the last write (names are case-insensitive in xRSL).
        let mut unique: std::collections::BTreeMap<String, String> = Default::default();
        for (name, value) in &attrs {
            unique.insert(name.to_ascii_lowercase(), value.clone());
        }
        let mut x = Xrsl::default();
        for (name, value) in &unique {
            x.set_str(name, value);
        }
        let text = x.to_text();
        let back = Xrsl::parse(&text).expect("printer output must parse");
        for (name, value) in &unique {
            prop_assert_eq!(back.get_str(name), Some(value.as_str()));
        }
    }

    /// Transfer tokens round-trip hex encoding for arbitrary amounts and
    /// DN-ish strings, and still verify afterwards.
    #[test]
    fn token_hex_round_trips(amount in 1i64..1_000_000, user_n in 1u32..1000) {
        use gridmarket::grid::{GridIdentity, TransferToken};
        let mut bank = Bank::new(b"prop-token");
        let user = GridIdentity::swegrid_user(user_n);
        let broker = GridIdentity::from_dn("/O=Grid/CN=broker");
        let ua = bank.open_account(user.public_key(), "u");
        let ba = bank.open_account(broker.public_key(), "b");
        bank.mint(ua, Credits::from_whole(2_000_000)).unwrap();
        let receipt = bank.transfer(ua, ba, Credits::from_whole(amount)).unwrap();
        let token = TransferToken::create(&user, receipt, user.dn());
        let back = TransferToken::from_hex(&token.to_hex()).expect("decode");
        prop_assert_eq!(&back, &token);
        prop_assert!(back.verify(&bank, ba).is_ok());
    }

    /// The dual-window distribution is always a probability distribution
    /// once samples exist, for arbitrary window sizes and price streams.
    #[test]
    fn dual_window_stays_normalized(
        window in 1u64..50,
        prices in proptest::collection::vec(0.0f64..1e5, 1..300),
    ) {
        use gridmarket::predict::DualWindowDistribution;
        let mut d = DualWindowDistribution::new(window, 8, 0.5);
        for &p in &prices {
            d.add(p);
            let s: f64 = d.proportions().iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9, "sum {}", s);
        }
    }

    /// Moving smoothed moments never produce NaN and the smoothed mean
    /// stays within the observed range.
    #[test]
    fn smoothed_moments_stay_bounded(
        window in 1usize..100,
        xs in proptest::collection::vec(0.0f64..1e6, 1..200),
    ) {
        use gridmarket::numeric::stats::SmoothedMoments;
        let mut sm = SmoothedMoments::new(window);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in &xs {
            sm.push(x);
            lo = lo.min(x);
            hi = hi.max(x);
            let m = sm.mean().unwrap();
            prop_assert!(m.is_finite());
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9, "mean {} outside [{}, {}]", m, lo, hi);
            prop_assert!(sm.std_dev().unwrap().is_finite());
        }
    }

    /// Credits float round trip is exact at micro precision.
    #[test]
    fn credits_round_trip(micros in -1_000_000_000_000i64..1_000_000_000_000) {
        let c = Credits::from_micros(micros);
        prop_assert_eq!(Credits::from_f64(c.as_f64()).as_micros(), micros);
    }
}
