//! The Monte-Carlo chaos engine's end-to-end contract (`DESIGN.md` §13),
//! exercised over the *real* market stack:
//!
//! 1. **Byte determinism across thread counts** — the same seed list
//!    yields bit-identical per-seed metrics and identical rendered
//!    reports at 1, 2 and 8 worker threads, because results are
//!    assembled by seed index, never completion order.
//! 2. **Panic quarantine** — a deliberately detonating scenario becomes
//!    a `ScenarioFailure` with the right seed and a replay hint while
//!    every other seed completes.
//! 3. **The invariant sweep** — a random-fault batch completes with
//!    zero quarantined seeds and a conservation residual of exactly 0.
//! 4. **Lazy telemetry** — `mc.*` / `exec.*` appear only when a
//!    registry is attached.

use gm_telemetry::Registry;
use gridmarket::sched::seed_stream;
use gridmarket::{chaos_runner, chaos_scenario, ChaosConfig, ChaosMetrics};

/// One seed's metric row: the name/value pairs from `ChaosMetrics::rows`.
type MetricRow = Vec<(&'static str, f64)>;

/// Bit-exact fingerprint of one batch: every metric of every seed, as
/// raw f64 bits, in seed order.
fn fingerprint(outcomes: &[(u64, MetricRow)]) -> Vec<(u64, Vec<u64>)> {
    outcomes
        .iter()
        .map(|(seed, rows)| (*seed, rows.iter().map(|(_, v)| v.to_bits()).collect()))
        .collect()
}

fn run_batch(threads: usize, batch_size: usize, seeds: &[u64]) -> (Vec<(u64, MetricRow)>, String) {
    let cfg = ChaosConfig::default();
    let mc = chaos_runner(threads).batch(batch_size);
    let batch = mc.run(seeds, move |s| chaos_scenario(s, &cfg));
    let rows: Vec<(u64, MetricRow)> = batch
        .completed()
        .map(|(seed, m)| (seed, m.rows()))
        .collect();
    let rendered = batch.report(ChaosMetrics::rows).render();
    (rows, rendered)
}

#[test]
fn chaos_batches_are_byte_identical_across_thread_counts() {
    let seeds = seed_stream(0x9_0006, 6);
    let (rows1, report1) = run_batch(1, 64, &seeds);
    assert_eq!(rows1.len(), 6, "all seeds complete");
    for (threads, batch_size) in [(2, 2), (8, 3)] {
        let (rows_n, report_n) = run_batch(threads, batch_size, &seeds);
        assert_eq!(
            fingerprint(&rows1),
            fingerprint(&rows_n),
            "per-seed results differ at {threads} threads"
        );
        assert_eq!(report1, report_n, "aggregate report differs at {threads} threads");
    }
}

#[test]
fn detonating_scenario_is_quarantined_with_its_seed() {
    let cfg = ChaosConfig::default();
    let seeds = seed_stream(0xD1E, 5);
    let bad = seeds[2];
    let mc = chaos_runner(4);
    let batch = mc.run(&seeds, move |s| {
        if s == bad {
            panic!("chaos test: allocator exploded");
        }
        chaos_scenario(s, &cfg)
    });
    assert_eq!(batch.quarantined_seeds(), vec![bad]);
    let failure = batch.failures().next().unwrap();
    assert_eq!(failure.panic_message, "chaos test: allocator exploded");
    assert!(
        failure.replay_hint.contains("crash_matrix") && failure.replay_hint.contains(&format!("{bad:#x}")),
        "replay hint must name the replaying example and the seed: {}",
        failure.replay_hint
    );
    // The other four seeds still completed and report real metrics.
    let report = batch.report(ChaosMetrics::rows);
    assert_eq!(report.completed, 4);
    assert_eq!(report.metric("conservation_residual").unwrap().max, 0.0);
}

#[test]
fn random_fault_sweep_holds_the_invariants() {
    // The CI smoke property in test form: a random-fault batch over the
    // full market stack — host crashes, VM failures, bank outages and
    // mid-run bank restarts — completes every seed and conserves money
    // exactly.
    let cfg = ChaosConfig::default();
    let mc = chaos_runner(2).batch(8);
    let batch = mc.run(&seed_stream(0x51EE9, 16), move |s| chaos_scenario(s, &cfg));
    let report = batch.report(ChaosMetrics::rows);
    assert_eq!(report.completed, 16, "quarantined: {:?}", report.quarantined);
    let residual = report.metric("conservation_residual").unwrap();
    assert_eq!(residual.max, 0.0, "money leaked under chaos");
    assert!(
        report.metric("faults_injected").unwrap().min > 0.0,
        "every generated plan must actually fire"
    );
    assert!(report.metric("fairness").unwrap().mean > 0.5);
}

#[test]
fn telemetry_is_lazy_and_mirrors_the_pool() {
    let cfg = ChaosConfig::default();
    let registry = Registry::new();
    let mc = chaos_runner(2).with_registry(&registry);
    mc.run(&seed_stream(1, 3), move |s| chaos_scenario(s, &cfg));
    let snap = registry.snapshot();
    assert_eq!(snap.counters["mc.scenarios_started"], 3);
    assert_eq!(snap.counters["mc.scenarios_completed"], 3);
    assert_eq!(snap.counters["mc.scenarios_panicked"], 0);
    assert!(snap.gauges["exec.tasks_executed"] >= 3.0);
    assert!(snap.histograms["mc.batch_ms"].count >= 1);
}
