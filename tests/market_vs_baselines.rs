//! The Tycoon market against the baseline schedulers on shared workloads
//! (the comparisons the paper's related-work section argues, §6).
//!
//! Every policy — Tycoon included — runs through the one
//! [`PolicyDriver`], so all five see *identical* host inventories,
//! arrival streams, and clocks; the A/B numbers differ only because the
//! allocation policies differ.

use gridmarket::baselines::{
    jain_fairness, FifoBatchQueue, GCommerceMarket, JobRequest, ShareScheduler,
    WinnerTakesAllMarket,
};
use gridmarket::des::SimTime;
use gridmarket::grid::{AgentConfig, JobManager, VmConfig};
use gridmarket::sched::{AllocationPolicy, PolicyDriver, RunResult};
use gridmarket::tycoon::{HostSpec, Market, UserId};
use gridmarket::TycoonPolicy;

fn hosts(n: u32) -> Vec<HostSpec> {
    (0..n).map(HostSpec::testbed).collect()
}

fn workload() -> Vec<JobRequest> {
    (0..4)
        .map(|i| JobRequest {
            id: i,
            user: UserId(i + 1),
            subjobs: 3,
            work_per_subjob: 10.0 * 60.0 * 2910.0,
            arrival: SimTime::from_secs(30 * (i as u64 + 1)),
            budget: if i < 2 { 100.0 } else { 400.0 },
            deadline_secs: 3600.0,
        })
        .collect()
}

/// The shared tick loop every comparison in this file goes through.
fn drive(
    policy: &mut dyn AllocationPolicy,
    hosts: &[HostSpec],
    jobs: &[JobRequest],
    horizon: SimTime,
) -> RunResult {
    PolicyDriver::new(hosts.to_vec(), 10.0)
        .horizon(horizon)
        .run(policy, jobs)
        .expect("valid workload")
}

/// The full Tycoon grid stack as a policy for the shared driver.
fn tycoon(seed: u64, hosts: &[HostSpec]) -> TycoonPolicy {
    let mut market = Market::new(&seed.to_be_bytes());
    market.set_interval_secs(10.0);
    for h in hosts {
        market.add_host(h.clone());
    }
    let jm = JobManager::new(&mut market, AgentConfig::default(), VmConfig::default());
    TycoonPolicy::new(market, jm)
}

/// Budgets are meaningless to administrative schedulers but decisive in
/// markets — the paper's core differentiation argument (§2.1).
#[test]
fn only_markets_differentiate_by_budget() {
    let hosts = hosts(3);
    let jobs = workload();
    let horizon = SimTime::from_secs(6 * 3600);

    // FIFO and equal share: poor and rich jobs with identical shapes get
    // statistically interchangeable treatment.
    let fifo = drive(&mut FifoBatchQueue::default().policy(), &hosts, &jobs, horizon);
    let share = drive(&mut ShareScheduler::default().policy(), &hosts, &jobs, horizon);
    for r in [&fifo, &share] {
        assert!(r.all_finished());
        for o in &r.outcomes {
            assert_eq!(o.cost, 0.0, "administrative scheduler must not charge");
        }
    }

    // The Tycoon market under the *same driver and workload*: richer
    // users pay real credits and obtain better latency.
    let mut ty = tycoon(5, &hosts);
    let market = drive(&mut ty, &hosts, &jobs, horizon);
    assert!(market.all_finished());
    for o in &market.outcomes {
        assert!(o.cost > 0.0, "the market charges for capacity");
    }
    let poor_time =
        (market.outcomes[0].makespan_secs + market.outcomes[1].makespan_secs) / 2.0;
    let rich_time =
        (market.outcomes[2].makespan_secs + market.outcomes[3].makespan_secs) / 2.0;
    assert!(
        rich_time <= poor_time,
        "market should favor funding: rich {rich_time:.0}s vs poor {poor_time:.0}s"
    );
}

/// Proportional share is fairer than winner-takes-all under contention
/// ("winner-takes-it-all auctions … leading to reduced fairness", §6).
#[test]
fn proportional_share_beats_wta_on_fairness() {
    let hosts = hosts(1);
    // Two long jobs, 3:1 budgets, horizon cut while both still want CPU.
    let jobs: Vec<JobRequest> = [(0u32, 300.0), (1u32, 100.0)]
        .iter()
        .map(|&(i, budget)| JobRequest {
            id: i,
            user: UserId(i + 1),
            subjobs: 2,
            work_per_subjob: 2_000.0 * 2910.0,
            arrival: SimTime::ZERO,
            budget,
            deadline_secs: 3600.0,
        })
        .collect();
    let horizon = SimTime::from_secs(1_500);

    let wta = WinnerTakesAllMarket::default();
    let caps_wta = wta.capacity_received(&hosts, &jobs, horizon);
    let fairness_wta = jain_fairness(&caps_wta);

    // Tycoon on the same shape (stagger the arrivals as §5.2 does):
    // shares are proportional (3:1), so both users receive work —
    // fairness must be clearly higher.
    let jobs_ty: Vec<JobRequest> = [(0u32, 300.0), (1u32, 100.0)]
        .iter()
        .map(|&(i, budget)| JobRequest {
            id: i,
            user: UserId(i + 1),
            subjobs: 2,
            work_per_subjob: 40.0 * 60.0 * 2910.0,
            arrival: SimTime::from_secs(30 * (i as u64 + 1)),
            budget,
            deadline_secs: 3600.0,
        })
        .collect();
    let mut ty = tycoon(11, &hosts);
    let market = drive(&mut ty, &hosts, &jobs_ty, SimTime::from_secs(3600));
    let caps_market: Vec<f64> = market
        .outcomes
        .iter()
        .map(|o| o.avg_nodes * (o.makespan_secs / 3600.0).max(0.01))
        .collect();
    let fairness_market = jain_fairness(&caps_market);

    assert!(
        fairness_market > fairness_wta,
        "proportional share ({fairness_market:.3}) should be fairer than WTA ({fairness_wta:.3})"
    );
}

/// G-commerce's advertised advantage: posted-price markets show smoother
/// prices than burst auctions — and our simulation reproduces the
/// trade-off (bounded per-step movement).
#[test]
fn gcommerce_price_moves_are_bounded() {
    let hosts = hosts(2);
    let jobs = workload();
    let gc = GCommerceMarket::default();
    let r = drive(&mut gc.policy(), &hosts, &jobs, SimTime::from_secs(4 * 3600));
    assert!(r.price_history.len() > 10);
    for w in r.price_history.windows(2) {
        let ratio = w[1].1 / w[0].1;
        assert!((0.94..=1.06).contains(&ratio), "posted price jumped: {ratio}");
    }
}

/// Work conservation: the market never leaves hosts idle while jobs have
/// pending work and funds (the "agile reallocation … work conservation"
/// property of §6).
#[test]
fn market_is_work_conserving_under_load() {
    let hosts = hosts(2);
    let jobs: Vec<JobRequest> = (0..2)
        .map(|i| JobRequest {
            id: i,
            user: UserId(i + 1),
            subjobs: 4,
            work_per_subjob: 15.0 * 60.0 * 2910.0,
            arrival: SimTime::from_secs(30 * (i as u64 + 1)),
            budget: 200.0,
            deadline_secs: 90.0 * 60.0,
        })
        .collect();
    let mut ty = tycoon(13, &hosts);
    let r = drive(&mut ty, &hosts, &jobs, SimTime::from_secs(8 * 3600));
    assert!(r.all_finished());
    // 8 subjobs × 15 min = 2 CPU-hours on 4 vCPUs ⇒ ≥ 0.5 h lower bound;
    // with overheads the run must still finish within ~3× that.
    let makespan_h = r.batch_makespan_secs() / 3600.0;
    assert!(
        makespan_h < 1.5,
        "market wasted capacity: makespan {makespan_h:.2}h for 2 CPU-hours on 4 vCPUs"
    );
}
