//! The Tycoon market against the baseline schedulers on shared workloads
//! (the comparisons the paper's related-work section argues, §6).

use gridmarket::baselines::{
    jain_fairness, FifoBatchQueue, GCommerceMarket, JobRequest, ShareScheduler,
    WinnerTakesAllMarket,
};
use gridmarket::des::SimTime;
use gridmarket::scenario::{Scenario, UserSetup};
use gridmarket::tycoon::{HostSpec, UserId};

fn hosts(n: u32) -> Vec<HostSpec> {
    (0..n).map(HostSpec::testbed).collect()
}

fn workload() -> Vec<JobRequest> {
    (0..4)
        .map(|i| JobRequest {
            id: i,
            user: UserId(i + 1),
            subjobs: 3,
            work_per_subjob: 10.0 * 60.0 * 2910.0,
            arrival: SimTime::from_secs(30 * (i as u64 + 1)),
            budget: if i < 2 { 100.0 } else { 400.0 },
            deadline_secs: 3600.0,
        })
        .collect()
}

/// Budgets are meaningless to administrative schedulers but decisive in
/// markets — the paper's core differentiation argument (§2.1).
#[test]
fn only_markets_differentiate_by_budget() {
    let hosts = hosts(3);
    let jobs = workload();
    let horizon = SimTime::from_secs(6 * 3600);

    // FIFO and equal share: poor and rich jobs with identical shapes get
    // statistically interchangeable treatment.
    let fifo = FifoBatchQueue::default().run(&hosts, &jobs, horizon);
    let share = ShareScheduler::default().run(&hosts, &jobs, horizon);
    for r in [&fifo, &share] {
        assert!(r.all_finished());
        for o in &r.outcomes {
            assert_eq!(o.cost, 0.0, "administrative scheduler must not charge");
        }
    }

    // The Tycoon market: richer users obtain better latency.
    let mut s = Scenario::builder()
        .seed(5)
        .hosts(3)
        .chunk_minutes(10.0)
        .deadline_minutes(60)
        .horizon_hours(6);
    for j in &jobs {
        s = s.user(UserSetup::new(j.budget).subjobs(j.subjobs));
    }
    let market = s.run().unwrap();
    assert!(market.all_done());
    let poor_time = (market.users[0].time_hours + market.users[1].time_hours) / 2.0;
    let rich_time = (market.users[2].time_hours + market.users[3].time_hours) / 2.0;
    assert!(
        rich_time <= poor_time,
        "market should favor funding: rich {rich_time:.2}h vs poor {poor_time:.2}h"
    );
}

/// Proportional share is fairer than winner-takes-all under contention
/// ("winner-takes-it-all auctions … leading to reduced fairness", §6).
#[test]
fn proportional_share_beats_wta_on_fairness() {
    let hosts = hosts(1);
    // Two long jobs, 3:1 budgets, horizon cut while both still want CPU.
    let jobs: Vec<JobRequest> = [(0u32, 300.0), (1u32, 100.0)]
        .iter()
        .map(|&(i, budget)| JobRequest {
            id: i,
            user: UserId(i + 1),
            subjobs: 2,
            work_per_subjob: 2_000.0 * 2910.0,
            arrival: SimTime::ZERO,
            budget,
            deadline_secs: 3600.0,
        })
        .collect();
    let horizon = SimTime::from_secs(1_500);

    let wta = WinnerTakesAllMarket::default();
    let caps_wta = wta.capacity_received(&hosts, &jobs, horizon);
    let fairness_wta = jain_fairness(&caps_wta);

    // Tycoon on the same shape: shares are proportional (3:1), so both
    // users receive work — fairness must be clearly higher.
    let market = Scenario::builder()
        .seed(11)
        .hosts(1)
        .chunk_minutes(40.0)
        .deadline_minutes(60)
        .horizon_hours(1) // cut while contended
        .user(UserSetup::new(300.0).subjobs(2))
        .user(UserSetup::new(100.0).subjobs(2))
        .run()
        .unwrap();
    let caps_market: Vec<f64> = market
        .users
        .iter()
        .map(|u| u.avg_nodes * u.time_hours.max(0.01))
        .collect();
    let fairness_market = jain_fairness(&caps_market);

    assert!(
        fairness_market > fairness_wta,
        "proportional share ({fairness_market:.3}) should be fairer than WTA ({fairness_wta:.3})"
    );
}

/// G-commerce's advertised advantage: posted-price markets show smoother
/// prices than burst auctions — and our simulation reproduces the
/// trade-off (bounded per-step movement).
#[test]
fn gcommerce_price_moves_are_bounded() {
    let hosts = hosts(2);
    let jobs = workload();
    let gc = GCommerceMarket::default();
    let r = gc.run(&hosts, &jobs, SimTime::from_secs(4 * 3600));
    assert!(r.price_history.len() > 10);
    for w in r.price_history.windows(2) {
        let ratio = w[1].1 / w[0].1;
        assert!((0.94..=1.06).contains(&ratio), "posted price jumped: {ratio}");
    }
}

/// Work conservation: the market never leaves hosts idle while jobs have
/// pending work and funds (the "agile reallocation … work conservation"
/// property of §6).
#[test]
fn market_is_work_conserving_under_load() {
    let r = Scenario::builder()
        .seed(13)
        .hosts(2)
        .chunk_minutes(15.0)
        .deadline_minutes(90)
        .horizon_hours(8)
        .user(UserSetup::new(200.0).subjobs(4))
        .user(UserSetup::new(200.0).subjobs(4))
        .run()
        .unwrap();
    assert!(r.all_done());
    // 8 subjobs × 15 min = 2 CPU-hours on 4 vCPUs ⇒ ≥ 0.5 h lower bound;
    // with overheads the run must still finish within ~3× that.
    let makespan = r.users.iter().map(|u| u.time_hours).fold(0.0f64, f64::max);
    assert!(
        makespan < 1.5,
        "market wasted capacity: makespan {makespan:.2}h for 2 CPU-hours on 4 vCPUs"
    );
}
