//! Umbrella library for the gridmarket suite: re-exports the facade crate.
pub use gridmarket::*;
